//! JSONL run traces: the machine-readable artifact behind `unet trace`
//! and `unet report`.
//!
//! One JSON object per line. The first line is the `meta` record; span
//! events follow in chronological order (balanced, LIFO-nested); counter /
//! gauge / histogram aggregates and the final `summary` close the file:
//!
//! ```text
//! {"type":"meta","schema":"unet-trace/4","command":"simulate","guest":"ring:12","host":"torus:2x2","n":12,"m":4,"guest_steps":3}
//! {"type":"span","op":"start","name":"sim.comm","ns":1200}
//! {"type":"span","op":"end","name":"sim.comm","ns":58000}
//! {"type":"counter","name":"route.transfers","value":831}
//! {"type":"gauge","name":"sim.load","value":3.0}
//! {"type":"hist","name":"route.queue_occupancy","count":96,"sum":310,"min":1,"max":9,"buckets":[[1,40],[2,30],[3,20],[4,6]]}
//! {"type":"sample","name":"route.edge_util","step":4,"key":12884901893,"value":2}
//! {"type":"request","trace_id":"00000000c0ffee42","kind":"simulate","ok":true,"e2e_ms":12.5,"sampled":"head","stages":[["queue_wait",1.5],["simulate",10.0]]}
//! {"type":"summary","host_steps":61,"comm_steps":40,"compute_steps":21,"slowdown":20.3,"inefficiency":6.8,"wall_ms":1.9}
//! ```
//!
//! Histogram buckets are sparse `[index, count]` pairs over the log₂
//! bucketing of [`Histogram`]. [`parse_trace`] validates structure:
//! every line must parse, span events must balance under stack discipline,
//! and timestamps must be non-decreasing.
//!
//! Schema history: `unet-trace/1` was the original record set, `/2` added
//! `fault` records, `/3` added per-step `sample` records (edge
//! utilization and queue depth, keyed by [`crate::recorder::edge_key`] or
//! node id), and `/4` adds per-request `request` records (one traced
//! request's stage spans through the serving tier). All four are accepted
//! by [`parse_trace`]; writers always emit the current [`SCHEMA`]. An
//! older trace simply has no `sample` / `request` lines — readers see
//! empty congestion series and an empty request table.

use crate::json::{parse, Value};
use crate::recorder::{Histogram, InMemoryRecorder, SpanEvent};

/// Trace schema identifier written into `meta` lines.
pub const SCHEMA: &str = "unet-trace/4";

/// Older schema versions [`parse_trace`] still reads. `/1` is the original
/// record set; `/2` added `fault` records and `/3` added `sample` records
/// without changing any existing record shape. None carries `request`
/// records.
pub const LEGACY_SCHEMAS: [&str; 3] = ["unet-trace/1", "unet-trace/2", "unet-trace/3"];

/// Identity of a traced run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMeta {
    /// Which subcommand/driver produced the trace.
    pub command: String,
    /// Guest graph spec.
    pub guest: String,
    /// Host graph spec.
    pub host: String,
    /// Guest size `n`.
    pub n: u64,
    /// Host size `m`.
    pub m: u64,
    /// Guest steps `T`.
    pub guest_steps: u64,
}

/// Headline metrics of a traced run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Host steps `T'`.
    pub host_steps: u64,
    /// Host steps spent in communication phases.
    pub comm_steps: u64,
    /// Host steps spent in computation phases.
    pub compute_steps: u64,
    /// Measured slowdown `s = T'/T`.
    pub slowdown: f64,
    /// Measured inefficiency `k = s·m/n`.
    pub inefficiency: f64,
    /// Wall-clock time of the run in milliseconds.
    pub wall_ms: f64,
}

/// What a [`FaultRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A fault fired: a node crashed, a link was cut or flapped down.
    Inject,
    /// A transient fault healed (link flap repaired).
    Repair,
    /// A guest processor was re-embedded onto a live host after its host
    /// crashed.
    Remap,
}

impl FaultOp {
    /// Wire name of the op.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultOp::Inject => "inject",
            FaultOp::Repair => "repair",
            FaultOp::Remap => "remap",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "inject" => Some(FaultOp::Inject),
            "repair" => Some(FaultOp::Repair),
            "remap" => Some(FaultOp::Remap),
            _ => None,
        }
    }
}

/// One fault event in a traced run — the `unet-trace/2` record
/// `{"type":"fault","op":...,"at":...,"kind":...,"subject":...}`. The schema
/// addition is backwards-compatible: readers of fault-free traces see no
/// `fault` lines at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Guest-step boundary at which the event fired.
    pub at: u64,
    /// Event class.
    pub op: FaultOp,
    /// Fault kind: `"crash"`, `"cut"`, `"flap"` for inject/repair;
    /// `"guest"` for remap events.
    pub kind: String,
    /// Affected element, e.g. `"node:5"`, `"link:3-7"`, or
    /// `"guest:12->host:4"`.
    pub subject: String,
}

/// One keyed time-series point from a parsed trace — the `unet-trace/3`
/// record `{"type":"sample","name":...,"step":...,"key":...,"value":...}`.
/// `key` packs an edge ([`crate::recorder::edge_key`]) or a node id;
/// `value` is the aggregated sum for `(name, step, key)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRecord {
    /// Series name, e.g. `"route.edge_util"` or `"route.queue_depth"`.
    pub name: String,
    /// Time index (routing round or communication round).
    pub step: u64,
    /// Spatial key: packed edge or node id.
    pub key: u64,
    /// Summed value at `(step, key)`.
    pub value: u64,
}

/// One named stage of a traced request, with its measured duration.
///
/// Stage names are the serving tier's fixed vocabulary — backend-side
/// `accept`, `queue_wait`, `batch_linger`, `singleflight_wait`,
/// `plan_build`, `simulate`, `serialize` and router-side `forward`,
/// `retry`, `failover` — but readers treat them as opaque strings so the
/// vocabulary can grow without another schema bump.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage name (e.g. `"queue_wait"`).
    pub stage: String,
    /// Wall time spent in the stage, milliseconds.
    pub ms: f64,
}

/// Why the tail sampler kept a request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// Head-sampled: the deterministic per-trace coin came up heads.
    Head,
    /// Always kept: the request errored.
    Error,
    /// Always kept: among the slowest requests seen (the p99 tail).
    Slow,
}

impl SampleReason {
    /// Wire name of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleReason::Head => "head",
            SampleReason::Error => "error",
            SampleReason::Slow => "slow",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "head" => Some(SampleReason::Head),
            "error" => Some(SampleReason::Error),
            "slow" => Some(SampleReason::Slow),
            _ => None,
        }
    }
}

/// One traced request through the serving tier — the `unet-trace/4` record
/// `{"type":"request","trace_id":...,"kind":...,"ok":...,"e2e_ms":...,
/// "sampled":...,"stages":[["queue_wait",1.5],...]}`. The schema addition
/// is backwards-compatible: readers of older traces see no `request`
/// lines at all.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The request's end-to-end trace id, 16 lowercase hex digits,
    /// identical on every tier the request crossed.
    pub trace_id: String,
    /// Request kind as seen by the recording tier, e.g. `"simulate"`,
    /// `"batch"`, or the router's `"forward"`.
    pub kind: String,
    /// Did the request produce a `result` response?
    pub ok: bool,
    /// End-to-end latency measured by the recording tier, milliseconds.
    pub e2e_ms: f64,
    /// Why the tail sampler kept this record.
    pub sampled: SampleReason,
    /// Stage spans in chronological order.
    pub stages: Vec<StageSpan>,
}

impl RequestRecord {
    /// Duration of the named stage, if recorded.
    pub fn stage_ms(&self, stage: &str) -> Option<f64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.ms)
    }

    /// Sum of all stage durations — the span-accounting numerator E22
    /// checks against `e2e_ms`.
    pub fn stage_total_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.ms).sum()
    }
}

/// An owned span event from a parsed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSpan {
    /// Phase opened.
    Start {
        /// Phase name.
        name: String,
        /// Nanoseconds since trace epoch.
        ns: u64,
    },
    /// Phase closed.
    End {
        /// Phase name.
        name: String,
        /// Nanoseconds since trace epoch.
        ns: u64,
    },
}

/// A fully parsed and validated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// The `meta` record.
    pub meta: RunMeta,
    /// Chronological, balanced span events.
    pub spans: Vec<TraceSpan>,
    /// Counter totals, in file order.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, in file order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, in file order.
    pub histograms: Vec<(String, Histogram)>,
    /// Fault events, in file order.
    pub faults: Vec<FaultRecord>,
    /// Time-series sample points, in file order (empty for `/1`//`2`
    /// traces).
    pub samples: Vec<SampleRecord>,
    /// Sampled per-request stage records, in file order (empty for
    /// pre-`/4` traces).
    pub requests: Vec<RequestRecord>,
    /// The `summary` record, if present.
    pub summary: Option<RunSummary>,
}

impl TraceDoc {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// All sample points of the named series, in file order.
    pub fn samples_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SampleRecord> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// All request records carrying the given trace id, in file order.
    pub fn requests_for<'a>(
        &'a self,
        trace_id: &'a str,
    ) -> impl Iterator<Item = &'a RequestRecord> {
        self.requests.iter().filter(move |r| r.trace_id == trace_id)
    }

    /// `(name, total ns, completions)` per span name, by replaying the
    /// event stream (which [`parse_trace`] already validated as balanced).
    pub fn span_totals(&self) -> Vec<(String, u64, u64)> {
        let mut stack: Vec<(&str, u64)> = Vec::new();
        let mut totals: Vec<(String, u64, u64)> = Vec::new();
        for ev in &self.spans {
            match ev {
                TraceSpan::Start { name, ns } => stack.push((name, *ns)),
                TraceSpan::End { ns, .. } => {
                    let (name, started) = stack.pop().expect("validated balanced");
                    match totals.iter_mut().find(|(k, ..)| k == name) {
                        Some(t) => {
                            t.1 += ns - started;
                            t.2 += 1;
                        }
                        None => totals.push((name.to_string(), ns - started, 1)),
                    }
                }
            }
        }
        totals
    }
}

/// Serialize a recorded run to JSONL. Panics (debug) if spans are still
/// open — finish every phase before exporting.
pub fn export(rec: &InMemoryRecorder, meta: &RunMeta, summary: Option<&RunSummary>) -> String {
    export_with_faults(rec, meta, &[], summary)
}

/// [`export`] plus a fault timeline: one `fault` record per event, emitted
/// after the aggregate records and before the summary.
pub fn export_with_faults(
    rec: &InMemoryRecorder,
    meta: &RunMeta,
    faults: &[FaultRecord],
    summary: Option<&RunSummary>,
) -> String {
    export_full(rec, meta, faults, &[], summary)
}

/// [`export_with_faults`] plus the sampled per-request stage records,
/// emitted after the fault timeline and before the summary. The serving
/// tier's drain path uses this; an empty `requests` slice keeps the output
/// byte-identical to the plain exports (the `/4` schema addition is
/// strictly backwards-compatible).
pub fn export_full(
    rec: &InMemoryRecorder,
    meta: &RunMeta,
    faults: &[FaultRecord],
    requests: &[RequestRecord],
    summary: Option<&RunSummary>,
) -> String {
    debug_assert!(rec.open_spans().is_empty(), "exporting with open spans: {:?}", rec.open_spans());
    let mut out = String::new();
    out.push_str(&meta_value(meta).to_json());
    out.push('\n');
    for ev in rec.events() {
        let (op, name, ns) = match *ev {
            SpanEvent::Start { name, ns } => ("start", name, ns),
            SpanEvent::End { name, ns } => ("end", name, ns),
        };
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("span".into())),
            ("op".into(), Value::Str(op.into())),
            ("name".into(), Value::Str(name.into())),
            ("ns".into(), Value::UInt(ns)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, v) in rec.counters() {
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("counter".into())),
            ("name".into(), Value::Str(name.into())),
            ("value".into(), Value::UInt(v)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, v) in rec.gauges() {
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("gauge".into())),
            ("name".into(), Value::Str(name.into())),
            ("value".into(), Value::Float(v)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for (name, h) in rec.histograms() {
        out.push_str(&hist_value(name, h).to_json());
        out.push('\n');
    }
    for (name, series) in rec.samples() {
        for (&(step, key), &value) in series {
            let line = Value::Obj(vec![
                ("type".into(), Value::Str("sample".into())),
                ("name".into(), Value::Str(name.into())),
                ("step".into(), Value::UInt(step)),
                ("key".into(), Value::UInt(key)),
                ("value".into(), Value::UInt(value)),
            ]);
            out.push_str(&line.to_json());
            out.push('\n');
        }
    }
    for f in faults {
        let line = Value::Obj(vec![
            ("type".into(), Value::Str("fault".into())),
            ("op".into(), Value::Str(f.op.as_str().into())),
            ("at".into(), Value::UInt(f.at)),
            ("kind".into(), Value::Str(f.kind.clone())),
            ("subject".into(), Value::Str(f.subject.clone())),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    for r in requests {
        out.push_str(&request_value(r).to_json());
        out.push('\n');
    }
    if let Some(s) = summary {
        out.push_str(&summary_value(s).to_json());
        out.push('\n');
    }
    out
}

fn meta_value(meta: &RunMeta) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::Str("meta".into())),
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("command".into(), Value::Str(meta.command.clone())),
        ("guest".into(), Value::Str(meta.guest.clone())),
        ("host".into(), Value::Str(meta.host.clone())),
        ("n".into(), Value::UInt(meta.n)),
        ("m".into(), Value::UInt(meta.m)),
        ("guest_steps".into(), Value::UInt(meta.guest_steps)),
    ])
}

fn hist_value(name: &str, h: &Histogram) -> Value {
    let buckets: Vec<Value> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Value::Arr(vec![Value::UInt(i as u64), Value::UInt(c)]))
        .collect();
    // `sum` is u128 internally; saturate to u64 for the wire (a real run
    // cannot reach it: 2⁶⁴ ns ≈ 585 years of samples).
    let sum = u64::try_from(h.sum).unwrap_or(u64::MAX);
    Value::Obj(vec![
        ("type".into(), Value::Str("hist".into())),
        ("name".into(), Value::Str(name.into())),
        ("count".into(), Value::UInt(h.count)),
        ("sum".into(), Value::UInt(sum)),
        ("min".into(), Value::UInt(if h.count == 0 { 0 } else { h.min })),
        ("max".into(), Value::UInt(h.max)),
        ("buckets".into(), Value::Arr(buckets)),
    ])
}

fn request_value(r: &RequestRecord) -> Value {
    let stages: Vec<Value> = r
        .stages
        .iter()
        .map(|s| Value::Arr(vec![Value::Str(s.stage.clone()), Value::Float(s.ms)]))
        .collect();
    Value::Obj(vec![
        ("type".into(), Value::Str("request".into())),
        ("trace_id".into(), Value::Str(r.trace_id.clone())),
        ("kind".into(), Value::Str(r.kind.clone())),
        ("ok".into(), Value::Bool(r.ok)),
        ("e2e_ms".into(), Value::Float(r.e2e_ms)),
        ("sampled".into(), Value::Str(r.sampled.as_str().into())),
        ("stages".into(), Value::Arr(stages)),
    ])
}

fn summary_value(s: &RunSummary) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::Str("summary".into())),
        ("host_steps".into(), Value::UInt(s.host_steps)),
        ("comm_steps".into(), Value::UInt(s.comm_steps)),
        ("compute_steps".into(), Value::UInt(s.compute_steps)),
        ("slowdown".into(), Value::Float(s.slowdown)),
        ("inefficiency".into(), Value::Float(s.inefficiency)),
        ("wall_ms".into(), Value::Float(s.wall_ms)),
    ])
}

pub(crate) fn field_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line}: missing/invalid u64 field {key:?}"))
}

pub(crate) fn field_f64(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line}: missing/invalid number field {key:?}"))
}

pub(crate) fn field_str(v: &Value, key: &str, line: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {line}: missing/invalid string field {key:?}"))
}

/// Reject schemas that are neither current nor legacy.
pub(crate) fn check_schema(schema: &str) -> Result<(), String> {
    if schema != SCHEMA && !LEGACY_SCHEMAS.contains(&schema) {
        return Err(format!(
            "unsupported schema {schema:?} (expected {SCHEMA:?} or a legacy version {LEGACY_SCHEMAS:?})"
        ));
    }
    Ok(())
}

/// Parse a `meta` record into `(schema, RunMeta)`, validating the schema.
pub(crate) fn parse_meta(head: &Value, lno: usize) -> Result<(String, RunMeta), String> {
    let schema = field_str(head, "schema", lno)?;
    check_schema(&schema)?;
    let meta = RunMeta {
        command: field_str(head, "command", lno)?,
        guest: field_str(head, "guest", lno)?,
        host: field_str(head, "host", lno)?,
        n: field_u64(head, "n", lno)?,
        m: field_u64(head, "m", lno)?,
        guest_steps: field_u64(head, "guest_steps", lno)?,
    };
    Ok((schema, meta))
}

/// Parse a `hist` record into `(name, Histogram)`, validating bucket
/// totals against the count.
pub(crate) fn parse_hist(v: &Value, lno: usize) -> Result<(String, Histogram), String> {
    let name = field_str(v, "name", lno)?;
    let mut h = Histogram {
        count: field_u64(v, "count", lno)?,
        sum: field_u64(v, "sum", lno)? as u128,
        min: field_u64(v, "min", lno)?,
        max: field_u64(v, "max", lno)?,
        buckets: [0; 65],
    };
    if h.count == 0 {
        h.min = u64::MAX;
    }
    let buckets = v
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("line {lno}: missing buckets array"))?;
    let mut total = 0u64;
    for b in buckets {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("line {lno}: bucket entries must be [index, count] pairs"))?;
        let idx = pair[0]
            .as_u64()
            .filter(|&i| i < 65)
            .ok_or_else(|| format!("line {lno}: bucket index out of range"))?;
        let c = pair[1].as_u64().ok_or_else(|| format!("line {lno}: bad bucket count"))?;
        h.buckets[idx as usize] = c;
        total += c;
    }
    if total != h.count {
        return Err(format!(
            "line {lno}: histogram {name:?} bucket total {total} != count {}",
            h.count
        ));
    }
    Ok((name, h))
}

/// Parse a `sample` record.
pub(crate) fn parse_sample(v: &Value, lno: usize) -> Result<SampleRecord, String> {
    Ok(SampleRecord {
        name: field_str(v, "name", lno)?,
        step: field_u64(v, "step", lno)?,
        key: field_u64(v, "key", lno)?,
        value: field_u64(v, "value", lno)?,
    })
}

/// Parse a `request` record, validating the sample reason and the
/// `[stage, ms]` pair structure.
pub(crate) fn parse_request(v: &Value, lno: usize) -> Result<RequestRecord, String> {
    let reason_name = field_str(v, "sampled", lno)?;
    let sampled = SampleReason::parse(&reason_name)
        .ok_or_else(|| format!("line {lno}: bad sample reason {reason_name:?}"))?;
    let ok = v
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("line {lno}: missing/invalid bool field \"ok\""))?;
    let stage_arr = v
        .get("stages")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("line {lno}: missing stages array"))?;
    let mut stages = Vec::with_capacity(stage_arr.len());
    for s in stage_arr {
        let pair = s
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("line {lno}: stage entries must be [name, ms] pairs"))?;
        let stage =
            pair[0].as_str().ok_or_else(|| format!("line {lno}: bad stage name"))?.to_string();
        let ms = pair[1].as_f64().ok_or_else(|| format!("line {lno}: bad stage duration"))?;
        stages.push(StageSpan { stage, ms });
    }
    Ok(RequestRecord {
        trace_id: field_str(v, "trace_id", lno)?,
        kind: field_str(v, "kind", lno)?,
        ok,
        e2e_ms: field_f64(v, "e2e_ms", lno)?,
        sampled,
        stages,
    })
}

/// Parse and validate a JSONL trace: every line must be valid JSON of a
/// known record type, the first line must be a `meta` record with the
/// expected schema, span events must balance (stack discipline with
/// matching names) and be chronological.
pub fn parse_trace(text: &str) -> Result<TraceDoc, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (lno, first) = lines.next().ok_or("empty trace")?;
    let head = parse(first).map_err(|e| format!("line {}: {e}", lno + 1))?;
    if head.get("type").and_then(Value::as_str) != Some("meta") {
        return Err("first line must be the meta record".into());
    }
    let (_, meta) = parse_meta(&head, lno + 1)?;

    let mut doc = TraceDoc {
        meta,
        spans: Vec::new(),
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
        faults: Vec::new(),
        samples: Vec::new(),
        requests: Vec::new(),
        summary: None,
    };
    let mut stack: Vec<String> = Vec::new();
    let mut last_ns = 0u64;

    for (i, line) in lines {
        let lno = i + 1;
        let v = parse(line).map_err(|e| format!("line {lno}: {e}"))?;
        match v.get("type").and_then(Value::as_str) {
            Some("span") => {
                let name = field_str(&v, "name", lno)?;
                let ns = field_u64(&v, "ns", lno)?;
                if ns < last_ns {
                    return Err(format!("line {lno}: span time goes backwards ({ns} < {last_ns})"));
                }
                last_ns = ns;
                match v.get("op").and_then(Value::as_str) {
                    Some("start") => {
                        stack.push(name.clone());
                        doc.spans.push(TraceSpan::Start { name, ns });
                    }
                    Some("end") => match stack.pop() {
                        Some(open) if open == name => doc.spans.push(TraceSpan::End { name, ns }),
                        Some(open) => {
                            return Err(format!(
                                "line {lno}: span end {name:?} does not close innermost open span {open:?}"
                            ))
                        }
                        None => return Err(format!("line {lno}: span end {name:?} with no open span")),
                    },
                    other => return Err(format!("line {lno}: bad span op {other:?}")),
                }
            }
            Some("counter") => {
                doc.counters.push((field_str(&v, "name", lno)?, field_u64(&v, "value", lno)?));
            }
            Some("gauge") => {
                doc.gauges.push((field_str(&v, "name", lno)?, field_f64(&v, "value", lno)?));
            }
            Some("hist") => doc.histograms.push(parse_hist(&v, lno)?),
            Some("sample") => doc.samples.push(parse_sample(&v, lno)?),
            Some("request") => doc.requests.push(parse_request(&v, lno)?),
            Some("fault") => {
                let op_name = field_str(&v, "op", lno)?;
                let op = FaultOp::parse(&op_name)
                    .ok_or_else(|| format!("line {lno}: bad fault op {op_name:?}"))?;
                doc.faults.push(FaultRecord {
                    at: field_u64(&v, "at", lno)?,
                    op,
                    kind: field_str(&v, "kind", lno)?,
                    subject: field_str(&v, "subject", lno)?,
                });
            }
            Some("summary") => {
                doc.summary = Some(RunSummary {
                    host_steps: field_u64(&v, "host_steps", lno)?,
                    comm_steps: field_u64(&v, "comm_steps", lno)?,
                    compute_steps: field_u64(&v, "compute_steps", lno)?,
                    slowdown: field_f64(&v, "slowdown", lno)?,
                    inefficiency: field_f64(&v, "inefficiency", lno)?,
                    wall_ms: field_f64(&v, "wall_ms", lno)?,
                });
            }
            Some("meta") => return Err(format!("line {lno}: duplicate meta record")),
            other => return Err(format!("line {lno}: unknown record type {other:?}")),
        }
    }
    if !stack.is_empty() {
        return Err(format!("unbalanced trace: spans still open at EOF: {stack:?}"));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_meta() -> RunMeta {
        RunMeta {
            command: "simulate".into(),
            guest: "ring:12".into(),
            host: "torus:2x2".into(),
            n: 12,
            m: 4,
            guest_steps: 3,
        }
    }

    fn sample_recorder() -> InMemoryRecorder {
        let mut rec = InMemoryRecorder::new();
        rec.span_start("sim.step");
        rec.span_start("sim.comm");
        rec.histogram("route.hops", 0);
        rec.histogram("route.hops", 3);
        rec.histogram("route.hops", u64::MAX);
        rec.counter("route.transfers", 17);
        rec.span_end("sim.comm");
        rec.span_start("sim.compute");
        rec.gauge("sim.load", 3.0);
        rec.span_end("sim.compute");
        rec.span_end("sim.step");
        rec
    }

    #[test]
    fn export_parse_round_trip() {
        let rec = sample_recorder();
        let summary = RunSummary {
            host_steps: 61,
            comm_steps: 40,
            compute_steps: 21,
            slowdown: 20.33,
            inefficiency: 6.78,
            wall_ms: 1.25,
        };
        let text = export(&rec, &sample_meta(), Some(&summary));
        // Every line parses as standalone JSON.
        for line in text.lines() {
            crate::json::parse(line).expect("line parses");
        }
        let doc = parse_trace(&text).expect("trace validates");
        assert_eq!(doc.meta, sample_meta());
        assert_eq!(doc.summary, Some(summary));
        assert_eq!(doc.counter("route.transfers"), Some(17));
        let h = doc.histogram("route.hops").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(doc.spans.len(), 6);
        // Totals replay: sim.step once, children once each.
        let totals = doc.span_totals();
        assert_eq!(totals.iter().filter(|(n, ..)| n == "sim.step").count(), 1);
        assert!(totals.iter().all(|&(_, _, count)| count == 1));
    }

    #[test]
    fn histograms_survive_round_trip_exactly() {
        let mut rec = InMemoryRecorder::new();
        for v in [0u64, 1, 1, 7, 8, 1 << 40, u64::MAX] {
            rec.histogram("h", v);
        }
        let mut expected = rec.histogram_data("h").unwrap().clone();
        // The wire format carries `sum` as u64 (saturating); this sample set
        // deliberately overflows it to pin that behaviour down.
        expected.sum = expected.sum.min(u64::MAX as u128);
        let text = export(&rec, &sample_meta(), None);
        let doc = parse_trace(&text).unwrap();
        assert_eq!(doc.histogram("h"), Some(&expected));
    }

    #[test]
    fn fault_records_round_trip() {
        let rec = sample_recorder();
        let faults = vec![
            FaultRecord {
                at: 2,
                op: FaultOp::Inject,
                kind: "crash".into(),
                subject: "node:5".into(),
            },
            FaultRecord {
                at: 2,
                op: FaultOp::Remap,
                kind: "guest".into(),
                subject: "guest:12->host:4".into(),
            },
            FaultRecord {
                at: 4,
                op: FaultOp::Repair,
                kind: "flap".into(),
                subject: "link:3-7".into(),
            },
        ];
        let text = export_with_faults(&rec, &sample_meta(), &faults, None);
        let doc = parse_trace(&text).expect("trace with faults validates");
        assert_eq!(doc.faults, faults);
        // Fault-free export stays byte-identical to the plain one (schema
        // addition is strictly backwards-compatible).
        assert_eq!(
            export(&rec, &sample_meta(), None),
            export_with_faults(&rec, &sample_meta(), &[], None)
        );
        // Bad ops are rejected.
        let meta_line = text.lines().next().unwrap();
        let bad = format!(
            "{meta_line}\n{{\"type\":\"fault\",\"op\":\"explode\",\"at\":1,\"kind\":\"crash\",\"subject\":\"node:1\"}}\n"
        );
        assert!(parse_trace(&bad).unwrap_err().contains("bad fault op"));
    }

    #[test]
    fn samples_round_trip_and_legacy_schemas_accepted() {
        use crate::recorder::edge_key;
        let mut rec = sample_recorder();
        rec.sample("route.edge_util", 0, edge_key(3, 5), 1);
        rec.sample("route.edge_util", 0, edge_key(3, 5), 1);
        rec.sample("route.queue_depth", 1, 5, 4);
        let text = export(&rec, &sample_meta(), None);
        assert!(text.lines().next().unwrap().contains("unet-trace/4"));
        let doc = parse_trace(&text).expect("v4 trace validates");
        let util: Vec<_> = doc.samples_named("route.edge_util").collect();
        assert_eq!(util.len(), 1, "aggregated to one (step, key) cell");
        assert_eq!((util[0].step, util[0].key, util[0].value), (0, edge_key(3, 5), 2));
        let depth: Vec<_> = doc.samples_named("route.queue_depth").collect();
        assert_eq!((depth[0].step, depth[0].key, depth[0].value), (1, 5, 4));

        // A /1 or /2 meta parses through the same reader, with no samples.
        for legacy in LEGACY_SCHEMAS {
            let legacy_text = text
                .replace(SCHEMA, legacy)
                .lines()
                .filter(|l| !l.contains("\"sample\""))
                .collect::<Vec<_>>()
                .join("\n");
            let legacy_doc = parse_trace(&legacy_text)
                .unwrap_or_else(|e| panic!("legacy {legacy} must parse: {e}"));
            assert!(legacy_doc.samples.is_empty());
            assert_eq!(legacy_doc.counter("route.transfers"), doc.counter("route.transfers"));
        }
    }

    fn sample_requests() -> Vec<RequestRecord> {
        vec![
            RequestRecord {
                trace_id: "00000000c0ffee42".into(),
                kind: "simulate".into(),
                ok: true,
                e2e_ms: 12.5,
                sampled: SampleReason::Head,
                stages: vec![
                    StageSpan { stage: "accept".into(), ms: 0.25 },
                    StageSpan { stage: "queue_wait".into(), ms: 1.5 },
                    StageSpan { stage: "simulate".into(), ms: 10.0 },
                    StageSpan { stage: "serialize".into(), ms: 0.5 },
                ],
            },
            RequestRecord {
                trace_id: "deadbeefdeadbeef".into(),
                kind: "forward".into(),
                ok: false,
                e2e_ms: 3.0,
                sampled: SampleReason::Error,
                stages: vec![StageSpan { stage: "forward".into(), ms: 3.0 }],
            },
        ]
    }

    #[test]
    fn request_records_round_trip() {
        let rec = sample_recorder();
        let requests = sample_requests();
        let text = export_full(&rec, &sample_meta(), &[], &requests, None);
        let doc = parse_trace(&text).expect("trace with request records validates");
        assert_eq!(doc.requests, requests);
        let kept: Vec<_> = doc.requests_for("00000000c0ffee42").collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].stage_ms("queue_wait"), Some(1.5));
        assert!((kept[0].stage_total_ms() - 12.25).abs() < 1e-9);
        // Request-free export stays byte-identical to the older writers
        // (schema addition is strictly backwards-compatible).
        assert_eq!(
            export(&rec, &sample_meta(), None),
            export_full(&rec, &sample_meta(), &[], &[], None)
        );
        // Bad reasons and malformed stage pairs are rejected.
        let meta_line = text.lines().next().unwrap();
        let bad_reason = format!(
            "{meta_line}\n{{\"type\":\"request\",\"trace_id\":\"ab\",\"kind\":\"simulate\",\"ok\":true,\"e2e_ms\":1.0,\"sampled\":\"vibes\",\"stages\":[]}}\n"
        );
        assert!(parse_trace(&bad_reason).unwrap_err().contains("bad sample reason"));
        let bad_stage = format!(
            "{meta_line}\n{{\"type\":\"request\",\"trace_id\":\"ab\",\"kind\":\"simulate\",\"ok\":true,\"e2e_ms\":1.0,\"sampled\":\"head\",\"stages\":[[\"queue_wait\"]]}}\n"
        );
        assert!(parse_trace(&bad_stage).unwrap_err().contains("[name, ms] pairs"));
    }

    #[test]
    fn v3_migration_fixture_parses_with_identical_aggregates() {
        // The PR 5 pattern: a trace written by the previous schema version
        // (samples, no request records) must parse through the current
        // reader with identical aggregates.
        use crate::recorder::edge_key;
        let mut rec = sample_recorder();
        rec.sample("route.edge_util", 0, edge_key(3, 5), 2);
        let current = export(&rec, &sample_meta(), None);
        let v3_fixture = current.replace(SCHEMA, "unet-trace/3");
        let doc = parse_trace(&v3_fixture).expect("v3 fixture parses");
        let now = parse_trace(&current).expect("current parses");
        assert!(doc.requests.is_empty(), "a /3 trace has no request records");
        assert_eq!(doc.counters, now.counters);
        assert_eq!(doc.samples, now.samples);
        assert_eq!(doc.span_totals(), now.span_totals());
    }

    #[test]
    fn unbalanced_traces_rejected() {
        let meta = "{\"type\":\"meta\",\"schema\":\"unet-trace/1\",\"command\":\"c\",\"guest\":\"g\",\"host\":\"h\",\"n\":1,\"m\":1,\"guest_steps\":1}";
        let start = "{\"type\":\"span\",\"op\":\"start\",\"name\":\"a\",\"ns\":1}";
        let end_b = "{\"type\":\"span\",\"op\":\"end\",\"name\":\"b\",\"ns\":2}";
        let end_a = "{\"type\":\"span\",\"op\":\"end\",\"name\":\"a\",\"ns\":2}";
        // Still open at EOF.
        assert!(parse_trace(&format!("{meta}\n{start}\n")).unwrap_err().contains("still open"));
        // Wrong name closes.
        assert!(parse_trace(&format!("{meta}\n{start}\n{end_b}\n"))
            .unwrap_err()
            .contains("does not close"));
        // End without start.
        assert!(parse_trace(&format!("{meta}\n{end_a}\n")).unwrap_err().contains("no open span"));
        // Time going backwards.
        let late = "{\"type\":\"span\",\"op\":\"start\",\"name\":\"a\",\"ns\":9}";
        let early = "{\"type\":\"span\",\"op\":\"end\",\"name\":\"a\",\"ns\":3}";
        assert!(parse_trace(&format!("{meta}\n{late}\n{early}\n"))
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn malformed_lines_rejected() {
        let meta = "{\"type\":\"meta\",\"schema\":\"unet-trace/1\",\"command\":\"c\",\"guest\":\"g\",\"host\":\"h\",\"n\":1,\"m\":1,\"guest_steps\":1}";
        assert!(parse_trace("").is_err());
        assert!(parse_trace("not json\n").is_err());
        assert!(parse_trace(&format!("{meta}\n{{\"type\":\"mystery\"}}\n")).is_err());
        assert!(parse_trace(&format!("{meta}\n{meta}\n")).unwrap_err().contains("duplicate meta"));
        // Histogram whose buckets disagree with its count.
        let bad_hist = "{\"type\":\"hist\",\"name\":\"h\",\"count\":5,\"sum\":5,\"min\":1,\"max\":1,\"buckets\":[[1,2]]}";
        assert!(parse_trace(&format!("{meta}\n{bad_hist}\n"))
            .unwrap_err()
            .contains("bucket total"));
        // Wrong schema.
        let bad_meta = meta.replace("unet-trace/1", "unet-trace/9");
        assert!(parse_trace(&format!("{bad_meta}\n")).unwrap_err().contains("unsupported schema"));
    }
}
