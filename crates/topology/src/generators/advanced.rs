//! Further networks from the paper's reference list: the mesh of trees
//! (Achilles \[1\] emulates meshes on them), Kautz graphs (de Bruijn's denser
//! sibling), and the multibutterfly (Rappoport \[17\] separates it from the
//! butterfly under simulation).

use crate::graph::{Graph, GraphBuilder, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// The `s × s` mesh of trees: an `s × s` grid of leaves (no grid edges!),
/// plus a complete binary tree over every row and every column. For
/// `s = 2^k`: `s² + 2·s·(s−1)` vertices, degree ≤ 6 (leaves have degree 2,
/// internal tree nodes ≤ 3 each ×2 trees at roots-adjacent nodes).
/// Diameter `O(log s)` with only `O(s² )` nodes — a classic powerful host
/// (reference \[1\] emulates meshes on it optimally).
///
/// Node layout: leaves `0..s²` (row-major), then row-tree internals
/// (`s·(s−1)` of them), then column-tree internals.
pub fn mesh_of_trees(s: usize) -> Graph {
    assert!(s.is_power_of_two() && s >= 2, "side must be a power of two ≥ 2");
    let leaves = s * s;
    let internals_per_tree = s - 1;
    let n = leaves + 2 * s * internals_per_tree;
    let mut b = GraphBuilder::new(n);
    // A complete binary tree over `s` leaf slots: internal nodes indexed
    // 0..s−1 heap-style (root = 0); leaf j attaches under internal
    // (s/2 − 1 + j/2)… simpler: build the tree over 2s−1 heap slots where
    // slots s−1..2s−2 are the leaves.
    let connect_tree = |leaf_ids: &[Node], internal_base: Node, b: &mut GraphBuilder| {
        // Heap positions 0..2s−2; position p ≥ s−1 is leaf leaf_ids[p−(s−1)],
        // else internal internal_base + p.
        let id = |p: usize| -> Node {
            if p >= s - 1 {
                leaf_ids[p - (s - 1)]
            } else {
                internal_base + p as Node
            }
        };
        for p in 0..s - 1 {
            b.add_edge(id(p), id(2 * p + 1));
            b.add_edge(id(p), id(2 * p + 2));
        }
    };
    // Row trees.
    for r in 0..s {
        let leaf_ids: Vec<Node> = (0..s).map(|c| (r * s + c) as Node).collect();
        let base = (leaves + r * internals_per_tree) as Node;
        connect_tree(&leaf_ids, base, &mut b);
    }
    // Column trees.
    for c in 0..s {
        let leaf_ids: Vec<Node> = (0..s).map(|r| (r * s + c) as Node).collect();
        let base = (leaves + s * internals_per_tree + c * internals_per_tree) as Node;
        connect_tree(&leaf_ids, base, &mut b);
    }
    b.build()
}

/// Kautz graph `K(b, k)`: vertices are length-`k` strings over `b+1` symbols
/// with no two consecutive symbols equal (`(b+1)·b^{k−1}` of them); edges
/// connect `x₁…x_k` to `x₂…x_k y` for every `y ≠ x_k`. Undirected version;
/// degree ≤ `2b`. Denser than de Bruijn at the same degree, diameter `k`.
pub fn kautz(b: usize, k: usize) -> Graph {
    assert!(b >= 2 && k >= 1);
    // Enumerate vertices as sequences; index them.
    let mut verts: Vec<Vec<u8>> = Vec::new();
    let mut stack: Vec<Vec<u8>> = (0..=b as u8).map(|s| vec![s]).collect();
    while let Some(v) = stack.pop() {
        if v.len() == k {
            verts.push(v);
            continue;
        }
        for y in 0..=b as u8 {
            if y != *v.last().unwrap() {
                let mut w = v.clone();
                w.push(y);
                stack.push(w);
            }
        }
    }
    verts.sort();
    let index =
        |v: &[u8]| -> Node { verts.binary_search_by(|w| w.as_slice().cmp(v)).unwrap() as Node };
    let mut g = GraphBuilder::new(verts.len());
    for v in &verts {
        for y in 0..=b as u8 {
            if y != *v.last().unwrap() {
                let mut w: Vec<u8> = v[1..].to_vec();
                w.push(y);
                let u = index(v);
                let t = index(&w);
                if u != t {
                    g.add_edge(u, t);
                }
            }
        }
    }
    g.build()
}

/// A randomized multibutterfly of dimension `d` with multiplicity 2
/// (Rappoport \[17\]'s subject): like the butterfly, but between consecutive
/// levels each node connects to `2` random targets in the "straight" half
/// and `2` in the "cross" half of its next-level splitter — the expander
/// splitters are what make multibutterflies robust and hard for plain
/// butterflies to simulate. Degree ≤ 8 + 8.
///
/// Levels `0..=d`, rows `2^d`, node `(ℓ, r)` = `ℓ·2^d + r` (same layout as
/// [`crate::generators::butterfly::butterfly`]).
pub fn multibutterfly<R: Rng>(d: usize, rng: &mut R) -> Graph {
    let rows = 1usize << d;
    let mut b = GraphBuilder::new((d + 1) * rows);
    let idx = |l: usize, r: usize| (l * rows + r) as Node;
    for level in 0..d {
        let block = 1usize << (d - level); // splitter width at this level
        let half = block / 2;
        for base in (0..rows).step_by(block) {
            // Within the splitter starting at `base`: upper half keeps bit,
            // lower half flips it. Build 2-regular random bipartite
            // connections from all `block` inputs to each half.
            for (hstart, _name) in [(base, "upper"), (base + half, "lower")] {
                // Random 2-regular bipartite graph: union of 2 random
                // "matchings" input-position → output-position mod half.
                for _ in 0..2 {
                    let mut targets: Vec<usize> = (0..half).collect();
                    targets.shuffle(rng);
                    for i in 0..block {
                        let t = targets[i % half];
                        b.add_edge(idx(level, base + i), idx(level + 1, hstart + t));
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{diameter_exact, is_connected};
    use crate::util::seeded_rng;

    #[test]
    fn mesh_of_trees_structure() {
        let s = 4;
        let g = mesh_of_trees(s);
        assert_eq!(g.n(), 16 + 2 * 4 * 3);
        assert!(is_connected(&g));
        // Leaves have degree exactly 2 (one row tree, one column tree).
        for leaf in 0..16u32 {
            assert_eq!(g.degree(leaf), 2, "leaf {leaf}");
        }
        assert!(g.max_degree() <= 4);
        // Diameter O(log s): going leaf → row root → … ≤ 4·log s.
        assert!(diameter_exact(&g) <= 4 * 2 + 2);
    }

    #[test]
    fn mesh_of_trees_larger() {
        let g = mesh_of_trees(8);
        assert_eq!(g.n(), 64 + 2 * 8 * 7);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
        // Diameter grows logarithmically: ≤ 4·log2(8) + 2 = 14.
        assert!(diameter_exact(&g) <= 14);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn mesh_of_trees_rejects_non_power() {
        mesh_of_trees(6);
    }

    #[test]
    fn kautz_counts_and_degree() {
        // K(2, 3): 3·2² = 12 vertices, out-degree 2 ⇒ undirected degree ≤ 4.
        let g = kautz(2, 3);
        assert_eq!(g.n(), 12);
        assert!(g.max_degree() <= 4);
        assert!(is_connected(&g));
        assert!(diameter_exact(&g) <= 3);
        // K(3, 2): 4·3 = 12 vertices.
        let g2 = kautz(3, 2);
        assert_eq!(g2.n(), 12);
        assert!(g2.max_degree() <= 6);
    }

    #[test]
    fn multibutterfly_structure() {
        let mut rng = seeded_rng(5);
        let g = multibutterfly(4, &mut rng);
        assert_eq!(g.n(), 5 * 16);
        assert!(is_connected(&g));
        // Constant degree (with multiplicity 2 and dedup, ≤ 16).
        assert!(g.max_degree() <= 16, "degree {}", g.max_degree());
        // Strictly more edges than the plain butterfly (the splitters).
        let bf = crate::generators::butterfly::butterfly(4);
        assert!(g.num_edges() > bf.num_edges());
    }

    #[test]
    fn multibutterfly_splitters_stay_in_blocks() {
        // An edge from (ℓ, r) goes to level ℓ+1 within r's 2^{d−ℓ} block.
        let mut rng = seeded_rng(6);
        let d = 3;
        let g = multibutterfly(d, &mut rng);
        let rows = 1usize << d;
        for (u, v) in g.edges() {
            let (lu, ru) = ((u as usize) / rows, (u as usize) % rows);
            let (lv, rv) = ((v as usize) / rows, (v as usize) % rows);
            assert_eq!(lu.abs_diff(lv), 1, "edges connect adjacent levels");
            let level = lu.min(lv);
            let block = 1usize << (d - level);
            assert_eq!(ru / block, rv / block, "edge leaves its splitter block");
        }
    }
}
