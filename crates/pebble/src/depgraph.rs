//! The dependency graph `Γ_G` of a guest computation (Definition 3.7).
//!
//! `Γ_G` has vertices `P × {0, …, T}` and directed edges
//! `((P, t), (P', t+1))` whenever `P = P'` or `{P, P'} ∈ E(G)`. A pebble
//! `(P', t+1)` can only be generated from its predecessors — this graph *is*
//! the data-dependency structure of the simulated computation.
//!
//! We exploit the characterization that `(P, t) →^i (P', t+i)` (an `i`-th
//! predecessor relation) holds **iff** `dist_G(P, P') ≤ i`: lazy self-edges
//! absorb slack, so reachability in `Γ_G` reduces to graph distance.

use unet_topology::analysis::bfs_distances;
use unet_topology::{Graph, Node};

/// A vertex `(P, t)` of the dependency graph.
pub type GammaNode = (Node, u32);

/// The predecessors of `(P, t)` in `Γ_G`: `(P, t−1)` and `(P', t−1)` for all
/// guest neighbours `P'`. Empty for `t = 0`.
pub fn predecessors(g: &Graph, v: GammaNode) -> Vec<GammaNode> {
    let (p, t) = v;
    if t == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(g.degree(p) + 1);
    out.push((p, t - 1));
    for &q in g.neighbors(p) {
        out.push((q, t - 1));
    }
    out
}

/// The successors of `(P, t)` in `Γ_G` truncated at horizon `t_max`.
pub fn successors(g: &Graph, v: GammaNode, t_max: u32) -> Vec<GammaNode> {
    let (p, t) = v;
    if t >= t_max {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(g.degree(p) + 1);
    out.push((p, t + 1));
    for &q in g.neighbors(p) {
        out.push((q, t + 1));
    }
    out
}

/// Whether `(P, t) →^{t'−t} (P', t')` in `Γ_G`, i.e. `(P, t)` is a
/// `(t'−t)`-th predecessor of `(P', t')` (Definition 3.7).
///
/// Holds iff `t ≤ t'` and `dist_G(P, P') ≤ t' − t` (self-edges let the path
/// idle at any vertex, so only the graph distance matters).
pub fn is_predecessor(g: &Graph, from: GammaNode, to: GammaNode) -> bool {
    let (p, t) = from;
    let (q, t2) = to;
    if t2 < t {
        return false;
    }
    let dist = bfs_distances(g, p)[q as usize];
    dist != u32::MAX && dist <= t2 - t
}

/// All guest nodes `P'` such that `(P, t) →^i (P', t+i)`: the ball of radius
/// `i` around `P` in `G`. This is the "information cone" of a configuration.
pub fn influence_cone(g: &Graph, p: Node, i: u32) -> Vec<Node> {
    bfs_distances(g, p)
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d <= i)
        .map(|(v, _)| v as Node)
        .collect()
}

/// Number of distinct directed paths from `(P, t)` to `(P', t + i)` in
/// `Γ_G`, by dynamic programming over levels. This counts the *data-flow
/// multiplicity* of a dependency: how many distinct causal chains carry
/// `P`'s configuration into `P'`'s, `i` steps later. Saturates at
/// `u64::MAX` (counts grow like `(c+1)^i`).
pub fn count_paths(g: &Graph, from: GammaNode, to: GammaNode) -> u64 {
    let (p, t) = from;
    let (q, t2) = to;
    if t2 < t {
        return 0;
    }
    let span = (t2 - t) as usize;
    // ways[v] = #paths from (p, t) to (v, t + level).
    let mut ways = vec![0u64; g.n()];
    ways[p as usize] = 1;
    let mut next = vec![0u64; g.n()];
    for _ in 0..span {
        for x in next.iter_mut() {
            *x = 0;
        }
        for v in 0..g.n() {
            let w = ways[v];
            if w == 0 {
                continue;
            }
            next[v] = next[v].saturating_add(w);
            for &u in g.neighbors(v as Node) {
                next[u as usize] = next[u as usize].saturating_add(w);
            }
        }
        std::mem::swap(&mut ways, &mut next);
    }
    ways[q as usize]
}

/// Check that a set of roots `R` covers all of `P × {t}` at horizon `x`:
/// for every guest node `i` there is `r ∈ R` with
/// `(P_r, t−x) →^x (P_i, t)` — the property Lemma 3.12's representative set
/// needs ("the leaves of these `h` trees cover the entire set `P × {t₀}`").
pub fn roots_cover(g: &Graph, roots: &[Node], x: u32) -> bool {
    let n = g.n();
    let mut covered = vec![false; n];
    for &r in roots {
        for v in influence_cone(g, r, x) {
            covered[v as usize] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{mesh, multitorus, ring, torus};

    #[test]
    fn predecessors_of_ring_node() {
        let g = ring(5);
        let preds = predecessors(&g, (0, 3));
        assert_eq!(preds.len(), 3);
        assert!(preds.contains(&(0, 2)));
        assert!(preds.contains(&(1, 2)));
        assert!(preds.contains(&(4, 2)));
        assert!(predecessors(&g, (0, 0)).is_empty());
    }

    #[test]
    fn successors_respect_horizon() {
        let g = ring(5);
        assert_eq!(successors(&g, (0, 3), 4).len(), 3);
        assert!(successors(&g, (0, 4), 4).is_empty());
    }

    #[test]
    fn predecessor_iff_distance() {
        let g = mesh(4, 4);
        // dist((0,0) → (3,3)) = 6 in the mesh.
        assert!(is_predecessor(&g, (0, 0), (15, 6)));
        assert!(is_predecessor(&g, (0, 0), (15, 9)));
        assert!(!is_predecessor(&g, (0, 0), (15, 5)));
        // Time must not run backwards.
        assert!(!is_predecessor(&g, (0, 5), (15, 3)));
        // Lazy path to itself.
        assert!(is_predecessor(&g, (7, 2), (7, 2)));
        assert!(is_predecessor(&g, (7, 2), (7, 9)));
    }

    #[test]
    fn influence_cone_is_ball() {
        let g = torus(4, 4);
        assert_eq!(influence_cone(&g, 0, 0), vec![0]);
        assert_eq!(influence_cone(&g, 0, 1).len(), 5);
        assert_eq!(influence_cone(&g, 0, 100).len(), 16);
    }

    #[test]
    fn path_counts_on_a_path_graph() {
        // On the 2-path 0–1, paths (0,0) → (0,2): sequences over {stay,
        // move} returning to 0 in 2 steps: stay-stay, move-move ⇒ 2.
        let g = unet_topology::generators::path(2);
        assert_eq!(count_paths(&g, (0, 0), (0, 2)), 2);
        assert_eq!(count_paths(&g, (0, 0), (1, 2)), 2); // sm, ms
        assert_eq!(count_paths(&g, (0, 0), (1, 1)), 1);
        assert_eq!(count_paths(&g, (0, 0), (0, 0)), 1);
        assert_eq!(count_paths(&g, (0, 3), (0, 1)), 0); // backwards
    }

    #[test]
    fn path_counts_grow_with_degree() {
        // K4: from any node, total walks of length i = 4^i; into a fixed
        // target it is 4^{i−1} for i ≥ 1.
        let g = unet_topology::generators::complete(4);
        assert_eq!(count_paths(&g, (0, 0), (2, 1)), 1);
        assert_eq!(count_paths(&g, (0, 0), (2, 2)), 4);
        assert_eq!(count_paths(&g, (0, 0), (2, 3)), 16);
    }

    #[test]
    fn path_count_positive_iff_predecessor() {
        let g = mesh(4, 4);
        for &(from, to) in &[((0u32, 0u32), (15u32, 6u32)), ((0, 0), (15, 5)), ((7, 2), (7, 9))] {
            let reach = is_predecessor(&g, from, to);
            let cnt = count_paths(&g, from, to);
            assert_eq!(reach, cnt > 0, "{from:?} → {to:?}");
        }
    }

    #[test]
    fn torus_centers_cover() {
        // One root per 4×4 block of an 8×8 multitorus covers everything
        // within the block diameter.
        let g = multitorus(4, 64);
        let roots = vec![0, 4, 32, 36]; // one corner per block
                                        // Block torus diameter = 4 (2+2); global edges only help.
        assert!(roots_cover(&g, &roots, 4));
        assert!(!roots_cover(&g, &[0], 2));
        assert!(roots_cover(&g, &[0], 8)); // 8×8 torus diameter = 8 ≤ 8
    }
}
