//! Aggregate analysis of verified traces: the weights and averages that
//! drive Lemma 3.12, plus heavy-processor accounting for Lemma 3.15.

use crate::check::Trace;
use crate::deptree::DepTree;
use unet_topology::Node;

/// Weight `w_{i,t}` of a dependency tree (Definition 3.11): the sum of
/// pebble weights `q_{P,t'}` over all `Γ`-nodes of the tree.
pub fn tree_weight(trace: &Trace, tree: &DepTree) -> usize {
    tree.gamma_nodes().map(|(v, t)| trace.weight(v, t)).sum()
}

/// Summary metrics of a verified simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationMetrics {
    /// Guest size `n`.
    pub guest_n: usize,
    /// Host size `m`.
    pub host_m: usize,
    /// Guest steps `T`.
    pub guest_t: u32,
    /// Host steps `T'`.
    pub host_steps: usize,
    /// Slowdown `s = T'/T`.
    pub slowdown: f64,
    /// Inefficiency `k = s·m/n`.
    pub inefficiency: f64,
    /// Total pebble copies `Σ q_{i,t}` over `t ≥ 1`.
    pub total_weight: usize,
    /// Average pebble copies per type, `Σ q_{i,t} / (n·T)` — the paper's
    /// "only k pebbles on average of any type come up".
    pub avg_weight: f64,
}

/// Compute [`SimulationMetrics`] from a trace.
pub fn metrics(trace: &Trace) -> SimulationMetrics {
    let slowdown = trace.host_steps as f64 / trace.guest_t as f64;
    let inefficiency = slowdown * trace.host_m as f64 / trace.guest_n as f64;
    let total = trace.total_weight();
    SimulationMetrics {
        guest_n: trace.guest_n,
        host_m: trace.host_m,
        guest_t: trace.guest_t,
        host_steps: trace.host_steps,
        slowdown,
        inefficiency,
        total_weight: total,
        avg_weight: total as f64 / (trace.guest_n as f64 * trace.guest_t as f64),
    }
}

/// Sanity invariant behind Lemma 3.12's averaging: the number of pebble
/// copies ever created is at most the number of host operations,
/// `Σ_{t≥1} Σ_i q_{i,t} ≤ m·T'`.
pub fn weight_bounded_by_work(trace: &Trace) -> bool {
    trace.total_weight() <= trace.host_m * trace.host_steps
}

/// Hosts `j` that are *`t`-heavy*: `|P(j, t)| > threshold` (Lemma 3.15 uses
/// `threshold = n/√m`). Returns the sorted host list.
pub fn heavy_hosts(trace: &Trace, t: u32, threshold: usize) -> Vec<Node> {
    let mut occupancy = vec![0usize; trace.host_m];
    if t == 0 {
        for o in occupancy.iter_mut() {
            *o = trace.guest_n;
        }
    } else {
        for i in 0..trace.guest_n as Node {
            if let crate::check::RepresentativeSet::Listed(hs) = trace.representatives(i, t) {
                for &q in hs {
                    occupancy[q as usize] += 1;
                }
            }
        }
    }
    occupancy.iter().enumerate().filter(|&(_, &o)| o > threshold).map(|(j, _)| j as Node).collect()
}

/// Averaging bound on the number of heavy hosts (the step inside
/// Lemma 3.15): since `Σ_j |P(j, t)| = Σ_i q_{i,t}`, at most
/// `Σ_i q_{i,t} / threshold` hosts can exceed `threshold`.
pub fn heavy_host_bound(trace: &Trace, t: u32, threshold: usize) -> usize {
    trace.level_weight(t) / threshold.max(1)
}

/// ASCII heatmap of the redundancy profile `q_{i,t}`: one row per guest
/// level `t = 1..=T` (top to bottom), one column per guest (downsampled to
/// `max_width`), digits `0–9` log-scaled (`.` = 1 copy, digits = more).
/// A diagnostic for *where* a simulation spends its redundancy — the
/// quantity the Theorem 3.1 counting charges for.
pub fn weight_heatmap(trace: &Trace, max_width: usize) -> String {
    let n = trace.guest_n;
    let width = max_width.clamp(1, n);
    let mut out = String::new();
    for t in 1..=trace.guest_t {
        out.push_str(&format!("t={t:>3} "));
        for col in 0..width {
            // Max weight over the guests bucketed into this column.
            let lo = col * n / width;
            let hi = ((col + 1) * n / width).max(lo + 1);
            let q = (lo..hi).map(|i| trace.weight(i as Node, t)).max().unwrap_or(0);
            out.push(match q {
                0 => ' ',
                1 => '.',
                q => {
                    let mag = (q as f64).log2().ceil() as u32;
                    char::from_digit(mag.min(9), 10).unwrap()
                }
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::protocol::{Op, Pebble, ProtocolBuilder};
    use unet_topology::generators::{complete, ring};

    fn simple_trace() -> Trace {
        let guest = ring(4);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(4, 1, 2);
        // Both hosts generate two finals each, in parallel.
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.set_op(1, Op::Generate(Pebble::new(1, 1)));
        b.end_step();
        b.set_op(0, Op::Generate(Pebble::new(2, 1)));
        b.set_op(1, Op::Generate(Pebble::new(3, 1)));
        b.end_step();
        check(&guest, &host, &b.finish()).expect("valid")
    }

    #[test]
    fn metrics_of_parallel_protocol() {
        let m = metrics(&simple_trace());
        assert_eq!(m.host_steps, 2);
        assert_eq!(m.slowdown, 2.0);
        assert_eq!(m.inefficiency, 1.0);
        assert_eq!(m.total_weight, 4);
        assert_eq!(m.avg_weight, 1.0);
    }

    #[test]
    fn work_bound_holds() {
        assert!(weight_bounded_by_work(&simple_trace()));
    }

    #[test]
    fn heavy_hosts_detection() {
        let trace = simple_trace();
        // At t=1 each host holds 2 pebbles.
        assert_eq!(heavy_hosts(&trace, 1, 1), vec![0, 1]);
        assert!(heavy_hosts(&trace, 1, 2).is_empty());
        // At t=0 everyone holds all 4.
        assert_eq!(heavy_hosts(&trace, 0, 3), vec![0, 1]);
        // Averaging bound: level weight 4, threshold 1 ⇒ ≤ 4 heavy hosts.
        assert_eq!(heavy_host_bound(&trace, 1, 1), 4);
        assert!(heavy_hosts(&trace, 1, 1).len() <= heavy_host_bound(&trace, 1, 1));
    }

    #[test]
    fn heatmap_shape_and_scale() {
        let trace = simple_trace();
        let map = weight_heatmap(&trace, 4);
        // One row for the single guest level, prefix + 4 cells.
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("t=  1 "));
        // Every pebble has exactly one holder: dots.
        assert_eq!(&lines[0][6..], "....");
        // Downsampling never exceeds n columns.
        let wide = weight_heatmap(&trace, 100);
        assert_eq!(wide.lines().next().unwrap().len(), 6 + 4);
    }

    #[test]
    fn tree_weight_on_singleton_block() {
        use crate::deptree::{dependency_tree, BlockTorus};
        let trace = simple_trace();
        let bt = BlockTorus::new(1, vec![0]);
        // A 1×1 block has depth 0: the tree is just the leaf (0, 1), so the
        // weight is q_{0,1} = 1 (only host 0 holds it).
        let tree = dependency_tree(&bt, 0, 1);
        assert_eq!(tree_weight(&trace, &tree), 1);
    }
}
