//! Process-wide sharing of step-invariant route plans.
//!
//! The per-run [`PlanCache`](unet_routing::plan::PlanCache) already makes
//! guest steps `3..=T` replay the plan computed at step 2 — but every *run*
//! still pays that first compilation, even when a long-lived process (the
//! `unet-serve` worker pool) simulates the same guest/host pair thousands of
//! times. A [`SharedPlanCache`] closes that gap: it memoizes the compiled
//! communication-phase skeleton across runs, keyed by everything the plan
//! can depend on and nothing it cannot.
//!
//! The key is a fingerprint of `(guest adjacency, host adjacency, embedding,
//! router name, route seed)`. Guest *states* and the step count are
//! deliberately excluded: the induced routing problem is a function of the
//! embedding and the guest's edges only (payloads are rebuilt every step),
//! which is exactly the invariant the per-run cache already relies on. The
//! route seed is part of the key because a randomized router's schedule is a
//! function of its per-phase seed — two runs share a plan only when they
//! would have compiled identical plans anyway, keeping the bit-for-bit
//! guarantee of `Simulation::builder` intact.
//!
//! Sharing is observable only through counters: engine runs that pre-seed
//! from (or publish to) a shared cache emit `sim.cache.shared.hits` /
//! `sim.cache.shared.misses`, and the cache itself keeps process totals for
//! the server's `metrics` endpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::embedding::Embedding;
use crate::simulate::CachedComm;
use unet_topology::Graph;

/// A thread-safe route-plan cache shared across simulation runs.
///
/// Construct one per process (or per server), then hand it to any number of
/// concurrent [`Simulation::builder`](crate::Simulation::builder) runs via
/// [`shared_cache`](crate::SimulationBuilder::shared_cache). Entries are
/// never evicted: the key space is the set of distinct workloads a process
/// serves, which is bounded in practice and tiny in memory (one
/// [`RoutePlan`](unet_routing::plan::RoutePlan) skeleton per workload).
#[derive(Debug, Default)]
pub struct SharedPlanCache {
    entries: Mutex<HashMap<u64, CachedComm>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedPlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct workload plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Process-total lookups that found a plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Process-total lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (`None` before the first
    /// lookup).
    pub fn hit_ratio(&self) -> Option<f64> {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Clone out the plan for `key`, counting a hit or miss.
    pub(crate) fn get(&self, key: u64) -> Option<CachedComm> {
        let got = self.entries.lock().expect("plan cache poisoned").get(&key).cloned();
        match got {
            Some(c) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(c)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a freshly compiled plan. First writer wins — concurrent
    /// compilations of the same workload produce identical plans (the key
    /// covers every input), so keeping the incumbent is safe.
    pub(crate) fn insert_if_absent(&self, key: u64, plan: CachedComm) {
        self.entries.lock().expect("plan cache poisoned").entry(key).or_insert(plan);
    }
}

/// FNV-1a over every input the compiled communication plan depends on.
pub(crate) fn plan_fingerprint(
    guest: &Graph,
    host: &Graph,
    embedding: &Embedding,
    router_name: &str,
    route_seed: u64,
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: u64, v: u64) -> u64 {
        let mut h = h;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    fn eat_graph(mut h: u64, g: &Graph) -> u64 {
        h = eat(h, g.n() as u64);
        for u in 0..g.n() {
            let nb = g.neighbors(u as unet_topology::Node);
            h = eat(h, nb.len() as u64);
            for &v in nb {
                h = eat(h, v as u64);
            }
        }
        h
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = eat_graph(h, guest);
    h = eat_graph(h, host);
    h = eat(h, embedding.m as u64);
    for &fu in &embedding.f {
        h = eat(h, fu as u64);
    }
    h = eat(h, router_name.len() as u64);
    for byte in router_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    }
    eat(h, route_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{ring, torus};

    #[test]
    fn fingerprint_separates_every_input() {
        let guest = ring(8);
        let host = torus(2, 2);
        let emb = Embedding::block(8, 4);
        let base = plan_fingerprint(&guest, &host, &emb, "bfs", 7);
        assert_eq!(base, plan_fingerprint(&guest, &host, &emb, "bfs", 7), "deterministic");
        assert_ne!(base, plan_fingerprint(&ring(10), &host, &Embedding::block(10, 4), "bfs", 7));
        assert_ne!(base, plan_fingerprint(&guest, &torus(2, 3), &Embedding::block(8, 6), "bfs", 7));
        assert_ne!(base, plan_fingerprint(&guest, &host, &emb, "valiant", 7));
        assert_ne!(base, plan_fingerprint(&guest, &host, &emb, "bfs", 8));
    }

    #[test]
    fn counters_track_lookups() {
        let cache = SharedPlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_ratio(), None);
        assert!(cache.get(1).is_none());
        cache.insert_if_absent(1, CachedComm::default());
        assert!(cache.get(1).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.hit_ratio(), Some(0.5));
    }
}
