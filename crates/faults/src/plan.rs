//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is a time-ordered script of fault events against a host
//! graph. Times are **guest-step boundaries**: an event with `at = t` fires
//! before guest step `t` is simulated (`at = 0` fires before anything runs).
//! Plans are built from a seed and are fully deterministic — the same seed
//! and parameters always produce the same plan, which is what makes degraded
//! runs reproducible and property-testable.

use rand::seq::SliceRandom;
use unet_topology::util::seeded_rng;
use unet_topology::{Graph, Node};

/// One kind of fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash-stop node failure: the node stops forever (fail-stop model —
    /// no byzantine behaviour, no recovery).
    NodeCrash {
        /// The crashed host node.
        node: Node,
    },
    /// Permanent link cut: the edge disappears forever.
    LinkCut {
        /// Lower endpoint (canonical order `u < v`).
        u: Node,
        /// Upper endpoint.
        v: Node,
    },
    /// Transient link flap: the edge goes down at the event time and comes
    /// back at `repair_at`.
    LinkFlap {
        /// Lower endpoint (canonical order `u < v`).
        u: Node,
        /// Upper endpoint.
        v: Node,
        /// Guest-step boundary at which the link is repaired
        /// (strictly greater than the injection time).
        repair_at: u32,
    },
}

/// A fault event: what happens, and at which guest-step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Guest-step boundary at which the fault fires.
    pub at: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-sorted script of fault events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

fn canonical(u: Node, v: Node) -> (Node, Node) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl FaultPlan {
    /// Wrap explicit events, stable-sorting by time (events at the same
    /// boundary keep their construction order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &mut events {
            match &mut e.kind {
                FaultKind::LinkCut { u, v } => {
                    let (a, b) = canonical(*u, *v);
                    (*u, *v) = (a, b);
                }
                FaultKind::LinkFlap { u, v, repair_at } => {
                    let (a, b) = canonical(*u, *v);
                    (*u, *v) = (a, b);
                    assert!(*repair_at > e.at, "flap must repair strictly after it fires");
                }
                FaultKind::NodeCrash { .. } => {}
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// An empty plan (healthy host).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash-stop `⌊rate·m⌋` distinct nodes of `g` at boundary `at`,
    /// sampled by `seed`.
    pub fn crashes(g: &Graph, rate: f64, at: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let count = (rate * g.n() as f64).floor() as usize;
        let mut nodes: Vec<Node> = (0..g.n() as Node).collect();
        nodes.shuffle(&mut seeded_rng(seed));
        FaultPlan::new(
            nodes
                .into_iter()
                .take(count)
                .map(|node| FaultEvent { at, kind: FaultKind::NodeCrash { node } })
                .collect(),
        )
    }

    /// Cut `⌊rate·|E|⌋` distinct links of `g` permanently at boundary `at`.
    pub fn link_cuts(g: &Graph, rate: f64, at: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut edges: Vec<(Node, Node)> = g.edges().collect();
        let count = (rate * edges.len() as f64).floor() as usize;
        edges.shuffle(&mut seeded_rng(seed));
        FaultPlan::new(
            edges
                .into_iter()
                .take(count)
                .map(|(u, v)| FaultEvent { at, kind: FaultKind::LinkCut { u, v } })
                .collect(),
        )
    }

    /// Flap `⌊rate·|E|⌋` distinct links down at boundary `at`, repaired
    /// `down_for ≥ 1` boundaries later.
    pub fn link_flaps(g: &Graph, rate: f64, at: u32, down_for: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(down_for >= 1, "a flap must stay down for at least one boundary");
        let mut edges: Vec<(Node, Node)> = g.edges().collect();
        let count = (rate * edges.len() as f64).floor() as usize;
        edges.shuffle(&mut seeded_rng(seed));
        FaultPlan::new(
            edges
                .into_iter()
                .take(count)
                .map(|(u, v)| FaultEvent {
                    at,
                    kind: FaultKind::LinkFlap { u, v, repair_at: at + down_for },
                })
                .collect(),
        )
    }

    /// Spatially correlated crash: a seeded centre node and every node
    /// within BFS distance `radius` of it crash together at boundary `at` —
    /// the "a rack caught fire" failure mode, the worst case for embeddings
    /// that rely on locality.
    pub fn correlated_crashes(g: &Graph, radius: u32, at: u32, seed: u64) -> Self {
        assert!(g.n() > 0, "cannot fault an empty host");
        let mut nodes: Vec<Node> = (0..g.n() as Node).collect();
        nodes.shuffle(&mut seeded_rng(seed));
        let centre = nodes[0];
        let dist = unet_topology::analysis::bfs_distances(g, centre);
        FaultPlan::new(
            (0..g.n() as Node)
                .filter(|&v| dist[v as usize] <= radius)
                .map(|node| FaultEvent { at, kind: FaultKind::NodeCrash { node } })
                .collect(),
        )
    }

    /// Merge another plan into this one (re-sorting by time).
    pub fn merge(self, other: FaultPlan) -> Self {
        let mut events = self.events;
        events.extend(other.events);
        FaultPlan::new(events)
    }

    /// The time-sorted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check that every event refers to a node or edge of `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let m = g.n() as Node;
        for e in &self.events {
            match e.kind {
                FaultKind::NodeCrash { node } => {
                    if node >= m {
                        return Err(format!("crash of node {node} out of range (m = {m})"));
                    }
                }
                FaultKind::LinkCut { u, v } | FaultKind::LinkFlap { u, v, .. } => {
                    if !g.has_edge(u, v) {
                        return Err(format!("link fault on non-edge ({u}, {v})"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{butterfly::butterfly, torus};

    #[test]
    fn crashes_are_deterministic_and_distinct() {
        let g = torus(4, 4);
        let a = FaultPlan::crashes(&g, 0.25, 1, 42);
        let b = FaultPlan::crashes(&g, 0.25, 1, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let mut nodes: Vec<Node> = a
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::NodeCrash { node } => node,
                _ => panic!("only crashes"),
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "sampled nodes must be distinct");
        // A different seed gives a different sample (whp for 16 choose 4).
        let c = FaultPlan::crashes(&g, 0.25, 1, 43);
        assert_ne!(a, c);
        a.validate(&g).unwrap();
    }

    #[test]
    fn link_faults_reference_real_edges() {
        let g = butterfly(3);
        let cuts = FaultPlan::link_cuts(&g, 0.1, 2, 7);
        cuts.validate(&g).unwrap();
        let flaps = FaultPlan::link_flaps(&g, 0.1, 2, 3, 7);
        flaps.validate(&g).unwrap();
        for e in flaps.events() {
            match e.kind {
                FaultKind::LinkFlap { repair_at, .. } => assert_eq!(repair_at, 5),
                _ => panic!("only flaps"),
            }
        }
    }

    #[test]
    fn events_sorted_by_time_stably() {
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 3, kind: FaultKind::NodeCrash { node: 1 } },
            FaultEvent { at: 1, kind: FaultKind::NodeCrash { node: 2 } },
            FaultEvent { at: 3, kind: FaultKind::LinkCut { u: 5, v: 4 } },
        ]);
        let at: Vec<u32> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![1, 3, 3]);
        // Canonical edge order applied.
        assert_eq!(plan.events()[2].kind, FaultKind::LinkCut { u: 4, v: 5 });
    }

    #[test]
    fn correlated_ball_is_connected_in_base() {
        let g = torus(6, 6);
        let plan = FaultPlan::correlated_crashes(&g, 1, 1, 9);
        // Radius-1 ball on a torus: centre + 4 neighbours.
        assert_eq!(plan.len(), 5);
        plan.validate(&g).unwrap();
        assert_eq!(plan, FaultPlan::correlated_crashes(&g, 1, 1, 9));
    }

    #[test]
    fn validate_rejects_foreign_elements() {
        let g = torus(2, 2);
        let bad =
            FaultPlan::new(vec![FaultEvent { at: 0, kind: FaultKind::NodeCrash { node: 99 } }]);
        assert!(bad.validate(&g).is_err());
        let non_edge =
            FaultPlan::new(vec![FaultEvent { at: 0, kind: FaultKind::LinkCut { u: 0, v: 3 } }]);
        assert!(non_edge.validate(&g).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly after")]
    fn instant_repair_rejected() {
        FaultPlan::new(vec![FaultEvent {
            at: 2,
            kind: FaultKind::LinkFlap { u: 0, v: 1, repair_at: 2 },
        }]);
    }
}
