//! The fixed subgraph `G₀` of Definition 3.9.
//!
//! `G₀ = (V, E₁ ∪ E₂)` where `E₁` is a `(2a, n)`-multitorus
//! (`a = √(log m)`) and `E₂` a 4-regular `(α, β)`-expander; every node has
//! degree ≤ 12. `G₀` is what gives adversarial guests enough *structure* for
//! the counting argument: the multitorus blocks carry the dependency trees
//! (Lemma 3.10), the expander forces the wavefront to spread (Lemma 3.15).
//!
//! Deviation from the paper, documented: instead of *assuming* an expander,
//! we build a random 4-regular graph and **certify** `(α, β)` spectrally
//! (Tanner's bound), so the constants flowing into the lower-bound formulas
//! are measured, not asserted.

use rand::Rng;
use unet_pebble::deptree::BlockTorus;
use unet_topology::generators::{blocks, multitorus, random_hamiltonian_union, torus_side};
use unet_topology::spectral::certify_expander;
use unet_topology::util::isqrt;
use unet_topology::Graph;

/// The assembled `G₀` with its certified constants.
#[derive(Debug, Clone)]
pub struct G0 {
    /// The graph `E₁ ∪ E₂` (degree ≤ 12).
    pub graph: Graph,
    /// The multitorus part `E₁` alone (the dependency trees live here).
    pub multitorus: Graph,
    /// Block side `2a`.
    pub block_side: usize,
    /// The paper's `a = √(log m)` parameter used.
    pub a: usize,
    /// Block geometries `T_1, …, T_h`.
    pub blocks: Vec<BlockTorus>,
    /// Certified expander parameters `(α, β, γ)` with
    /// `γ = ½·α·(1 − 1/β)` (Lemma 3.15).
    pub alpha: f64,
    /// Certified expansion factor `β > 1`.
    pub beta: f64,
    /// The lower-bound constant `γ`.
    pub gamma: f64,
}

/// The paper's `a = ⌈√(log₂ m)⌉` for a host of size `m`.
pub fn a_for_host(m: usize) -> usize {
    let lg = (m.max(2) as f64).log2();
    (lg.sqrt().ceil() as usize).max(1)
}

/// Build `G₀` on `n` nodes with block side `2a`.
///
/// Requirements (the paper's w.l.o.g. assumptions, enforced):
/// `n` a perfect square and `2a` divides `√n`.
///
/// # Panics
/// Panics if the divisibility constraints fail or the sampled expander does
/// not certify (retry with another seed — random 4-regular graphs certify
/// with overwhelming probability).
pub fn build_g0<R: Rng>(n: usize, a: usize, rng: &mut R) -> G0 {
    let side = 2 * a;
    let grid = torus_side(n);
    assert!(grid.is_multiple_of(side), "block side 2a = {side} must divide √n = {grid}");
    let e1 = multitorus(side, n);
    let e2 = random_hamiltonian_union(n, 2, rng);
    let graph = e1.union(&e2);
    assert!(graph.max_degree() <= 12, "G0 degree {} exceeds 12", graph.max_degree());
    let (alpha, beta, gamma) = certify_expander(&e2, 0.5, 400, rng)
        .expect("random 4-regular graph failed to certify as an expander");
    let bts = blocks(side, n).iter().map(|b| BlockTorus::from_sorted_block(grid, b)).collect();
    G0 { graph, multitorus: e1, block_side: side, a, blocks: bts, alpha, beta, gamma }
}

/// Build `G₀` sized for a host of `m` processors (`a = √(log m)`), rounding
/// `n` **up** to the nearest square whose side `2a` divides. Returns the
/// adjusted `n` alongside.
pub fn build_g0_for_host<R: Rng>(n_hint: usize, m: usize, rng: &mut R) -> (G0, usize) {
    let a = a_for_host(m);
    let side = 2 * a;
    // Smallest grid ≥ √n_hint that is a multiple of `side`.
    let grid = isqrt(n_hint.max(side * side)).div_ceil(side).max(1) * side;
    let n = grid * grid;
    (build_g0(n, a, rng), n)
}

impl G0 {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of blocks `h = n / (2a)²`.
    pub fn h(&self) -> usize {
        self.blocks.len()
    }

    /// The block index containing guest node `v`.
    pub fn block_of(&self, v: unet_topology::Node) -> usize {
        self.blocks
            .iter()
            .position(|b| b.local_of(v).is_some())
            .expect("every node lies in exactly one block")
    }

    /// Minimum guest degree `c` for `U[G₀]` sampling: `c ≥ deg(G₀)` with an
    /// even residual. The paper fixes `c = 16`.
    pub fn paper_c(&self) -> usize {
        16
    }

    /// Minimum computation length the lower-bound analysis needs:
    /// `T > tree depth` (the paper's `T ≥ ⌈2√(log m)⌉` in our constants).
    pub fn min_steps(&self) -> u32 {
        unet_pebble::deptree::tree_depth(self.block_side) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::analysis::is_connected;
    use unet_topology::util::seeded_rng;

    #[test]
    fn a_for_host_values() {
        assert_eq!(a_for_host(2), 1);
        assert_eq!(a_for_host(16), 2);
        assert_eq!(a_for_host(512), 3);
        assert_eq!(a_for_host(1 << 16), 4);
    }

    #[test]
    fn g0_structure() {
        let mut rng = seeded_rng(3);
        let g0 = build_g0(64, 2, &mut rng); // blocks of side 4 on an 8×8 grid
        assert_eq!(g0.n(), 64);
        assert_eq!(g0.h(), 4);
        assert_eq!(g0.block_side, 4);
        assert!(g0.graph.max_degree() <= 12);
        assert!(is_connected(&g0.graph));
        assert!(g0.beta > 1.0);
        assert!(g0.gamma > 0.0);
        // Multitorus is a subgraph.
        assert!(g0.graph.contains_subgraph(&g0.multitorus));
    }

    #[test]
    fn blocks_partition_nodes() {
        let mut rng = seeded_rng(5);
        let g0 = build_g0(64, 2, &mut rng);
        let mut seen = [false; 64];
        for bt in &g0.blocks {
            for &v in bt.nodes() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(g0.block_of(0), 0);
        assert_eq!(g0.block_of(63), 3);
    }

    #[test]
    fn g0_for_host_rounds_n() {
        let mut rng = seeded_rng(7);
        let (g0, n) = build_g0_for_host(60, 16, &mut rng); // a = 2, side 4
        assert_eq!(n, 64);
        assert_eq!(g0.n(), 64);
        let (_, n2) = build_g0_for_host(100, 16, &mut rng);
        assert_eq!(n2, 144); // grid 12 (next multiple of 4 ≥ 10)
    }

    #[test]
    fn g0_supports_u_g0_sampling() {
        let mut rng = seeded_rng(11);
        let g0 = build_g0(64, 2, &mut rng);
        // The paper's c = 16 needs even residual degree.
        let d0 = g0.graph.max_degree();
        // Our G0 may have degree < 12 at some nodes (dedup overlaps), so the
        // U[G0] sampler needs a regular G0. Check degree histogram instead.
        let hist = g0.graph.degree_histogram();
        assert!(hist.len() <= 13, "max degree {}", d0);
    }
}
