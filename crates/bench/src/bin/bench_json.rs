//! `bench-json` — machine-readable benchmark artifacts, from the registry.
//!
//! Thin driver over [`unet_bench::registry`]: sweeps every registered
//! experiment (E1, E2, E16, E17, E18) and writes the versioned
//! `BENCH.json` (schema `unet-bench/2`) — the only artifact; the legacy
//! per-experiment `BENCH_E*.json` files had their deprecation cycle and
//! are gone. The experiment logic itself (grids, runners, expected
//! shapes) lives in the registry; this binary only does I/O. Prefer
//! `unet bench run` / `unet bench diff` for the full CLI (filtering,
//! resume, the shape-regression gate).
//!
//! ```text
//! cargo run -p unet-bench --bin bench-json [--release] [--quick] [OUT_DIR]
//! ```
//!
//! `--quick` shrinks every experiment to CI-smoke sizes (seconds, not
//! minutes) without changing the artifact schema.

use unet_bench::sweep::{check_shapes, run_to_file, SweepOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| ".".into());
    let opts = SweepOptions { quick, ..SweepOptions::default() };
    let bench_path = format!("{out_dir}/BENCH.json");
    let (doc, progress) = run_to_file(&bench_path, &opts, false).unwrap_or_else(|e| {
        eprintln!("bench-json: {e}");
        std::process::exit(1);
    });
    for line in &progress {
        println!("{line}");
    }
    println!("wrote {bench_path} ({} experiments)", doc.experiments.len());
    // The artifact must satisfy its own shape predicates at birth.
    let mut bent = 0;
    for o in check_shapes(&doc) {
        if let Some(v) = o.violation {
            eprintln!("bench-json: {} shape violated: {v}", o.exp);
            bent += 1;
        }
    }
    if bent > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use unet_bench::registry::registry;
    use unet_bench::sweep::{run_experiment, run_sweep, SweepOptions};
    use unet_obs::json::Value;

    fn quick_doc(filter: &str) -> unet_bench::schema::BenchDoc {
        run_sweep(&SweepOptions {
            quick: true,
            filter: Some(SweepOptions::parse_filter(filter)),
            threads: 2,
        })
    }

    #[test]
    fn artifacts_round_trip_with_required_fields() {
        // E1 exercises the builder engine; E2 the trade-off table. (E16 and
        // E17 have their own registry tests.)
        let doc = quick_doc("e1,e2");
        for exp in &doc.experiments {
            assert!(!exp.rows.is_empty());
            for row in &exp.rows {
                assert!(row.get("host_m").and_then(Value::as_u64).is_some());
                assert!(row.get("guest_n").and_then(Value::as_u64).is_some());
            }
            assert!(exp.wall_ms_total >= 0.0);
        }
        // E1 rows carry measured slowdown + wall time (the regression signal).
        let e1 = doc.experiment("E1").expect("E1 present");
        for row in &e1.rows {
            assert!(row.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(row.get("inefficiency").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(row.get("makespan").and_then(Value::as_u64).unwrap() > 0);
            assert!(row.get("wall_ms").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }

    #[test]
    fn e16_rows_respect_the_surviving_size_bound() {
        // The registry's shape predicates check k ≥ α·log₂(m') at gate
        // time; here we re-check from the rows so schema drift can't hide
        // a violation.
        let exp = registry().into_iter().find(|e| e.id == "E16").unwrap();
        let result = run_experiment(&exp, true, 2, None);
        assert_eq!(result.rows.len(), 4, "2 rates × 2 hosts in quick mode");
        let mut faulted = 0;
        for row in &result.rows {
            let m = row.get("host_m").and_then(Value::as_u64).unwrap();
            let m_surv = row.get("m_surviving").and_then(Value::as_u64).unwrap();
            let k = row.get("k").and_then(Value::as_f64).unwrap();
            let bound = row.get("k_bound").and_then(Value::as_f64).unwrap();
            assert!(m_surv <= m && m_surv > 0);
            assert!(k >= bound, "k = {k} below bound {bound}");
            let rate = row.get("fault_rate").and_then(Value::as_f64).unwrap();
            if rate > 0.0 {
                faulted += 1;
                assert!(m_surv < m, "crashes at rate {rate} must kill someone");
            } else {
                assert_eq!(m_surv, m);
                assert_eq!(row.get("dropped").and_then(Value::as_u64).unwrap(), 0);
            }
        }
        assert_eq!(faulted, 2);
    }
}
