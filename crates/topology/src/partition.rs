//! Balanced graph bipartitions and edge cuts.
//!
//! The bandwidth-based lower bounds of Kruskal & Rappoport \[10\] (cited in
//! the paper's related work) compare the communication demand a guest
//! pushes across a cut with the host's capacity across it. This module
//! provides the cut machinery: exact cut evaluation, a Kernighan–Lin-style
//! local-search bisection heuristic, and canonical bisections for the
//! families whose widths are known in closed form.

use crate::graph::{Graph, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// Number of edges crossing the bipartition `side` (`true`/`false` halves).
pub fn edge_cut(g: &Graph, side: &[bool]) -> usize {
    assert_eq!(side.len(), g.n());
    g.edges().filter(|&(u, v)| side[u as usize] != side[v as usize]).count()
}

/// Whether the bipartition is balanced (halves differ by ≤ 1).
pub fn is_balanced(side: &[bool]) -> bool {
    let a = side.iter().filter(|&&s| s).count();
    let b = side.len() - a;
    a.abs_diff(b) <= 1
}

/// Kernighan–Lin-style bisection: start from a random balanced split and
/// greedily swap the pair of cross-side vertices with the best cut gain
/// until no improving swap exists (repeated `restarts` times, best kept).
/// A heuristic *upper bound* on the bisection width — which is the right
/// direction for host-capacity bounds.
pub fn kl_bisection<R: Rng>(g: &Graph, restarts: usize, rng: &mut R) -> Vec<bool> {
    let n = g.n();
    let mut best: Option<(usize, Vec<bool>)> = None;
    for _ in 0..restarts.max(1) {
        // Random balanced start.
        let mut order: Vec<Node> = (0..n as Node).collect();
        order.shuffle(rng);
        let mut side = vec![false; n];
        for &v in order.iter().take(n / 2) {
            side[v as usize] = true;
        }
        // Cut reduction from moving v across: crossing edges become internal
        // (−1 each) and internal ones start crossing (+1 each).
        let gain = |side: &[bool], v: Node| -> i64 {
            let mut same = 0i64;
            let mut cross = 0i64;
            for &w in g.neighbors(v) {
                if side[w as usize] == side[v as usize] {
                    same += 1;
                } else {
                    cross += 1;
                }
            }
            cross - same
        };
        // Greedy improving swaps.
        loop {
            let mut best_swap: Option<(i64, Node, Node)> = None;
            for u in 0..n as Node {
                if !side[u as usize] {
                    continue;
                }
                for v in 0..n as Node {
                    if side[v as usize] {
                        continue;
                    }
                    // Swap gain = gain(u) + gain(v) − 2·[u ~ v].
                    let g_uv = gain(&side, u) + gain(&side, v) - 2 * i64::from(g.has_edge(u, v));
                    if g_uv > 0 && best_swap.is_none_or(|(bg, _, _)| g_uv > bg) {
                        best_swap = Some((g_uv, u, v));
                    }
                }
            }
            match best_swap {
                Some((_, u, v)) => {
                    side[u as usize] = false;
                    side[v as usize] = true;
                }
                None => break,
            }
        }
        let cut = edge_cut(g, &side);
        if best.as_ref().is_none_or(|(c, _)| cut < *c) {
            best = Some((cut, side));
        }
    }
    best.expect("at least one restart").1
}

/// The canonical half-split of a row-major `rows × cols` grid: top half vs
/// bottom half — the exact bisection of meshes (`cols` edges) and tori
/// (`2·cols` edges).
pub fn grid_half_split(rows: usize, cols: usize) -> Vec<bool> {
    (0..rows * cols).map(|v| v / cols < rows / 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, mesh, ring, torus};
    use crate::util::seeded_rng;

    #[test]
    fn cut_and_balance_basics() {
        let g = ring(8);
        let side: Vec<bool> = (0..8).map(|v| v < 4).collect();
        assert_eq!(edge_cut(&g, &side), 2);
        assert!(is_balanced(&side));
        let lop: Vec<bool> = (0..8).map(|v| v < 2).collect();
        assert!(!is_balanced(&lop));
    }

    #[test]
    fn grid_split_cuts_match_theory() {
        // Mesh rows×cols cut by the horizontal bisector: `cols` edges.
        let side = grid_half_split(4, 6);
        assert_eq!(edge_cut(&mesh(4, 6), &side), 6);
        // Torus adds the wrap-around layer: 2·cols.
        assert_eq!(edge_cut(&torus(4, 6), &side), 12);
        assert!(is_balanced(&side));
    }

    #[test]
    fn kl_finds_ring_bisection() {
        let g = ring(16);
        // 10 restarts: enough that every probed seed escapes the cut-4
        // local minimum of greedy pairwise swaps on a ring.
        let side = kl_bisection(&g, 10, &mut seeded_rng(1));
        assert!(is_balanced(&side));
        assert_eq!(edge_cut(&g, &side), 2, "ring bisection width is 2");
    }

    #[test]
    fn kl_matches_torus_bisection() {
        let g = torus(4, 4);
        let side = kl_bisection(&g, 8, &mut seeded_rng(2));
        assert!(is_balanced(&side));
        assert_eq!(edge_cut(&g, &side), 8, "4×4 torus bisection width is 2·4");
    }

    #[test]
    fn kl_on_complete_graph() {
        // K8 bisection: 4·4 = 16 regardless of split.
        let g = complete(8);
        let side = kl_bisection(&g, 2, &mut seeded_rng(3));
        assert_eq!(edge_cut(&g, &side), 16);
    }

    #[test]
    fn kl_never_worse_than_random_start() {
        let g = crate::generators::random_regular(32, 4, &mut seeded_rng(4));
        let mut rng = seeded_rng(5);
        let refined = kl_bisection(&g, 3, &mut rng);
        // Compare against a fresh random balanced split.
        let mut order: Vec<Node> = (0..32).collect();
        order.shuffle(&mut rng);
        let mut random_side = vec![false; 32];
        for &v in order.iter().take(16) {
            random_side[v as usize] = true;
        }
        assert!(edge_cut(&g, &refined) <= edge_cut(&g, &random_side));
    }
}
