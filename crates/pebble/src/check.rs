//! Protocol validity checking and trace extraction.
//!
//! [`check`] replays a [`Protocol`] against the guest and host graphs and
//! either rejects it with a precise [`CheckError`] or returns a [`Trace`]:
//! the complete record of who held which pebble from when — i.e. the sets
//! `Q_S(i, t)` of *representatives* and `Q'_S(i, t)` of *generators* that the
//! paper's entire lower-bound analysis (Section 3.2–3.3) is phrased in.

use crate::protocol::{Op, Pebble, Protocol};
use unet_obs::{NoopRecorder, Recorder};
use unet_topology::util::FxHashMap;
use unet_topology::{Graph, Node};

/// Why a protocol is invalid, with enough context to pinpoint the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A step row does not have exactly `m` entries.
    BadRowLength {
        /// Host step index.
        step: usize,
        /// Observed row length.
        got: usize,
    },
    /// `Send` targets a processor that is not a host neighbour.
    SendToNonNeighbor {
        /// Host step index.
        step: usize,
        /// Sending processor.
        host: Node,
        /// Intended destination.
        to: Node,
    },
    /// `Send` of a pebble the sender does not hold at the start of the step.
    SendWithoutHolding {
        /// Host step index.
        step: usize,
        /// Sending processor.
        host: Node,
        /// The pebble it claimed to send.
        pebble: Pebble,
    },
    /// `Send` whose destination is not simultaneously receiving from the
    /// sender.
    UnmatchedSend {
        /// Host step index.
        step: usize,
        /// Sending processor.
        host: Node,
        /// Destination whose op is not `Recv { from: host }`.
        to: Node,
    },
    /// `Recv` whose source is not simultaneously sending to the receiver.
    UnmatchedRecv {
        /// Host step index.
        step: usize,
        /// Receiving processor.
        host: Node,
        /// Source whose op is not `Send { to: host, .. }`.
        from: Node,
    },
    /// `Recv` from a processor that is not a host neighbour.
    RecvFromNonNeighbor {
        /// Host step index.
        step: usize,
        /// Receiving processor.
        host: Node,
        /// Claimed source.
        from: Node,
    },
    /// `Generate((P_i, t))` with `t = 0` or `t > T`, or `P_i ≥ n`.
    GenerateOutOfRange {
        /// Host step index.
        step: usize,
        /// Generating processor.
        host: Node,
        /// The offending pebble.
        pebble: Pebble,
    },
    /// `Generate((P_i, t))` while missing a predecessor pebble
    /// `(P_j, t−1)` for `P_j = P_i` or a guest neighbour of `P_i`.
    GenerateMissingPredecessor {
        /// Host step index.
        step: usize,
        /// Generating processor.
        host: Node,
        /// The pebble being generated.
        pebble: Pebble,
        /// The missing predecessor.
        missing: Pebble,
    },
    /// After `T'` steps some final pebble `(P_i, T)` was never generated.
    MissingFinalPebble {
        /// Guest node whose final configuration is missing.
        node: Node,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for CheckError {}

/// The verified outcome of replaying a protocol: pebble custody records.
///
/// Terminology maps to the paper as:
/// * [`Trace::representatives`]`(i, t)` = `Q_S(i, t)`,
/// * [`Trace::generators`]`(i, t)` = `Q'_S(i, t)`
///   (hosts in `Q_S(i,t)` that generate `(P_i, t+1)`),
/// * [`Trace::weight`]`(i, t)` = `q_{i,t} = |Q_S(i, t)|` (Definition 3.11).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Guest size `n`.
    pub guest_n: usize,
    /// Guest steps `T`.
    pub guest_t: u32,
    /// Host size `m`.
    pub host_m: usize,
    /// Host steps `T'`.
    pub host_steps: usize,
    /// `holders[idx(i, t)]` for `t ≥ 1`: hosts holding `(P_i, t)` at the end,
    /// in order of first acquisition.
    holders: Vec<Vec<Node>>,
    /// `generated_by[idx(i, t)]` for `t ≥ 1`: hosts that executed
    /// `Generate((P_i, t))`, in execution order.
    generated_by: Vec<Vec<Node>>,
    /// Per-host: pebble key → host step of *first* acquisition (1-based:
    /// a pebble acquired in step τ is usable from step τ+1; initial pebbles
    /// are step 0).
    acquired: Vec<FxHashMap<u64, u32>>,
}

impl Trace {
    #[inline]
    fn idx(&self, i: Node, t: u32) -> usize {
        debug_assert!(t >= 1 && t <= self.guest_t && (i as usize) < self.guest_n);
        (i as usize) * self.guest_t as usize + (t as usize - 1)
    }

    /// The representatives `Q_S(i, t)`: hosts holding `(P_i, t)` at the end
    /// of the simulation. For `t = 0` every host qualifies (initial pebbles).
    pub fn representatives(&self, i: Node, t: u32) -> RepresentativeSet<'_> {
        if t == 0 {
            RepresentativeSet::All(self.host_m)
        } else {
            RepresentativeSet::Listed(&self.holders[self.idx(i, t)])
        }
    }

    /// Weight `q_{i,t} = |Q_S(i, t)|` (Definition 3.11).
    pub fn weight(&self, i: Node, t: u32) -> usize {
        match self.representatives(i, t) {
            RepresentativeSet::All(m) => m,
            RepresentativeSet::Listed(v) => v.len(),
        }
    }

    /// The generators `Q'_S(i, t)`: hosts that hold `(P_i, t)` and generate
    /// `(P_i, t+1)` during the protocol. Empty iff `(P_i, t+1)` is never
    /// generated; requires `t < T`.
    pub fn generators(&self, i: Node, t: u32) -> &[Node] {
        assert!(t < self.guest_t, "Q'_S(i, t) is defined for t < T");
        &self.generated_by[self.idx(i, t + 1)]
    }

    /// Hosts that executed `Generate((P_i, t))`, `t ≥ 1`.
    pub fn generated_by(&self, i: Node, t: u32) -> &[Node] {
        &self.generated_by[self.idx(i, t)]
    }

    /// Host step (1-based) at which host `q` first acquired `(P_i, t)`;
    /// `Some(0)` for initial pebbles, `None` if `q` never held it.
    pub fn acquisition_step(&self, q: Node, p: Pebble) -> Option<u32> {
        if p.t == 0 {
            return Some(0);
        }
        self.acquired[q as usize].get(&p.key()).copied()
    }

    /// Earliest host step after which a *generating* pebble of type
    /// `(P_i, t)` exists: the first acquisition of `(P_i, t)` by any host
    /// that eventually generates `(P_i, t+1)` (the quantity behind
    /// `E_t(τ)` in Definition 3.16). `None` if `(P_i, t+1)` is never
    /// generated.
    pub fn earliest_generating_hold(&self, i: Node, t: u32) -> Option<u32> {
        self.generators(i, t)
            .iter()
            .filter_map(|&q| self.acquisition_step(q, Pebble::new(i, t)))
            .min()
    }

    /// Total pebble-copy count `Σ_{i,t≥1} q_{i,t}` — the quantity the paper
    /// bounds by `m·T' = n·k·T` in Lemma 3.12.
    pub fn total_weight(&self) -> usize {
        self.holders.iter().map(|h| h.len()).sum()
    }

    /// Sum of weights at a fixed guest time `t` (the `Σ_i q_{i,t}` that
    /// Lemma 3.13(2) bounds by `384·n·k`).
    pub fn level_weight(&self, t: u32) -> usize {
        (0..self.guest_n as Node).map(|i| self.weight(i, t)).sum()
    }

    /// `P(j, t)` of Lemma 3.15: the guest nodes whose `t`-pebble is held by
    /// host `j`. Computed by scanning level `t`.
    pub fn guests_on_host(&self, j: Node, t: u32) -> Vec<Node> {
        (0..self.guest_n as Node)
            .filter(|&i| match self.representatives(i, t) {
                RepresentativeSet::All(_) => true,
                RepresentativeSet::Listed(v) => v.contains(&j),
            })
            .collect()
    }
}

/// A view of `Q_S(i, t)` that avoids materializing the all-hosts set for the
/// initial pebbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepresentativeSet<'a> {
    /// Every host holds the pebble (only for `t = 0`).
    All(usize),
    /// Exactly these hosts hold the pebble.
    Listed(&'a [Node]),
}

impl RepresentativeSet<'_> {
    /// Number of representatives.
    pub fn len(&self) -> usize {
        match self {
            RepresentativeSet::All(m) => *m,
            RepresentativeSet::Listed(v) => v.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, q: Node) -> bool {
        match self {
            RepresentativeSet::All(m) => (q as usize) < *m,
            RepresentativeSet::Listed(v) => v.contains(&q),
        }
    }

    /// Materialize as a vector.
    pub fn to_vec(&self) -> Vec<Node> {
        match self {
            RepresentativeSet::All(m) => (0..*m as Node).collect(),
            RepresentativeSet::Listed(v) => v.to_vec(),
        }
    }
}

/// Replay `proto` against `guest` and `host`, enforcing every rule of the
/// Section 3.1 pebble game, and return the custody [`Trace`].
///
/// Rules enforced:
/// 1. every step assigns exactly one op to each of the `m` processors;
/// 2. sends go to host neighbours, carry a held pebble, and pair with a
///    matching receive (one receive per processor per step);
/// 3. generations have all predecessor pebbles present *before* the step;
/// 4. every final pebble `(P_i, T)` is generated by the end.
pub fn check(guest: &Graph, host: &Graph, proto: &Protocol) -> Result<Trace, CheckError> {
    check_recorded(guest, host, proto, &mut NoopRecorder)
}

/// [`check`] with instrumentation. Emits, under the `pebble.check` span:
///
/// * counters `pebble.ops.idle` / `.generate` / `.send` / `.recv` — the
///   protocol's op mix (counted from the rows, so they are exact even when
///   the replay rejects);
/// * counter `pebble.acquisitions` — distinct (host, pebble) custody
///   records created (`Σ q_{i,t}`, the quantity of Lemma 3.12);
/// * histogram `pebble.level_weight` — `Σ_i q_{i,t}` per guest level
///   `t ≥ 1`: how fragmented each level's pebble copies are across hosts
///   (Lemma 3.13(2) bounds this by `384·n·k`);
/// * histogram `pebble.holders_per_pebble` — `q_{i,t}` per pebble type.
///
/// The span is closed on rejection too, so a trace containing a failed
/// check still balances.
pub fn check_recorded<REC: Recorder + ?Sized>(
    guest: &Graph,
    host: &Graph,
    proto: &Protocol,
    rec: &mut REC,
) -> Result<Trace, CheckError> {
    rec.span_start("pebble.check");
    let result = check_impl(guest, host, proto);
    rec.span_end("pebble.check");
    let (mut idle, mut generate, mut send, mut recv) = (0u64, 0u64, 0u64, 0u64);
    for row in &proto.steps {
        for op in row {
            match op {
                Op::Idle => idle += 1,
                Op::Generate(_) => generate += 1,
                Op::Send { .. } => send += 1,
                Op::Recv { .. } => recv += 1,
            }
        }
    }
    rec.counter("pebble.ops.idle", idle);
    rec.counter("pebble.ops.generate", generate);
    rec.counter("pebble.ops.send", send);
    rec.counter("pebble.ops.recv", recv);
    if let Ok(trace) = &result {
        rec.counter("pebble.acquisitions", trace.total_weight() as u64);
        for t in 1..=trace.guest_t {
            rec.histogram("pebble.level_weight", trace.level_weight(t) as u64);
        }
        for holders in &trace.holders {
            rec.histogram("pebble.holders_per_pebble", holders.len() as u64);
        }
    }
    result
}

fn check_impl(guest: &Graph, host: &Graph, proto: &Protocol) -> Result<Trace, CheckError> {
    let n = proto.guest_n;
    let t_max = proto.guest_t;
    let m = proto.host_m;
    assert_eq!(guest.n(), n, "guest graph size mismatch");
    assert_eq!(host.n(), m, "host graph size mismatch");

    let mut trace = Trace {
        guest_n: n,
        guest_t: t_max,
        host_m: m,
        host_steps: proto.steps.len(),
        holders: vec![Vec::new(); n * t_max as usize],
        generated_by: vec![Vec::new(); n * t_max as usize],
        acquired: vec![FxHashMap::default(); m],
    };

    // Holding test: t = 0 pebbles are universal; otherwise look up the
    // acquisition map with "strictly before this step" semantics.
    let held_before =
        |acquired: &Vec<FxHashMap<u64, u32>>, q: Node, p: Pebble, step: u32| -> bool {
            if p.t == 0 {
                return (p.node as usize) < n;
            }
            acquired[q as usize].get(&p.key()).is_some_and(|&s| s < step)
        };

    for (step0, row) in proto.steps.iter().enumerate() {
        let step = step0 as u32 + 1; // 1-based host time
        if row.len() != m {
            return Err(CheckError::BadRowLength { step: step0, got: row.len() });
        }
        // Phase 1: validate every op against the *pre-step* state.
        for (qi, op) in row.iter().enumerate() {
            let q = qi as Node;
            match *op {
                Op::Idle => {}
                Op::Generate(p) => {
                    if p.t == 0 || p.t > t_max || p.node as usize >= n {
                        return Err(CheckError::GenerateOutOfRange {
                            step: step0,
                            host: q,
                            pebble: p,
                        });
                    }
                    let own = Pebble::new(p.node, p.t - 1);
                    if !held_before(&trace.acquired, q, own, step) {
                        return Err(CheckError::GenerateMissingPredecessor {
                            step: step0,
                            host: q,
                            pebble: p,
                            missing: own,
                        });
                    }
                    for &nb in guest.neighbors(p.node) {
                        let pred = Pebble::new(nb, p.t - 1);
                        if !held_before(&trace.acquired, q, pred, step) {
                            return Err(CheckError::GenerateMissingPredecessor {
                                step: step0,
                                host: q,
                                pebble: p,
                                missing: pred,
                            });
                        }
                    }
                }
                Op::Send { pebble, to } => {
                    if !host.has_edge(q, to) {
                        return Err(CheckError::SendToNonNeighbor { step: step0, host: q, to });
                    }
                    if !held_before(&trace.acquired, q, pebble, step) {
                        return Err(CheckError::SendWithoutHolding {
                            step: step0,
                            host: q,
                            pebble,
                        });
                    }
                    if !matches!(row[to as usize], Op::Recv { from } if from == q) {
                        return Err(CheckError::UnmatchedSend { step: step0, host: q, to });
                    }
                }
                Op::Recv { from } => {
                    if !host.has_edge(q, from) {
                        return Err(CheckError::RecvFromNonNeighbor { step: step0, host: q, from });
                    }
                    if !matches!(row[from as usize], Op::Send { to, .. } if to == q) {
                        return Err(CheckError::UnmatchedRecv { step: step0, host: q, from });
                    }
                }
            }
        }
        // Phase 2: apply effects (pebbles become available *after* the step).
        for (qi, op) in row.iter().enumerate() {
            let q = qi as Node;
            match *op {
                Op::Generate(p) => {
                    record_acquisition(&mut trace, q, p, step);
                    let idx = trace.idx(p.node, p.t);
                    trace.generated_by[idx].push(q);
                }
                Op::Recv { from } => {
                    if let Op::Send { pebble, .. } = row[from as usize] {
                        if pebble.t > 0 {
                            record_acquisition(&mut trace, q, pebble, step);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Final-pebble condition.
    for i in 0..n as Node {
        if trace.generated_by[trace.idx(i, t_max)].is_empty() {
            return Err(CheckError::MissingFinalPebble { node: i });
        }
    }
    Ok(trace)
}

fn record_acquisition(trace: &mut Trace, q: Node, p: Pebble, step: u32) {
    let map = &mut trace.acquired[q as usize];
    if let std::collections::hash_map::Entry::Vacant(e) = map.entry(p.key()) {
        e.insert(step);
        let idx = trace.idx(p.node, p.t);
        trace.holders[idx].push(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolBuilder;
    use unet_topology::generators::{complete, ring};

    /// Smallest interesting scenario: guest = 3-ring, host = K2.
    /// Host 0 generates everything (it holds all initial pebbles).
    fn tiny_valid_protocol() -> (Graph, Graph, Protocol) {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        for i in 0..3u32 {
            b.set_op(0, Op::Generate(Pebble::new(i, 1)));
            b.end_step();
        }
        (guest, host, b.finish())
    }

    #[test]
    fn valid_protocol_accepted() {
        let (guest, host, proto) = tiny_valid_protocol();
        let trace = check(&guest, &host, &proto).expect("valid");
        assert_eq!(trace.host_steps, 3);
        for i in 0..3u32 {
            assert_eq!(trace.representatives(i, 1).to_vec(), vec![0]);
            assert_eq!(trace.weight(i, 1), 1);
            assert_eq!(trace.generated_by(i, 1), &[0]);
        }
        assert_eq!(trace.total_weight(), 3);
        assert_eq!(trace.level_weight(1), 3);
        assert_eq!(trace.level_weight(0), 6); // 3 guests × 2 hosts (initial)
        assert_eq!(trace.guests_on_host(1, 0), vec![0, 1, 2]);
        assert!(trace.guests_on_host(1, 1).is_empty());
    }

    #[test]
    fn missing_final_pebble_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        b.set_op(0, Op::Generate(Pebble::new(1, 1)));
        b.end_step();
        let proto = b.finish();
        assert_eq!(
            check(&guest, &host, &proto).unwrap_err(),
            CheckError::MissingFinalPebble { node: 2 }
        );
    }

    #[test]
    fn generate_without_predecessor_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        // (P0, 2) needs (P0,1), (P1,1), (P2,1) — none generated yet.
        b.set_op(0, Op::Generate(Pebble::new(0, 2)));
        b.end_step();
        let proto = b.finish();
        let err = check(&guest, &host, &proto).unwrap_err();
        assert!(matches!(err, CheckError::GenerateMissingPredecessor { pebble, .. }
            if pebble == Pebble::new(0, 2)));
    }

    #[test]
    fn generate_same_step_dependency_rejected() {
        // A pebble generated in step τ is not available to another generate
        // in the same step τ (effects apply after the step).
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        for i in 0..3u32 {
            b.set_op(0, Op::Generate(Pebble::new(i, 1)));
            b.end_step();
        }
        // Host 0 holds (·,1) for all i after step 3; generating (0,2) at
        // step 4 is fine, but a second-level generate in the same step that
        // needs (0,2) must fail.
        b.set_op(0, Op::Generate(Pebble::new(0, 2)));
        b.end_step();
        let proto_ok = b.finish();
        assert!(check(&guest, &host, &proto_ok).is_err()); // finals (1,2),(2,2) missing
    }

    #[test]
    fn unmatched_send_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(0, Op::Send { pebble: Pebble::new(0, 0), to: 1 });
        b.end_step();
        let proto = b.finish();
        assert_eq!(
            check(&guest, &host, &proto).unwrap_err(),
            CheckError::UnmatchedSend { step: 0, host: 0, to: 1 }
        );
    }

    #[test]
    fn unmatched_recv_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(1, Op::Recv { from: 0 });
        b.end_step();
        let proto = b.finish();
        assert_eq!(
            check(&guest, &host, &proto).unwrap_err(),
            CheckError::UnmatchedRecv { step: 0, host: 1, from: 0 }
        );
    }

    #[test]
    fn send_to_non_neighbor_detected() {
        let guest = ring(4);
        let host = crate::test_support::path_host(3); // 0-1-2
        let mut b = ProtocolBuilder::new(4, 1, 3);
        b.set_op(0, Op::Send { pebble: Pebble::new(0, 0), to: 2 });
        b.set_op(2, Op::Recv { from: 0 });
        b.end_step();
        let proto = b.finish();
        assert_eq!(
            check(&guest, &host, &proto).unwrap_err(),
            CheckError::SendToNonNeighbor { step: 0, host: 0, to: 2 }
        );
    }

    #[test]
    fn send_without_holding_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.transfer(0, 1, Pebble::new(0, 1)); // (0,1) not yet generated
        b.end_step();
        let proto = b.finish();
        assert_eq!(
            check(&guest, &host, &proto).unwrap_err(),
            CheckError::SendWithoutHolding { step: 0, host: 0, pebble: Pebble::new(0, 1) }
        );
    }

    #[test]
    fn sent_pebble_usable_next_step() {
        // Host 0 generates (0,1)..(2,1), ships them to host 1, and host 1
        // generates (0,2) — exercising transfer timing.
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        for i in 0..3u32 {
            b.set_op(0, Op::Generate(Pebble::new(i, 1)));
            b.end_step();
        }
        for i in 0..3u32 {
            b.transfer(0, 1, Pebble::new(i, 1));
            b.end_step();
        }
        for i in 0..3u32 {
            b.set_op(1, Op::Generate(Pebble::new(i, 2)));
            b.end_step();
        }
        let proto = b.finish();
        let trace = check(&guest, &host, &proto).expect("valid");
        // Host 1 holds (0,1) (received) and generated (0,2).
        assert!(trace.representatives(0, 1).contains(1));
        assert_eq!(trace.generated_by(0, 2), &[1]);
        // Q'_S(0,1) = {1}.
        assert_eq!(trace.generators(0, 1), &[1]);
        // Acquisition steps: host 1 got (0,1) at step 4 (1-based).
        assert_eq!(trace.acquisition_step(1, Pebble::new(0, 1)), Some(4));
        assert_eq!(trace.acquisition_step(0, Pebble::new(0, 1)), Some(1));
        assert_eq!(trace.acquisition_step(0, Pebble::new(0, 0)), Some(0));
        assert_eq!(trace.acquisition_step(0, Pebble::new(0, 2)), None);
        // Earliest generating hold of (0,1): host 1 at step 4.
        assert_eq!(trace.earliest_generating_hold(0, 1), Some(4));
    }

    #[test]
    fn generate_out_of_range_detected() {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(0, Op::Generate(Pebble::new(0, 5)));
        b.end_step();
        let proto = b.finish();
        assert!(matches!(check(&guest, &host, &proto), Err(CheckError::GenerateOutOfRange { .. })));
    }

    #[test]
    fn recorded_check_counts_ops_and_fragments() {
        use unet_obs::InMemoryRecorder;
        let (guest, host, proto) = tiny_valid_protocol();
        let mut rec = InMemoryRecorder::new();
        let trace = check_recorded(&guest, &host, &proto, &mut rec).expect("valid");
        assert!(rec.open_spans().is_empty());
        // 3 steps × 2 hosts: 3 generates, 3 idles, no transfers.
        assert_eq!(rec.counter_value("pebble.ops.generate"), 3);
        assert_eq!(rec.counter_value("pebble.ops.idle"), 3);
        assert_eq!(rec.counter_value("pebble.ops.send"), 0);
        assert_eq!(rec.counter_value("pebble.ops.recv"), 0);
        assert_eq!(rec.counter_value("pebble.acquisitions"), trace.total_weight() as u64);
        let lw = rec.histogram_data("pebble.level_weight").unwrap();
        assert_eq!(lw.count, 1); // one non-initial level
        assert_eq!(lw.max, trace.level_weight(1) as u64);
        let hp = rec.histogram_data("pebble.holders_per_pebble").unwrap();
        assert_eq!(hp.count, 3); // one entry per (i, t≥1) pebble type
    }

    #[test]
    fn recorded_check_balances_on_rejection() {
        use unet_obs::InMemoryRecorder;
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(0, Op::Send { pebble: Pebble::new(0, 0), to: 1 });
        b.end_step();
        let proto = b.finish();
        let mut rec = InMemoryRecorder::new();
        assert!(check_recorded(&guest, &host, &proto, &mut rec).is_err());
        assert!(rec.open_spans().is_empty(), "span must close on rejection");
        // Op mix still reported (it is a property of the protocol).
        assert_eq!(rec.counter_value("pebble.ops.send"), 1);
        // No custody stats for a rejected protocol (absent counters read 0).
        assert_eq!(rec.counter_value("pebble.acquisitions"), 0);
        assert!(rec.histogram_data("pebble.level_weight").is_none());
    }

    #[test]
    fn inefficiency_of_tiny_protocol() {
        let (_, _, proto) = tiny_valid_protocol();
        // T' = 3, T = 1, m = 2, n = 3: s = 3, k = 3·2/3 = 2.
        assert_eq!(proto.slowdown(), 3.0);
        assert_eq!(proto.inefficiency(), 2.0);
    }
}
