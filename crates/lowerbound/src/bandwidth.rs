//! Bandwidth-based lower bounds on embedding simulations (Kruskal &
//! Rappoport \[10\], cited in the paper's related work as one of the
//! techniques that can exceed the load-induced bound — though not strong
//! enough for universal networks, which is why Theorem 3.1 needs counting).
//!
//! For a **static-embedding** simulation (no redundancy; each guest lives at
//! one host): per guest step, every guest edge crossing a host cut must move
//! one configuration across it, and the cut can carry at most one pebble per
//! crossing host edge per direction per step. Hence
//!
//! ```text
//! slowdown ≥ (guest edges crossing) / (2 · host edges crossing)
//! ```
//!
//! over every host bipartition. The bound is *falsifiable against our
//! engine*: every measured [`Simulation`](unet_core::Simulation) run must satisfy it
//! (tested). It does **not** apply to redundant/dynamic simulations —
//! flooding crosses no cut at all — which is precisely the paper's point
//! about why bandwidth arguments cannot prove Theorem 3.1.

use unet_core::Embedding;
use unet_topology::partition::{edge_cut, kl_bisection};
use unet_topology::{Graph, Node};

/// Guest edges whose endpoints are mapped to opposite sides of the host
/// bipartition `host_side`.
pub fn guest_crossing(guest: &Graph, embedding: &Embedding, host_side: &[bool]) -> usize {
    guest
        .edges()
        .filter(|&(u, v)| {
            host_side[embedding.f[u as usize] as usize]
                != host_side[embedding.f[v as usize] as usize]
        })
        .count()
}

/// The bandwidth lower bound on the slowdown of a static-embedding
/// simulation, for one host bipartition.
pub fn bandwidth_bound_for_cut(
    guest: &Graph,
    host: &Graph,
    embedding: &Embedding,
    host_side: &[bool],
) -> f64 {
    let demand = guest_crossing(guest, embedding, host_side) as f64;
    let capacity = edge_cut(host, host_side) as f64;
    if capacity == 0.0 {
        return if demand > 0.0 { f64::INFINITY } else { 1.0 };
    }
    (demand / (2.0 * capacity)).max(1.0)
}

/// Search for a strong cut: KL bisection of the host plus a few random
/// restarts, maximizing the demand/capacity ratio. Returns the best bound
/// and the bipartition achieving it.
pub fn best_bandwidth_bound<R: rand::Rng>(
    guest: &Graph,
    host: &Graph,
    embedding: &Embedding,
    restarts: usize,
    rng: &mut R,
) -> (f64, Vec<bool>) {
    let mut best = (1.0f64, vec![false; host.n()]);
    for _ in 0..restarts.max(1) {
        let side = kl_bisection(host, 2, rng);
        let b = bandwidth_bound_for_cut(guest, host, embedding, &side);
        if b > best.0 {
            best = (b, side);
        }
    }
    best
}

/// The classic instantiation: expander guest on a mesh/torus host. The
/// guest's expansion guarantees `Ω(n)` crossing edges under any balanced
/// placement, while the host cut is `O(√m)` — bound `Ω(n/√m)`, exceeding
/// the load `n/m` by `√m` (the "meshes are not able to simulate … with the
/// load-induced slowdown only" result quoted from \[9\]/\[10\]).
pub fn expander_on_grid_bound(n: usize, m: usize, expansion_edges_per_node: f64) -> f64 {
    let crossing = expansion_edges_per_node * n as f64 / 2.0;
    let side = unet_topology::util::isqrt(m) as f64;
    (crossing / (2.0 * 2.0 * side)).max(1.0)
}

/// Check a measured slowdown against the bound (must hold for any valid
/// static-embedding run).
pub fn consistent(measured_slowdown: f64, bound: f64) -> bool {
    measured_slowdown + 1e-9 >= bound
}

/// A balanced host bipartition induced by splitting hosts into two halves
/// by index (useful when the embedding is block-structured).
pub fn index_half_split(m: usize) -> Vec<bool> {
    (0..m).map(|q| q < m / 2).collect()
}

#[allow(unused)]
fn _assert_node_type(v: Node) -> Node {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_core::prelude::*;
    use unet_topology::generators::{random_hamiltonian_union, random_regular, ring, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn crossing_counts() {
        let guest = ring(8);
        let e = Embedding::block(8, 4);
        // Hosts {0,1} vs {2,3}: guest edges crossing = edges between guests
        // {0..3} and {4..7}: (3,4) and (7,0) ⇒ 2.
        let side = index_half_split(4);
        assert_eq!(guest_crossing(&guest, &e, &side), 2);
    }

    #[test]
    fn bound_holds_on_real_runs() {
        // Expander guest, torus host: the bound must never exceed the
        // measured slowdown of a real certified run.
        let mut rng = seeded_rng(11);
        let guest = random_hamiltonian_union(64, 2, &mut rng);
        let host = torus(4, 4);
        let comp = GuestComputation::random(guest.clone(), 12);
        let router = presets::torus_xy(4, 4);
        let e = Embedding::block(64, 16);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(e.clone())
            .router(&router)
            .steps(3)
            .run_with_rng(&mut rng)
            .expect("valid configuration");
        verify_run(&comp, &host, &run, 3).unwrap();
        let (bound, side) = best_bandwidth_bound(&guest, &host, &e, 4, &mut rng);
        assert!(bound > 1.0, "expander on torus must beat the trivial bound");
        assert!(
            consistent(run.slowdown(), bound),
            "measured {} < bound {bound} (cut {:?})",
            run.slowdown(),
            side.iter().filter(|&&s| s).count()
        );
    }

    #[test]
    fn expander_beats_load_on_grid() {
        // n = 4096, m = 64 grid: load = 64, bandwidth bound ≈ 4·4096/2 /
        // (4·8) = 256 — 4× the load. The √m excess of [9]/[10].
        let b = expander_on_grid_bound(4096, 64, 4.0);
        assert!(b > 4096.0 / 64.0, "bound {b} below load");
    }

    #[test]
    fn flooding_breaks_the_premise_not_the_theorem() {
        // The bound assumes static embedding; the flooding simulator crosses
        // no cut and has slowdown n — below the embedding bound whenever the
        // bound exceeds n. This documents the scope restriction.
        let mut rng = seeded_rng(13);
        let guest = random_regular(32, 4, &mut rng);
        let host = torus(2, 2);
        let _ = &host;
        let e = Embedding::block(32, 4);
        let (bound, _) = best_bandwidth_bound(&guest, &host, &e, 2, &mut rng);
        let flooding_slowdown = 32.0;
        // Nothing to assert about flooding vs bound in general; just record
        // that both quantities are computable and the embedding bound is
        // meaningful (> 1) here.
        assert!(bound > 1.0);
        assert!(flooding_slowdown > 1.0);
    }
}
