//! E14 — spreading functions and communication demand ([15], quoted in
//! Section 1: guests with *polynomial spreading* admit `O(n·polylog n)`-size
//! universal hosts with constant slowdown).
//!
//! The mechanism is measurable here: the spreading function `S(t)` (max
//! `t`-neighbourhood size) controls how much information a guest step moves.
//! Under a locality-preserving placement, a polynomially-spreading guest
//! (torus: `S(t) = Θ(t²)`) induces only boundary traffic, while an expander
//! (`S(t) = 2^{Θ(t)}`) forces global traffic — the reason general universal
//! hosts need the full Theorem 3.1 price but mesh-like guests do not.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::rng;
use unet_core::prelude::*;
use unet_routing::problem::guest_induced;
use unet_topology::analysis::spreading_function;
use unet_topology::generators::{random_hamiltonian_union, random_regular, torus};

fn regenerate_table() {
    let n = 256;
    let mut r = rng();
    println!("\n=== E14: spreading vs communication demand (n = {n}, host torus 4×4) ===");
    println!(
        "{:>10} {:>6} {:>6} {:>7} {:>10} {:>10} {:>10}",
        "guest", "S(2)", "S(4)", "S(8)", "packets", "h", "slowdown"
    );
    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let cases: Vec<(&str, unet_topology::Graph, Embedding)> = vec![
        ("torus16x16", torus(16, 16), Embedding::grid_tiles(16, 4)),
        ("rand-4reg", random_regular(n, 4, &mut r), Embedding::block(n, 16)),
        ("expander", random_hamiltonian_union(n, 2, &mut r), Embedding::block(n, 16)),
    ];
    for (name, guest, e) in cases {
        let s2 = spreading_function(&guest, 2, 64);
        let s4 = spreading_function(&guest, 4, 64);
        let s8 = spreading_function(&guest, 8, 64);
        let prob = guest_induced(&guest, &e.f, 16);
        let comp = GuestComputation::random(guest.clone(), 0xE14);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(e)
            .router(&router)
            .steps(2)
            .run_with_rng(&mut r)
            .expect("torus configuration is valid");
        verify_run(&comp, &host, &run, 2).expect("certifies");
        println!(
            "{name:>10} {s2:>6} {s4:>6} {s8:>7} {:>10} {:>10} {:>10.1}",
            prob.pairs.len(),
            prob.h(),
            run.slowdown()
        );
    }
    println!("polynomial spreading + locality ⇒ boundary-only traffic and small h;");
    println!("exponential spreading forces Θ(n) packets per guest step regardless of");
    println!("placement — the dichotomy behind [15]'s restricted-class result.");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e14_spreading");
    let g = torus(32, 32);
    group.bench_function("spreading_function_t8", |b| b.iter(|| spreading_function(&g, 8, 128)));
    let e = Embedding::grid_tiles(32, 8);
    group.bench_function("guest_induced_problem", |b| {
        b.iter(|| guest_induced(&g, &e.f, 64).pairs.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
