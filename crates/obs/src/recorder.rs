//! The [`Recorder`] trait and its two implementations.
//!
//! Hot paths take a `rec: &mut R` with `R: Recorder + ?Sized` and emit
//! spans/counters/histograms unconditionally; with the default
//! [`NoopRecorder`] every call monomorphizes to an empty inline function,
//! so the uninstrumented build is bit-identical in behavior and within
//! measurement noise in speed (benchmarked in `unet-bench`'s
//! `e15_obs_overhead`).

use std::collections::BTreeMap;
use std::time::Instant;

/// Sink for instrumentation events.
///
/// All methods take `&mut self` so implementations need no interior
/// mutability; names are `&'static str` so recording never allocates on
/// the caller's side. The trait is object-safe: plumbing that must cross
/// a `dyn` boundary (e.g. the `Router` trait) passes `&mut dyn Recorder`,
/// which itself implements `Recorder`.
pub trait Recorder {
    /// Enter a named phase. Must be balanced by [`Recorder::span_end`]
    /// with the same name, LIFO-nested.
    fn span_start(&mut self, name: &'static str);

    /// Leave the innermost open phase (which must be `name`).
    fn span_end(&mut self, name: &'static str);

    /// Add `delta` to the named monotone counter.
    fn counter(&mut self, name: &'static str, delta: u64);

    /// Record the latest value of a named quantity.
    fn gauge(&mut self, name: &'static str, value: f64);

    /// Record one sample into the named log-bucketed histogram.
    fn histogram(&mut self, name: &'static str, value: u64);

    /// Record a keyed time-series sample: at time index `step`, add
    /// `value` to the cell identified by `key` under `name`.
    ///
    /// This is the congestion-telemetry primitive: `key` identifies an
    /// edge (packed `from << 32 | to`) or a node, `step` is the routing
    /// round or communication round, and `value` is the contribution
    /// (1 per transfer for edge utilization; queue length for depth
    /// samples). Implementations aggregate by `(name, step, key)`.
    fn sample(&mut self, name: &'static str, step: u64, key: u64, value: u64);
}

/// Pack a directed edge into a [`Recorder::sample`] key.
#[inline]
pub fn edge_key(from: u32, to: u32) -> u64 {
    ((from as u64) << 32) | to as u64
}

/// Unpack a [`edge_key`]-packed sample key back into `(from, to)`.
#[inline]
pub fn unpack_edge_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

impl Recorder for &mut dyn Recorder {
    #[inline]
    fn span_start(&mut self, name: &'static str) {
        (**self).span_start(name)
    }
    #[inline]
    fn span_end(&mut self, name: &'static str) {
        (**self).span_end(name)
    }
    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn histogram(&mut self, name: &'static str, value: u64) {
        (**self).histogram(name, value)
    }
    #[inline]
    fn sample(&mut self, name: &'static str, step: u64, key: u64, value: u64) {
        (**self).sample(name, step, key, value)
    }
}

/// The do-nothing recorder: a zero-sized type whose methods are empty and
/// `#[inline(always)]`, so instrumented code paths compile down to exactly
/// the uninstrumented code. This is what every pre-existing entry point
/// (`simulate`, `route`, `check`) passes implicitly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn span_start(&mut self, _name: &'static str) {}
    #[inline(always)]
    fn span_end(&mut self, _name: &'static str) {}
    #[inline(always)]
    fn counter(&mut self, _name: &'static str, _delta: u64) {}
    #[inline(always)]
    fn gauge(&mut self, _name: &'static str, _value: f64) {}
    #[inline(always)]
    fn histogram(&mut self, _name: &'static str, _value: u64) {}
    #[inline(always)]
    fn sample(&mut self, _name: &'static str, _step: u64, _key: u64, _value: u64) {}
}

// The zero-cost claim starts with zero size; checked at compile time.
const _: () = assert!(std::mem::size_of::<NoopRecorder>() == 0);

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]`. 65 buckets cover the full `u64` domain, so
/// recording can never miss. Count, sum, min, and max are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples (u128: 2⁶⁴ samples of u64::MAX cannot overflow).
    pub sum: u128,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `buckets[i]` = samples in bucket `i` (see type docs for ranges).
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    /// Bucket index for `value`: 0 for 0, else `64 − leading_zeros` (the
    /// bit length), giving ranges `[2^(i−1), 2^i − 1]`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive `(lo, hi)` range of values that land in bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Reconstruct the `p`-th percentile (`0.0 ≤ p ≤ 1.0`) from the log₂
    /// buckets: the upper bound of the bucket in which the cumulative
    /// count crosses `⌈p·count⌉`, clamped to the exact recorded `max`.
    /// `None` when empty. Exact at p=1 (`max` is exact); otherwise an
    /// upper bound within the 2× width of the crossing bucket.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// One chronological span event (the raw material of the JSONL trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// Phase `name` opened at `ns` nanoseconds after the recorder's epoch.
    Start {
        /// Phase name.
        name: &'static str,
        /// Nanoseconds since the recorder was created.
        ns: u64,
    },
    /// Phase `name` closed at `ns` nanoseconds after the recorder's epoch.
    End {
        /// Phase name.
        name: &'static str,
        /// Nanoseconds since the recorder was created.
        ns: u64,
    },
}

/// In-memory aggregation: exact counters and gauges, log-bucketed
/// histograms, and the chronological span-event stream with per-phase
/// total durations.
#[derive(Debug, Clone)]
pub struct InMemoryRecorder {
    epoch: Instant,
    events: Vec<SpanEvent>,
    open: Vec<&'static str>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    span_totals: BTreeMap<&'static str, (u64, u64)>, // (total ns, count)
    span_starts: Vec<u64>,                           // parallel to `open`
    samples: BTreeMap<&'static str, BTreeMap<(u64, u64), u64>>, // (step, key) -> sum
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Fresh recorder; its epoch (time zero for all span events) is now.
    pub fn new() -> Self {
        InMemoryRecorder {
            epoch: Instant::now(),
            events: Vec::new(),
            open: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            span_totals: BTreeMap::new(),
            span_starts: Vec::new(),
            samples: BTreeMap::new(),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Chronological span events.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Last value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram_data(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// `(total duration ns, completion count)` per span name, sorted.
    pub fn span_totals(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.span_totals.iter().map(|(&k, &(ns, n))| (k, ns, n))
    }

    /// Aggregated time-series samples for `name`: `(step, key) → summed
    /// value`, sorted by `(step, key)`.
    pub fn sample_data(&self, name: &str) -> Option<&BTreeMap<(u64, u64), u64>> {
        self.samples.get(name)
    }

    /// All sample series, sorted by name.
    pub fn samples(&self) -> impl Iterator<Item = (&'static str, &BTreeMap<(u64, u64), u64>)> + '_ {
        self.samples.iter().map(|(&k, v)| (k, v))
    }

    /// Names of spans opened but not yet closed, outermost first.
    pub fn open_spans(&self) -> &[&'static str] {
        &self.open
    }

    /// Nesting depth of currently open spans.
    pub fn depth(&self) -> usize {
        self.open.len()
    }
}

impl Recorder for InMemoryRecorder {
    fn span_start(&mut self, name: &'static str) {
        let ns = self.now_ns();
        self.open.push(name);
        self.span_starts.push(ns);
        self.events.push(SpanEvent::Start { name, ns });
    }

    fn span_end(&mut self, name: &'static str) {
        let ns = self.now_ns();
        let top = self.open.pop();
        let started = self.span_starts.pop();
        debug_assert_eq!(top, Some(name), "span_end({name}) does not match innermost open span");
        let entry = self.span_totals.entry(name).or_insert((0, 0));
        entry.0 += ns.saturating_sub(started.unwrap_or(ns));
        entry.1 += 1;
        self.events.push(SpanEvent::End { name, ns });
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    fn histogram(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    fn sample(&mut self, name: &'static str, step: u64, key: u64, value: u64) {
        *self.samples.entry(name).or_default().entry((step, key)).or_insert(0) += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        let mut r = NoopRecorder;
        r.span_start("x");
        r.counter("c", 1);
        r.histogram("h", 42);
        r.gauge("g", 1.0);
        r.sample("s", 0, 1, 2);
        r.span_end("x");
    }

    #[test]
    fn histogram_bucket_edges() {
        // The satellite-mandated edge cases: 0, 1, u64::MAX.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_index((1u64 << 63) - 1), 63);

        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.sum, u64::MAX as u128 + 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.mean(), Some((u64::MAX as u128 + 1) as f64 / 3.0));
    }

    #[test]
    fn histogram_bucket_ranges_partition_u64() {
        let mut expected_lo = 0u64;
        for i in 0..=64usize {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i.wrapping_sub(1));
            assert!(lo <= hi);
            // Every value in [lo, hi] maps back to bucket i (check edges).
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "bucket 64 ends exactly at u64::MAX");
    }

    #[test]
    fn histogram_percentiles_from_buckets() {
        assert_eq!(Histogram::default().percentile(0.5), None);
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p=1 is exact; medians land on the bucket upper bound ≥ true value.
        assert_eq!(h.percentile(1.0), Some(100));
        let p50 = h.percentile(0.5).unwrap();
        assert!((50..=63).contains(&p50), "p50 within the crossing bucket: {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!((99..=100).contains(&p99), "p99 clamped to exact max: {p99}");
        // Single-sample histogram: every percentile is that sample's bucket.
        let mut one = Histogram::default();
        one.record(7);
        assert_eq!(one.percentile(0.0), Some(7));
        assert_eq!(one.percentile(0.5), Some(7));
        assert_eq!(one.percentile(1.0), Some(7));
    }

    #[test]
    fn histogram_empty_and_merge() {
        let empty = Histogram::default();
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.min, u64::MAX);
        let mut a = Histogram::default();
        a.record(5);
        let mut b = Histogram::default();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 5);
        assert_eq!(a.max, 100);
        assert_eq!(a.sum, 105);
    }

    #[test]
    fn span_nesting_tracked() {
        let mut r = InMemoryRecorder::new();
        r.span_start("outer");
        assert_eq!(r.depth(), 1);
        r.span_start("inner");
        assert_eq!(r.depth(), 2);
        assert_eq!(r.open_spans(), &["outer", "inner"]);
        r.span_end("inner");
        r.span_start("inner");
        r.span_end("inner");
        r.span_end("outer");
        assert_eq!(r.depth(), 0);
        assert_eq!(r.events().len(), 6);
        let totals: Vec<_> = r.span_totals().collect();
        let inner = totals.iter().find(|(n, ..)| *n == "inner").unwrap();
        assert_eq!(inner.2, 2, "inner completed twice");
        let outer = totals.iter().find(|(n, ..)| *n == "outer").unwrap();
        assert_eq!(outer.2, 1);
        // Events are chronological.
        let times: Vec<u64> = r
            .events()
            .iter()
            .map(|e| match *e {
                SpanEvent::Start { ns, .. } | SpanEvent::End { ns, .. } => ns,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "does not match"))]
    fn mismatched_span_end_caught_in_debug() {
        let mut r = InMemoryRecorder::new();
        r.span_start("a");
        r.span_end("b");
        // In release builds the mismatch is tolerated (debug_assert);
        // force the should_panic expectation to hold there too.
        #[cfg(not(debug_assertions))]
        panic!("does not match");
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let mut r = InMemoryRecorder::new();
        r.counter("ops", 3);
        r.counter("ops", 4);
        r.gauge("load", 0.5);
        r.gauge("load", 0.75);
        r.histogram("q", 1);
        r.histogram("q", 9);
        assert_eq!(r.counter_value("ops"), 7);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.gauge_value("load"), Some(0.75));
        let h = r.histogram_data("q").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (1, 9));
    }

    #[test]
    fn samples_aggregate_by_step_and_key() {
        let mut r = InMemoryRecorder::new();
        let e = edge_key(3, 7);
        r.sample("route.edge_util", 0, e, 1);
        r.sample("route.edge_util", 0, e, 1);
        r.sample("route.edge_util", 1, e, 1);
        r.sample("route.queue_depth", 0, 7, 4);
        let util = r.sample_data("route.edge_util").unwrap();
        assert_eq!(util.get(&(0, e)), Some(&2));
        assert_eq!(util.get(&(1, e)), Some(&1));
        assert_eq!(r.sample_data("route.queue_depth").unwrap().get(&(0, 7)), Some(&4));
        assert!(r.sample_data("missing").is_none());
        let names: Vec<_> = r.samples().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["route.edge_util", "route.queue_depth"]);
    }

    #[test]
    fn edge_key_round_trips() {
        assert_eq!(unpack_edge_key(edge_key(0, 0)), (0, 0));
        assert_eq!(unpack_edge_key(edge_key(3, 7)), (3, 7));
        assert_eq!(unpack_edge_key(edge_key(u32::MAX, 1)), (u32::MAX, 1));
        assert_ne!(edge_key(3, 7), edge_key(7, 3), "edge keys are directed");
    }

    #[test]
    fn dyn_recorder_dispatch() {
        let mut mem = InMemoryRecorder::new();
        {
            let mut dynrec: &mut dyn Recorder = &mut mem;
            // Generic code over R: Recorder + ?Sized accepts the dyn form.
            fn generic<R: Recorder + ?Sized>(rec: &mut R) {
                rec.counter("via-dyn", 2);
                rec.sample("via-dyn.samples", 1, 2, 3);
            }
            generic(&mut dynrec);
        }
        assert_eq!(mem.counter_value("via-dyn"), 2);
        assert_eq!(mem.sample_data("via-dyn.samples").unwrap().get(&(1, 2)), Some(&3));
    }
}
