//! Eulerian circuits and balanced orientations.
//!
//! Lemma 3.3 represents each `c`-regular guest (c even) as a digraph with
//! `c/2` in- and `c/2` out-edges per vertex, "obtained by walking along an
//! Eulerian tour". This module makes that device executable: Hierholzer's
//! algorithm per connected component, then orient every edge along the tour.

use crate::graph::{Graph, Node};

/// A balanced orientation of an even-degree graph: for every vertex,
/// `out[v]` lists the heads of edges directed out of `v`, with
/// `|out[v]| = deg(v)/2`.
#[derive(Debug, Clone)]
pub struct Orientation {
    /// Out-neighbours per vertex (multiset order unspecified).
    pub out: Vec<Vec<Node>>,
}

impl Orientation {
    /// In-degree of `v` (computed; equals `deg(v)/2` for valid orientations).
    pub fn in_degree(&self, v: Node) -> usize {
        self.out.iter().map(|lst| lst.iter().filter(|&&w| w == v).count()).sum()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: Node) -> usize {
        self.out[v as usize].len()
    }

    /// Check balance against the underlying graph.
    pub fn is_balanced_for(&self, g: &Graph) -> bool {
        (0..g.n() as Node).all(|v| {
            let d = g.degree(v);
            d.is_multiple_of(2) && self.out_degree(v) == d / 2
        })
    }
}

/// Orient every edge of an even-degree graph along Eulerian circuits (one per
/// connected component). The result is balanced: in-degree = out-degree =
/// deg/2 at every vertex — exactly the representation Lemma 3.3 needs.
///
/// # Panics
/// Panics if any vertex has odd degree.
pub fn eulerian_orientation(g: &Graph) -> Orientation {
    for v in 0..g.n() as Node {
        assert!(
            g.degree(v).is_multiple_of(2),
            "vertex {v} has odd degree {}; Eulerian orientation needs even degrees",
            g.degree(v)
        );
    }
    let n = g.n();
    // Flat edge structures: for each vertex a cursor into its adjacency list
    // and a "used" flag per directed arc position.
    let mut cursor = vec![0usize; n];
    // used[v][i] marks that the i-th incident edge of v was traversed (in
    // either direction). We need to match the two endpoints of an undirected
    // edge: find the partner slot by scanning w's adjacency for v among
    // unused slots. To make that O(1) amortized we precompute partner slots.
    let (slot_of, partner) = edge_slots(g);
    let mut used = vec![false; slot_of.last().copied().unwrap_or(0)];
    let mut out: Vec<Vec<Node>> =
        (0..n).map(|v| Vec::with_capacity(g.degree(v as Node) / 2)).collect();

    for start in 0..n {
        // Hierholzer from `start` over still-unused edges.
        loop {
            // Find an unused incident edge of `start`.
            if !advance_cursor(g, &slot_of, &used, &mut cursor, start) {
                break;
            }
            // Walk a closed circuit and record orientations.
            let mut v = start;
            loop {
                if !advance_cursor(g, &slot_of, &used, &mut cursor, v) {
                    break;
                }
                let slot = slot_of[v] + cursor[v];
                let w = g.neighbors(v as Node)[cursor[v]];
                used[slot] = true;
                used[partner[slot]] = true;
                out[v].push(w);
                v = w as usize;
                if v == start {
                    break;
                }
            }
        }
    }
    Orientation { out }
}

/// Per-vertex base slot into a flat incidence array, plus for each incidence
/// slot the partner slot at the other endpoint.
fn edge_slots(g: &Graph) -> (Vec<usize>, Vec<usize>) {
    let n = g.n();
    let mut slot_of = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    for v in 0..n {
        slot_of.push(acc);
        acc += g.degree(v as Node);
    }
    slot_of.push(acc);
    let mut partner = vec![usize::MAX; acc];
    // For the simple graph, the partner of slot (v, i) with neighbour w is
    // the slot (w, j) where g.neighbors(w)[j] == v (unique since simple).
    for v in 0..n {
        for (i, &w) in g.neighbors(v as Node).iter().enumerate() {
            let j = g
                .neighbors(w)
                .binary_search(&(v as Node))
                .expect("simple graph adjacency must be symmetric");
            partner[slot_of[v] + i] = slot_of[w as usize] + j;
        }
    }
    (slot_of, partner)
}

/// Move `cursor[v]` forward past used slots; returns whether an unused
/// incident edge remains.
fn advance_cursor(
    g: &Graph,
    slot_of: &[usize],
    used: &[bool],
    cursor: &mut [usize],
    v: usize,
) -> bool {
    let deg = g.degree(v as Node);
    while cursor[v] < deg && used[slot_of[v] + cursor[v]] {
        cursor[v] += 1;
    }
    cursor[v] < deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::ring;
    use crate::generators::mesh::torus;
    use crate::generators::random::random_regular;
    use crate::util::seeded_rng;

    #[test]
    fn ring_orientation_is_a_cycle() {
        let g = ring(6);
        let o = eulerian_orientation(&g);
        assert!(o.is_balanced_for(&g));
        for v in 0..6u32 {
            assert_eq!(o.out_degree(v), 1);
            assert_eq!(o.in_degree(v), 1);
        }
    }

    #[test]
    fn torus_orientation_balanced() {
        let g = torus(4, 4);
        let o = eulerian_orientation(&g);
        assert!(o.is_balanced_for(&g));
        for v in 0..16u32 {
            assert_eq!(o.out_degree(v), 2);
        }
        // Every oriented edge is a real edge, each undirected edge exactly once.
        let mut seen = std::collections::HashSet::new();
        for v in 0..16u32 {
            for &w in &o.out[v as usize] {
                assert!(g.has_edge(v, w));
                let key = if v < w { (v, w) } else { (w, v) };
                assert!(seen.insert(key), "edge {key:?} oriented twice");
            }
        }
        assert_eq!(seen.len(), g.num_edges());
    }

    #[test]
    fn random_regular_16_orientation() {
        // The paper's guest degree c = 16 ⇒ 8 in / 8 out.
        let g = random_regular(40, 16, &mut seeded_rng(21));
        let o = eulerian_orientation(&g);
        assert!(o.is_balanced_for(&g));
        for v in 0..40u32 {
            assert_eq!(o.out_degree(v), 8);
        }
    }

    #[test]
    fn disconnected_even_graph() {
        // Two disjoint triangles.
        let mut b = crate::graph::GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        let g = b.build();
        let o = eulerian_orientation(&g);
        assert!(o.is_balanced_for(&g));
    }

    #[test]
    #[should_panic(expected = "odd degree")]
    fn odd_degree_rejected() {
        let g = crate::generators::classic::path(3);
        eulerian_orientation(&g);
    }

    #[test]
    fn empty_graph_ok() {
        let g = crate::graph::GraphBuilder::new(3).build();
        let o = eulerian_orientation(&g);
        assert!(o.is_balanced_for(&g));
    }
}
