//! Asynchronous universal simulation.
//!
//! The paper's simulation model explicitly generalizes earlier work by
//! allowing guest steps to be simulated **asynchronously** (Section 1, item
//! 1 of the improvements): nothing forces the host to finish all of guest
//! level `t` before starting level `t+1`. This simulator exploits that: each
//! host advances whichever of its guests is ready (all predecessor pebbles
//! held), pulling missing predecessor pebbles from neighbouring hosts one
//! transfer per step.
//!
//! Asynchrony is what makes the wavefront analysis (Definition 3.16 /
//! Proposition 3.17) bite: with a synchronous engine `e_t(τ)` is a step
//! function, while here the scheduling policy shapes a gradual wavefront
//! whose spread is *limited by the guest's expansion* — a pebble `(P_i, t)`
//! cannot exist before the whole ball of radius `t − t'` around `P_i` has
//! reached level `t'`.
//!
//! Requirement: every cross-host guest edge must map to a host edge
//! (`f(u) ≁ f(v)` with `{u,v} ∈ E_G` is rejected), so use complete hosts or
//! locality-preserving embeddings.

use crate::embedding::Embedding;
use crate::guest::{transition, GuestComputation};
use crate::simulate::SimulationRun;
use rand::seq::SliceRandom;
use rand::Rng;
use unet_pebble::protocol::{Op, Pebble, ProtocolBuilder};
use unet_topology::util::FxHashSet;
use unet_topology::{Graph, Node};

/// Which ready guest a host advances when several are available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Uniformly random ready guest — a neutral asynchronous schedule.
    #[default]
    Random,
    /// The ready guest with the lowest pending level (breadth-first —
    /// approximates the synchronous schedule).
    LowestLevel,
    /// The ready guest with the highest pending level (depth-first — the
    /// most aggressive asynchrony; its progress is exactly what the
    /// influence-cone/expansion constraints cap).
    DeepestFirst,
}

/// The asynchronous embedding simulator.
pub struct AsyncSimulator {
    /// Guest → host placement.
    pub embedding: Embedding,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
}

impl AsyncSimulator {
    /// Simulate `steps` guest steps of `comp` on `host`.
    ///
    /// # Panics
    /// Panics if some cross-host guest edge does not map to a host edge, or
    /// on internal deadlock (impossible for valid inputs: some host can
    /// always generate or transfer).
    pub fn simulate<R: Rng>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        rng: &mut R,
    ) -> SimulationRun {
        let n = comp.n();
        let m = host.n();
        assert_eq!(self.embedding.n(), n);
        assert_eq!(self.embedding.m, m);
        assert!(steps >= 1);
        let f = &self.embedding.f;
        for u in 0..n as Node {
            for &v in comp.graph.neighbors(u) {
                let (fu, fv) = (f[u as usize], f[v as usize]);
                assert!(
                    fu == fv || host.has_edge(fu, fv),
                    "guest edge ({u}, {v}) maps to non-adjacent hosts ({fu}, {fv}); \
                     use a complete host or a locality-preserving embedding"
                );
            }
        }

        let guests_by_host = self.embedding.guests_by_host();
        // held[q]: pebble keys at host q (t ≥ 1; initials implicit).
        let mut held: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); m];
        // next_level[v]: next guest level to generate for v (at host f(v)).
        let mut next_level: Vec<u32> = vec![1; n];
        let mut remaining = n; // guests not yet at their final level

        let mut builder = ProtocolBuilder::new(n, steps, m);
        let mut comm_steps = 0usize;
        let mut compute_steps = 0usize;

        let has = |held: &Vec<FxHashSet<u64>>, q: Node, p: Pebble| -> bool {
            p.t == 0 || held[q as usize].contains(&p.key())
        };
        // Predecessor pebbles of (v, t): closed neighbourhood at t−1.
        let preds = |v: Node, t: u32| -> Vec<Pebble> {
            let mut out = vec![Pebble::new(v, t - 1)];
            out.extend(comp.graph.neighbors(v).iter().map(|&u| Pebble::new(u, t - 1)));
            out
        };

        let mut host_order: Vec<Node> = (0..m as Node).collect();
        let mut guard = 0usize;
        let budget = 64 * n * (steps as usize + 1) * (m.max(2));
        while remaining > 0 {
            guard += 1;
            assert!(guard < budget, "async scheduler exceeded its step budget");
            host_order.shuffle(rng);
            let mut busy = vec![false; m];
            let mut did_comm = false;
            let mut did_comp = false;

            // Phase 1: transfers — each free host pulls one missing
            // predecessor pebble for one of its ready-ish guests.
            for &q in &host_order {
                if busy[q as usize] {
                    continue;
                }
                'pull: for &v in &guests_by_host[q as usize] {
                    let t = next_level[v as usize];
                    if t > steps {
                        continue;
                    }
                    for p in preds(v, t) {
                        let holder = f[p.node as usize];
                        if holder != q
                            && !has(&held, q, p)
                            && has(&held, holder, p)
                            && !busy[holder as usize]
                        {
                            builder.transfer(holder, q, p);
                            busy[q as usize] = true;
                            busy[holder as usize] = true;
                            did_comm = true;
                            // Effect applies after the step; record now is
                            // fine because nothing else reads it this step
                            // (generates check `busy`).
                            held[q as usize].insert(p.key());
                            break 'pull;
                        }
                    }
                }
            }

            // Phase 2: generates — each still-free host advances one ready
            // guest according to the policy.
            for &q in &host_order {
                if busy[q as usize] {
                    continue;
                }
                let mut ready: Vec<Node> = guests_by_host[q as usize]
                    .iter()
                    .copied()
                    .filter(|&v| {
                        let t = next_level[v as usize];
                        t <= steps && preds(v, t).iter().all(|&p| has(&held, q, p))
                    })
                    .collect();
                if ready.is_empty() {
                    continue;
                }
                let pick = match self.policy {
                    SchedulePolicy::Random => *ready.choose(rng).unwrap(),
                    SchedulePolicy::LowestLevel => {
                        ready.sort_by_key(|&v| (next_level[v as usize], v));
                        ready[0]
                    }
                    SchedulePolicy::DeepestFirst => {
                        ready.sort_by_key(|&v| (std::cmp::Reverse(next_level[v as usize]), v));
                        ready[0]
                    }
                };
                let t = next_level[pick as usize];
                builder.set_op(q, Op::Generate(Pebble::new(pick, t)));
                busy[q as usize] = true;
                held[q as usize].insert(Pebble::new(pick, t).key());
                next_level[pick as usize] = t + 1;
                if t == steps {
                    remaining -= 1;
                }
                did_comp = true;
            }

            assert!(did_comm || did_comp, "async scheduler deadlocked");
            builder.end_step();
            if did_comm {
                comm_steps += 1;
            } else {
                compute_steps += 1;
            }
        }

        // Host-side states (checker certifies availability separately).
        let mut states = comp.init.clone();
        let mut nb_buf = Vec::new();
        for _ in 0..steps {
            let mut next = Vec::with_capacity(n);
            for i in 0..n as Node {
                nb_buf.clear();
                nb_buf.extend(comp.graph.neighbors(i).iter().map(|&j| states[j as usize]));
                next.push(transition(states[i as usize], &nb_buf));
            }
            states = next;
        }

        SimulationRun {
            protocol: builder.finish(),
            final_states: states,
            comm_steps,
            compute_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_pebble::check;
    use unet_topology::generators::{complete, random_regular, ring, torus};
    use unet_topology::util::seeded_rng;

    fn run_policy(policy: SchedulePolicy, seed: u64) -> (Graph, unet_pebble::Trace) {
        let guest = random_regular(32, 4, &mut seeded_rng(seed));
        let comp = GuestComputation::random(guest.clone(), seed + 1);
        let host = complete(4);
        let sim = AsyncSimulator { embedding: Embedding::block(32, 4), policy };
        let run = sim.simulate(&comp, &host, 4, &mut seeded_rng(seed + 2));
        let trace = check(&guest, &host, &run.protocol).expect("certifies");
        assert_eq!(run.final_states, comp.run_final(4));
        (guest, trace)
    }

    #[test]
    fn all_policies_certify() {
        for (i, policy) in
            [SchedulePolicy::Random, SchedulePolicy::LowestLevel, SchedulePolicy::DeepestFirst]
                .into_iter()
                .enumerate()
        {
            let _ = run_policy(policy, 100 + i as u64);
        }
    }

    #[test]
    fn async_wavefront_is_gradual() {
        // Unlike the synchronous engine, existence times within one guest
        // level must spread over many host steps.
        let (_, trace) = run_policy(SchedulePolicy::Random, 7);
        let mut level1: Vec<u32> = (0..32)
            .map(|i| {
                trace
                    .generated_by(i, 1)
                    .iter()
                    .filter_map(|&q| trace.acquisition_step(q, Pebble::new(i, 1)))
                    .min()
                    .unwrap()
            })
            .collect();
        level1.sort_unstable();
        assert!(
            level1.last().unwrap() - level1.first().unwrap() >= 4,
            "level-1 generations too synchronized: {level1:?}"
        );
    }

    #[test]
    fn deepest_first_interleaves_levels() {
        // Depth-first scheduling must generate some level-2 pebble before
        // the last level-1 pebble (true asynchrony).
        let (_, trace) = run_policy(SchedulePolicy::DeepestFirst, 9);
        let first_l2 =
            (0..32u32).filter_map(|i| trace.earliest_generating_hold(i, 1)).min().unwrap();
        let last_l1 = (0..32u32)
            .map(|i| {
                trace
                    .generated_by(i, 1)
                    .iter()
                    .filter_map(|&q| trace.acquisition_step(q, Pebble::new(i, 1)))
                    .min()
                    .unwrap()
            })
            .max()
            .unwrap();
        assert!(
            first_l2 < last_l1,
            "no interleaving: first level-2 at {first_l2}, last level-1 at {last_l1}"
        );
    }

    #[test]
    fn works_on_single_host() {
        let guest = ring(12);
        let comp = GuestComputation::random(guest.clone(), 3);
        let host = unet_topology::GraphBuilder::new(1).build();
        let sim =
            AsyncSimulator { embedding: Embedding::block(12, 1), policy: SchedulePolicy::Random };
        let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(4));
        check(&guest, &host, &run.protocol).expect("certifies");
        // One op per step on a single host: T' = n·T exactly.
        assert_eq!(run.protocol.host_steps(), 36);
    }

    #[test]
    fn locality_embedding_on_torus_host() {
        // Torus guest tiled onto torus host: all cross edges adjacent.
        let guest = torus(8, 8);
        let comp = GuestComputation::random(guest.clone(), 5);
        let host = torus(4, 4);
        let sim = AsyncSimulator {
            embedding: Embedding::grid_tiles(8, 4),
            policy: SchedulePolicy::Random,
        };
        let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(6));
        check(&guest, &host, &run.protocol).expect("certifies");
        assert_eq!(run.final_states, comp.run_final(3));
    }

    #[test]
    #[should_panic(expected = "non-adjacent hosts")]
    fn non_adjacent_mapping_rejected() {
        // Ring guest block-embedded on a path host: the guest's wrap edge
        // (7, 0) maps to hosts (3, 0), which are not path-adjacent.
        let guest = ring(8);
        let comp = GuestComputation::random(guest.clone(), 7);
        let host = unet_topology::generators::path(4);
        let sim =
            AsyncSimulator { embedding: Embedding::block(8, 4), policy: SchedulePolicy::Random };
        sim.simulate(&comp, &host, 2, &mut seeded_rng(8));
    }
}
