//! The redesigned simulation front door: [`Simulation::builder`].
//!
//! The legacy entry point (`EmbeddingSimulator { embedding, router }` plus
//! panicking size asserts) predates the engine's execution knobs; this
//! builder replaces it with a validating, fallible API:
//!
//! ```
//! use unet_core::prelude::*;
//! use unet_topology::generators::{ring, torus};
//!
//! let guest = ring(16);
//! let host = torus(2, 2);
//! let comp = GuestComputation::random(guest, 7);
//! let router = presets::bfs();
//! let run = Simulation::builder()
//!     .guest(&comp)
//!     .host(&host)
//!     .embedding(Embedding::block(16, 4))
//!     .router(&router)
//!     .steps(3)
//!     .seed(1)
//!     .run()
//!     .expect("valid configuration");
//! assert!(run.slowdown() >= 4.0); // ≥ load n/m
//! ```
//!
//! Every misconfiguration that used to abort the process — zero steps, an
//! embedding sized for a different guest or host, a router bound to another
//! topology — comes back as a [`SimError`] instead.
//!
//! Runs launched here default to the route-plan cache and the shared thread
//! pool (`UNET_THREADS`); both are knobs ([`SimulationBuilder::cache_policy`],
//! [`SimulationBuilder::threads`]) and **neither changes the output**: the
//! emitted protocol and final states are bit-for-bit identical across every
//! (threads × cache) combination, including for randomized routers, because
//! the builder derives one route seed per run instead of threading the RNG
//! through every phase.

use crate::cache::SharedPlanCache;
use crate::cancel::CancelToken;
use crate::embedding::Embedding;
use crate::error::SimError;
use crate::guest::GuestComputation;
use crate::routers::Router;
use crate::simulate::{run_engine, EngineConfig, SimulationRun};
use rand::rngs::StdRng;
use rand::Rng;
use unet_obs::{NoopRecorder, Recorder};
use unet_topology::par::default_threads;
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

/// Whether the engine may reuse the step-invariant route plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Compute the communication-phase schedule once and replay it each
    /// step (the default; invisible in the output).
    #[default]
    Enabled,
    /// Re-derive the routing problem and schedule every step (the legacy
    /// behaviour; useful for measuring what the cache saves).
    Disabled,
}

/// Namespace for the builder: `Simulation::builder()` is the one public
/// entry point of the redesigned API.
pub struct Simulation;

impl Simulation {
    /// Start configuring a simulation run.
    pub fn builder<'a>() -> SimulationBuilder<'a, NoopRecorder> {
        SimulationBuilder {
            guest: None,
            host: None,
            embedding: None,
            router: None,
            steps: None,
            seed: 0,
            threads: None,
            cache: CachePolicy::Enabled,
            shared: None,
            cancel: None,
            recorder: None,
        }
    }
}

/// Builder for a universal simulation run (see [`Simulation::builder`]).
///
/// Required: [`guest`](Self::guest), [`host`](Self::host),
/// [`embedding`](Self::embedding), [`router`](Self::router),
/// [`steps`](Self::steps). Optional: [`seed`](Self::seed) (default 0),
/// [`threads`](Self::threads) (default `UNET_THREADS`-aware),
/// [`cache_policy`](Self::cache_policy) (default enabled),
/// [`recorder`](Self::recorder) (default no-op).
pub struct SimulationBuilder<'a, REC: Recorder = NoopRecorder> {
    guest: Option<&'a GuestComputation>,
    host: Option<&'a Graph>,
    embedding: Option<Embedding>,
    router: Option<&'a dyn Router>,
    steps: Option<u32>,
    seed: u64,
    threads: Option<usize>,
    cache: CachePolicy,
    shared: Option<&'a SharedPlanCache>,
    cancel: Option<CancelToken>,
    recorder: Option<&'a mut REC>,
}

impl<'a, REC: Recorder> SimulationBuilder<'a, REC> {
    /// The guest computation to simulate.
    pub fn guest(mut self, comp: &'a GuestComputation) -> Self {
        self.guest = Some(comp);
        self
    }

    /// The host graph to simulate on.
    pub fn host(mut self, host: &'a Graph) -> Self {
        self.host = Some(host);
        self
    }

    /// The static guest→host placement.
    pub fn embedding(mut self, embedding: Embedding) -> Self {
        self.embedding = Some(embedding);
        self
    }

    /// The host's routing strategy.
    pub fn router(mut self, router: &'a dyn Router) -> Self {
        self.router = Some(router);
        self
    }

    /// Number of guest steps to simulate (must be ≥ 1).
    pub fn steps(mut self, steps: u32) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Seed for all run randomness (route seed derivation). Runs with equal
    /// configurations and seeds are identical. Default 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the parallel phases. Defaults to
    /// [`default_threads`] (the `UNET_THREADS` override, else available
    /// parallelism capped at 8). `1` runs fully inline.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Route-plan cache policy (default [`CachePolicy::Enabled`]).
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// Share compiled route plans across runs through a process-wide
    /// [`SharedPlanCache`]. Runs whose workload fingerprint (guest, host,
    /// embedding, router, route seed) matches a cached entry skip plan
    /// compilation entirely; sharing never changes the output. Requires
    /// [`CachePolicy::Enabled`] to have any effect.
    pub fn shared_cache(mut self, shared: &'a SharedPlanCache) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Attach a [`CancelToken`]: the engine checks it at phase boundaries
    /// and returns [`SimError::Cancelled`] once it trips (explicitly or by
    /// deadline).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a [`Recorder`]; phase spans, `sim.*` counters (including
    /// `sim.cache.hits`/`sim.cache.misses` and the `sim.par.threads` gauge)
    /// and router metrics land there.
    pub fn recorder<R2: Recorder>(self, rec: &'a mut R2) -> SimulationBuilder<'a, R2> {
        SimulationBuilder {
            guest: self.guest,
            host: self.host,
            embedding: self.embedding,
            router: self.router,
            steps: self.steps,
            seed: self.seed,
            threads: self.threads,
            cache: self.cache,
            shared: self.shared,
            cancel: self.cancel,
            recorder: Some(rec),
        }
    }

    /// Validate the configuration and run the simulation.
    pub fn run(self) -> Result<SimulationRun, SimError> {
        let mut rng = seeded_rng(self.seed);
        self.run_with_rng(&mut rng)
    }

    /// [`run`](Self::run) with a caller-owned RNG (for callers that already
    /// manage a seeded stream, e.g. the lower-bound audit pipeline). Exactly
    /// one `u64` is drawn from `rng` — the per-run route seed — so the
    /// emitted protocol is independent of everything else the caller does
    /// with the stream.
    pub fn run_with_rng(self, rng: &mut StdRng) -> Result<SimulationRun, SimError> {
        let comp = self.guest.ok_or(SimError::MissingField("guest"))?;
        let host = self.host.ok_or(SimError::MissingField("host"))?;
        let embedding = self.embedding.ok_or(SimError::MissingField("embedding"))?;
        let router = self.router.ok_or(SimError::MissingField("router"))?;
        let steps = self.steps.ok_or(SimError::MissingField("steps"))?;
        let threads = self.threads.unwrap_or_else(default_threads);
        let route_seed: u64 = rng.gen();
        let cancel = self.cancel;
        let cfg = EngineConfig {
            threads,
            cache: self.cache == CachePolicy::Enabled,
            route_seed,
            shared: self.shared,
            cancel: cancel.as_ref(),
        };
        match self.recorder {
            Some(rec) => run_engine(&embedding, router, comp, host, steps, &cfg, rec),
            None => run_engine(&embedding, router, comp, host, steps, &cfg, &mut NoopRecorder),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routers::{presets, OfflineBenesRouter};
    use unet_pebble::check;
    use unet_topology::generators::{random_regular, ring, torus};

    fn base<'a>(
        comp: &'a GuestComputation,
        host: &'a Graph,
        router: &'a dyn Router,
    ) -> SimulationBuilder<'a> {
        Simulation::builder()
            .guest(comp)
            .host(host)
            .embedding(Embedding::block(comp.n(), host.n()))
            .router(router)
            .steps(3)
            .seed(9)
    }

    #[test]
    fn builder_run_certifies() {
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 3);
        let router = presets::bfs();
        let run = base(&comp, &host, &router).run().expect("valid config");
        check(&guest, &host, &run.protocol).expect("certified");
        assert_eq!(run.final_states, comp.run_final(3));
    }

    #[test]
    fn missing_fields_reported_by_name() {
        let err = Simulation::builder().run().unwrap_err();
        assert!(matches!(err, SimError::MissingField("guest")));
        let guest = ring(4);
        let comp = GuestComputation::random(guest, 0);
        let err = Simulation::builder().guest(&comp).run().unwrap_err();
        assert!(matches!(err, SimError::MissingField("host")));
    }

    #[test]
    fn zero_steps_is_an_error_not_a_panic() {
        let guest = ring(4);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 0);
        let router = presets::bfs();
        let err = base(&comp, &host, &router).steps(0).run().unwrap_err();
        assert!(matches!(err, SimError::ZeroSteps));
    }

    #[test]
    fn size_mismatches_are_errors() {
        let guest = ring(8);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 0);
        let router = presets::bfs();
        let err = base(&comp, &host, &router).embedding(Embedding::block(12, 4)).run().unwrap_err();
        assert!(matches!(err, SimError::GuestMismatch { embedding_n: 12, guest_n: 8 }));
        let err = base(&comp, &host, &router).embedding(Embedding::block(8, 9)).run().unwrap_err();
        assert!(matches!(err, SimError::HostMismatch { embedding_m: 9, host_m: 4 }));
    }

    #[test]
    fn topology_bound_router_rejected_up_front() {
        let guest = ring(8);
        let host = torus(2, 2); // not a Beneš network
        let comp = GuestComputation::random(guest, 0);
        let router = OfflineBenesRouter { dim: 2 };
        let err = base(&comp, &host, &router).run().unwrap_err();
        match err {
            SimError::Router { router, .. } => assert_eq!(router, "offline-benes-waksman"),
            other => panic!("expected Router error, got {other:?}"),
        }
    }

    #[test]
    fn cached_equals_uncached_even_for_randomized_routers() {
        // Valiant draws random intermediates; the per-run route seed makes
        // the schedule step-invariant, so caching is pure memoization.
        let dim = 3;
        let host = unet_topology::generators::butterfly(dim);
        let guest = random_regular(64, 4, &mut seeded_rng(12));
        let comp = GuestComputation::random(guest.clone(), 5);
        let router = presets::butterfly_valiant(dim);
        let embedding = Embedding::block(64, host.n());
        let cached = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(embedding.clone())
            .router(&router)
            .steps(4)
            .seed(7)
            .run()
            .expect("cached run");
        let uncached = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(embedding)
            .router(&router)
            .steps(4)
            .seed(7)
            .cache_policy(CachePolicy::Disabled)
            .run()
            .expect("uncached run");
        assert_eq!(cached.protocol, uncached.protocol, "bit-for-bit protocols");
        assert_eq!(cached.final_states, uncached.final_states);
        assert_eq!(cached.comm_steps, uncached.comm_steps);
        check(&guest, &host, &cached.protocol).expect("certified");
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let guest = random_regular(30, 4, &mut seeded_rng(3));
        let host = torus(3, 3);
        let comp = GuestComputation::random(guest.clone(), 8);
        let router = presets::bfs();
        let one = base(&comp, &host, &router).threads(1).run().expect("t1");
        let four = base(&comp, &host, &router).threads(4).run().expect("t4");
        assert_eq!(one.protocol, four.protocol);
        assert_eq!(one.final_states, four.final_states);
    }

    #[test]
    fn cache_counters_count_replays() {
        use unet_obs::InMemoryRecorder;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let mut rec = InMemoryRecorder::new();
        base(&comp, &host, &router).steps(5).recorder(&mut rec).run().expect("run");
        // gt=1 needs no comm; gt=2 misses (cold), gt=3..5 hit.
        assert_eq!(rec.counter_value("sim.cache.misses"), 1);
        assert_eq!(rec.counter_value("sim.cache.hits"), 3);
        // And still one routing-problem-size sample per guest step.
        assert_eq!(rec.histogram_data("sim.routing_problem_size").unwrap().count, 5);
    }

    #[test]
    fn edge_util_telemetry_identical_cached_and_uncached() {
        // The congestion series describes edge traffic, so replayed
        // (cached) comm phases must contribute exactly like routed ones.
        use unet_obs::InMemoryRecorder;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let mut with_cache = InMemoryRecorder::new();
        base(&comp, &host, &router).steps(5).recorder(&mut with_cache).run().expect("run");
        let mut no_cache = InMemoryRecorder::new();
        base(&comp, &host, &router)
            .steps(5)
            .cache_policy(CachePolicy::Disabled)
            .recorder(&mut no_cache)
            .run()
            .expect("run");
        let a = with_cache.sample_data("sim.edge_util").expect("cached run sampled");
        let b = no_cache.sample_data("sim.edge_util").expect("uncached run sampled");
        assert_eq!(a, b, "same edges, same rounds, same totals");
        assert!(!a.is_empty());
        // Total sim.edge_util mass = transfers replayed through the hosts;
        // with 4 comm phases replaying the same plan, it is 4x one phase.
        let total: u64 = a.values().sum();
        assert_eq!(total % 4, 0, "4 identical comm phases: {total}");
    }

    #[test]
    fn shared_cache_skips_compilation_without_changing_output() {
        use crate::cache::SharedPlanCache;
        use unet_obs::InMemoryRecorder;
        let guest = random_regular(24, 4, &mut seeded_rng(2));
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 3);
        let router = presets::bfs();
        let shared = SharedPlanCache::new();

        let mut cold = InMemoryRecorder::new();
        let first = base(&comp, &host, &router)
            .steps(4)
            .shared_cache(&shared)
            .recorder(&mut cold)
            .run()
            .expect("cold run");
        assert_eq!(cold.counter_value("sim.cache.shared.misses"), 1);
        assert_eq!(cold.counter_value("sim.cache.shared.hits"), 0);
        assert_eq!(shared.len(), 1, "cold run published its plan");

        let mut warm = InMemoryRecorder::new();
        let second = base(&comp, &host, &router)
            .steps(4)
            .shared_cache(&shared)
            .recorder(&mut warm)
            .run()
            .expect("warm run");
        assert_eq!(warm.counter_value("sim.cache.shared.hits"), 1);
        assert_eq!(warm.counter_value("sim.cache.shared.misses"), 0);
        // Pre-seeded: the per-run cache never missed at all.
        assert_eq!(warm.counter_value("sim.cache.misses"), 0);
        assert_eq!(warm.counter_value("sim.cache.hits"), 3);
        // Sharing is invisible in the output.
        assert_eq!(first.protocol, second.protocol, "bit-for-bit across the shared cache");
        assert_eq!(first.final_states, second.final_states);
        check(&guest, &host, &first.protocol).expect("certified");
        assert_eq!((shared.hits(), shared.misses()), (1, 1));
        assert_eq!(shared.hit_ratio(), Some(0.5));
    }

    #[test]
    fn different_seeds_do_not_share_plans() {
        use crate::cache::SharedPlanCache;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let shared = SharedPlanCache::new();
        base(&comp, &host, &router).seed(1).shared_cache(&shared).run().expect("seed 1");
        base(&comp, &host, &router).seed(2).shared_cache(&shared).run().expect("seed 2");
        assert_eq!(shared.len(), 2, "distinct route seeds are distinct workloads");
        assert_eq!(shared.hits(), 0);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_phase() {
        use crate::cancel::CancelToken;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let token = CancelToken::new();
        token.cancel();
        let err = base(&comp, &host, &router).cancel_token(token).run().unwrap_err();
        assert!(matches!(err, SimError::Cancelled));
    }

    #[test]
    fn expired_deadline_cancels_at_a_phase_boundary() {
        use crate::cancel::CancelToken;
        use std::time::Duration;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let token = CancelToken::with_deadline(Duration::ZERO);
        let err = base(&comp, &host, &router).steps(50).cancel_token(token).run().unwrap_err();
        assert!(matches!(err, SimError::Cancelled));
    }

    #[test]
    fn uncancelled_token_is_invisible() {
        use crate::cancel::CancelToken;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let plain = base(&comp, &host, &router).run().expect("plain");
        let tokened =
            base(&comp, &host, &router).cancel_token(CancelToken::new()).run().expect("tokened");
        assert_eq!(plain.protocol, tokened.protocol);
        assert_eq!(plain.final_states, tokened.final_states);
    }

    #[test]
    fn run_with_rng_draws_exactly_one_route_seed() {
        // The documented contract callers like the audit pipeline rely on:
        // `run_with_rng` consumes one u64 and nothing else, so the emitted
        // protocol only depends on that draw — a fresh rng at the same
        // position produces the identical run.
        use rand::Rng;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 3);
        let router = presets::bfs();
        let mut rng = seeded_rng(9);
        let a = base(&comp, &host, &router).run_with_rng(&mut rng).expect("first run");
        let after: u64 = rng.gen();
        let mut replay = seeded_rng(9);
        let b = base(&comp, &host, &router).run_with_rng(&mut replay).expect("replay run");
        assert_eq!(replay.gen::<u64>(), after, "exactly one draw consumed");
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.final_states, b.final_states);
    }
}
