//! The sharded serving tier must be observationally equivalent to a single
//! backend: the same specs sent through a `unet shard` router over N
//! backends produce the same stats — bit-for-bit, wall time aside — as
//! sending them to one plain server, *including* the shared-cache hit
//! pattern (fingerprint affinity means the first occurrence of each
//! fingerprint is the one plan build, exactly as on a single server), for
//! both per-request and batch (split/re-merge) traffic. A backend killed
//! between a client's requests must cost nothing observable either: the
//! ring fails the dead shard's keys over to its successor, every request
//! is answered, and the simulation outputs stay bit-for-bit identical
//! (only the hit flag may recool, since the surviving shard compiles the
//! migrated plan once).

use proptest::prelude::*;
use universal_networks::serve::client::Client;
use universal_networks::serve::protocol::SimulateReq;
use universal_networks::serve::ring::Ring;
use universal_networks::serve::router::{simulate_fingerprint, Router, ShardConfig};
use universal_networks::serve::{ClientError, ServeConfig, Server, SimulateResult};

const GUESTS: [&str; 3] = ["ring:12", "ring:16", "ring:24"];
const HOSTS: [&str; 2] = ["torus:2x2", "torus:3x3"];

fn spec(guest_i: usize, host_i: usize, steps: u32, seed: u64) -> SimulateReq {
    SimulateReq {
        guest: GUESTS[guest_i % GUESTS.len()].into(),
        host: HOSTS[host_i % HOSTS.len()].into(),
        steps,
        seed,
        deadline_ms: None,
        id: None,
    }
}

fn backend() -> Server {
    Server::start(ServeConfig { workers: 2, queue_cap: 32, ..ServeConfig::default() })
        .expect("bind backend on 127.0.0.1:0")
}

/// N backends plus a router in front of them.
fn deployment(shards: usize, probe_interval_ms: u64) -> (Vec<Server>, Router) {
    let backends: Vec<Server> = (0..shards).map(|_| backend()).collect();
    let router = Router::start(ShardConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        workers: 2,
        probe_interval_ms,
        ..ShardConfig::default()
    })
    .expect("bind router on 127.0.0.1:0");
    (backends, router)
}

/// The deterministic projection of a result: every stat except wall time.
fn stats(r: &SimulateResult) -> (u64, u64, u64, f64, f64, bool, bool) {
    (
        r.host_steps,
        r.comm_steps,
        r.compute_steps,
        r.slowdown,
        r.inefficiency,
        r.shared_cache_hit,
        r.verified,
    )
}

/// Same projection minus the cache-hit flag, for runs where a failover
/// legitimately recools one fingerprint.
fn sim_stats(r: &SimulateResult) -> (u64, u64, u64, f64, f64, bool) {
    (r.host_steps, r.comm_steps, r.compute_steps, r.slowdown, r.inefficiency, r.verified)
}

type Outcome = Result<SimulateResult, (String, String)>;

fn drive(addr: &str, specs: &[SimulateReq], batched: bool) -> Vec<Outcome> {
    let mut client = Client::connect(addr).expect("connect");
    let out = if batched {
        client
            .simulate_batch(specs, None)
            .expect("batch round trip")
            .into_iter()
            .map(|item| item.map_err(|e| (e.code, e.message)))
            .collect()
    } else {
        specs
            .iter()
            .map(|s| match client.simulate(s) {
                Ok(r) => Ok(r),
                Err(ClientError::Server(e)) => Err((e.code, e.message)),
                Err(e) => panic!("transport failed: {e}"),
            })
            .collect()
    };
    drop(client);
    out
}

/// Reference execution: one plain server, no router.
fn run_single(specs: &[SimulateReq], batched: bool) -> Vec<Outcome> {
    let server = backend();
    let out = drive(&server.addr().to_string(), specs, batched);
    server.drain();
    out
}

/// The same specs through a router over `shards` backends.
fn run_sharded(specs: &[SimulateReq], shards: usize, batched: bool) -> Vec<Outcome> {
    let (backends, router) = deployment(shards, 100);
    let out = drive(&router.addr().to_string(), specs, batched);
    let report = router.drain();
    assert_eq!(report.stats.failovers, 0, "healthy backends never fail over");
    for b in backends {
        b.drain();
    }
    out
}

fn assert_equivalent(specs: &[SimulateReq], shards: usize, batched: bool) {
    let single = run_single(specs, batched);
    let sharded = run_sharded(specs, shards, batched);
    assert_eq!(single.len(), sharded.len());
    for (i, (s, r)) in single.iter().zip(&sharded).enumerate() {
        match (s, r) {
            (Ok(sr), Ok(rr)) => assert_eq!(
                stats(sr),
                stats(rr),
                "item {i} ({} on {}, {shards} shards, batched={batched}): \
                 sharded stats diverge from single-backend",
                specs[i].guest,
                specs[i].host
            ),
            (Err(se), Err(re)) => {
                assert_eq!(se.0, re.0, "item {i}: error codes diverge");
            }
            _ => panic!("item {i}: one side succeeded, the other failed: {s:?} vs {r:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workload mixes — duplicate fingerprints and all — come back
    /// with identical stats and identical cache-hit patterns whether they
    /// cross a sharded router or hit one server directly.
    #[test]
    fn sharded_equals_single_backend(
        items in prop::collection::vec((0usize..3, 0usize..2, 1u32..4, 0u64..3), 1..5),
        shards in 1usize..4,
        batched in any::<bool>(),
    ) {
        let specs: Vec<SimulateReq> =
            items.iter().map(|&(g, h, t, s)| spec(g, h, t, s)).collect();
        assert_equivalent(&specs, shards, batched);
    }
}

#[test]
fn batch_split_reassembles_in_request_order_with_errors_isolated() {
    // A batch that must split across shards, with a bad spec and repeated
    // fingerprints mixed in: the re-merged response keeps slots positional
    // and the hit pattern matches the single-server run exactly.
    let mut bad = spec(0, 0, 2, 1);
    bad.guest = "blah:9".into();
    let specs = vec![spec(0, 0, 2, 7), bad, spec(1, 1, 2, 7), spec(0, 0, 2, 7), spec(2, 1, 3, 0)];
    assert_equivalent(&specs, 3, true);
    let sharded = run_sharded(&specs, 3, true);
    assert_eq!(sharded[1].as_ref().err().map(|e| e.0.as_str()), Some("bad-spec"));
    let hits: Vec<bool> = [0usize, 2, 3, 4]
        .iter()
        .map(|&i| sharded[i].as_ref().expect("valid item").shared_cache_hit)
        .collect();
    assert_eq!(hits, [false, false, true, false], "first occurrence per fingerprint misses");
}

#[test]
fn killed_backend_fails_over_with_zero_lost_requests() {
    // A probe interval far beyond the test's lifetime: failure detection
    // must come from the request path itself, not the background prober.
    let shards = 2;
    let (mut backends, router) = deployment(shards, 60_000);
    let addr = router.addr().to_string();
    let probe = spec(0, 0, 2, 7);
    let home = Ring::new(shards).shard_of(simulate_fingerprint(&probe).expect("fingerprint"));

    let mut client = Client::connect(&addr).expect("connect");
    let before = client.simulate(&probe).expect("request before the kill");
    assert!(!before.shared_cache_hit, "cold fingerprint compiles once");

    // Kill the home shard: in-flight work is answered by its drain, the
    // router's pooled connection to it goes stale, and the next request
    // for this fingerprint dies mid-forward — the failover path.
    backends.remove(home).drain();

    for _ in 0..4 {
        let after = client.simulate(&probe).expect("absorbed by the ring successor");
        assert_eq!(
            sim_stats(&before),
            sim_stats(&after),
            "failover preserves simulation outputs bit-for-bit"
        );
    }
    // The migrated fingerprint recompiles once on the survivor, then hits.
    let warm = client.simulate(&probe).expect("warm on the successor");
    assert!(warm.shared_cache_hit, "successor cache is warm after the migration");

    drop(client);
    let report = router.drain();
    assert!(report.stats.failovers >= 1, "the kill must surface as a failover");
    assert_eq!(report.stats.completed, 6, "zero lost requests across the kill");
    for b in backends {
        b.drain();
    }
}
