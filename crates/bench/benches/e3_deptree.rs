//! E3 — Figure 1 / Lemma 3.10: dependency trees.
//!
//! Regenerates the dependency-tree statistics across block sides (size vs
//! the paper's `48a²` bound, depth, leaf coverage — all machine-verified),
//! then times tree construction and verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unet_pebble::deptree::{dependency_tree, tree_depth, verify_tree, BlockTorus};
use unet_topology::generators::multitorus;
use unet_topology::Node;

fn regenerate_table() {
    println!("\n=== E3: dependency trees (Lemma 3.10 / Figure 1) ===");
    println!(
        "{:>6} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "a", "side", "depth", "max size", "48a²", "leaves"
    );
    for a in [1usize, 2, 3, 4, 8] {
        let side = 2 * a;
        let reference = BlockTorus::new(side, (0..(side * side) as Node).collect());
        let g0 = multitorus(side, side * side); // one block = whole torus here
        let depth = tree_depth(side);
        let mut max_size = 0;
        for p in 0..(side * side) as Node {
            let tree = dependency_tree(&reference, p, depth);
            verify_tree(&tree, &g0, &reference).expect("Lemma 3.10 invariants");
            max_size = max_size.max(tree.size());
        }
        println!("{a:>6} {side:>7} {depth:>7} {max_size:>9} {:>9} {:>8}", 48 * a * a, side * side);
    }
    println!(
        "every tree verified: binary, rooted at t−depth, leaves = block × {{t}}, size ≤ 48a²."
    );
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e3_deptree");
    for side in [4usize, 8, 16] {
        let block = BlockTorus::new(side, (0..(side * side) as Node).collect());
        let depth = tree_depth(side);
        group.bench_with_input(BenchmarkId::new("construct", side), &side, |b, _| {
            b.iter(|| dependency_tree(&block, 0, depth))
        });
        let g0 = multitorus(side, side * side);
        let tree = dependency_tree(&block, 0, depth);
        group.bench_with_input(BenchmarkId::new("verify", side), &side, |b, _| {
            b.iter(|| verify_tree(&tree, &g0, &block).unwrap())
        });
    }
    group.bench_function("canonical_trees_side8", |b| {
        b.iter(|| unet_lowerbound::averaging::canonical_trees(8))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
