//! Experiment E6: `route_M(h)` across strategies and hosts.
//!
//! Measures the routing-time function of Section 2 — the quantity that
//! Theorem 2.1 converts into universal-simulation slowdown — for:
//! greedy bit-fixing and Valiant's randomized routing on the butterfly,
//! dimension-order routing on the torus, and the offline Beneš/Waksman
//! pipeline. Expected shapes: butterfly/Beneš ≈ `h + log m` per wave
//! (offline) or `h·log m`-ish online; torus pays `√m`.
//!
//! Run with: `cargo run --release --example routing_comparison`

use universal_networks::routing::benes::{benes_h_h_schedule, benes_network};
use universal_networks::routing::butterfly::{GreedyButterfly, ValiantButterfly};
use universal_networks::routing::greedy::DimensionOrder;
use universal_networks::routing::metrics::measure_route_time;
use universal_networks::topology::generators::{butterfly, torus};
use universal_networks::topology::util::seeded_rng;
use rand::seq::SliceRandom;

fn main() {
    let mut rng = seeded_rng(31);
    let dim = 6; // butterfly: 448 nodes, 64 rows
    let bf = butterfly(dim);
    let side = 21; // torus of comparable size (441)
    let tor = torus(side, side);
    let d_benes = 6; // Beneš on 64 rows

    println!(
        "butterfly m = {}, torus m = {}, benes rows = {}",
        bf.n(),
        tor.n(),
        1 << d_benes
    );
    println!(
        "{:>4} {:>16} {:>16} {:>14} {:>18}",
        "h", "bf-greedy(max)", "bf-valiant(max)", "torus-xy(max)", "benes-offline(exact)"
    );
    for h in [1usize, 2, 4, 8] {
        let g = measure_route_time(&bf, h, &GreedyButterfly { dim }, 3, &mut rng);
        let v = measure_route_time(&bf, h, &ValiantButterfly { dim }, 3, &mut rng);
        let t = measure_route_time(&tor, h, &DimensionOrder::torus(side, side), 3, &mut rng);
        // Offline: exact makespan of the Waksman pipeline on h permutations.
        let rows = 1u32 << d_benes;
        let mut pairs = Vec::new();
        for _ in 0..h {
            let mut p: Vec<u32> = (0..rows).collect();
            p.shuffle(&mut rng);
            for (s, &d) in p.iter().enumerate() {
                pairs.push((s as u32, d));
            }
        }
        let (makespan, _, _) = benes_h_h_schedule(d_benes, &pairs);
        println!(
            "{h:>4} {:>16} {:>16} {:>14} {:>18}",
            g.max_steps, v.max_steps, t.max_steps, makespan
        );
    }
    println!(
        "\noffline formula: 2(h−1) + 2(2d−1) = O(h + log m); torus grows with √m = {side};"
    );
    println!("online butterfly ≈ O(h·log m) — the Theorem 2.1 slowdown driver.");
    let _ = benes_network(d_benes); // the Beneš graph itself is also a valid host
}
