//! E2 — Theorem 3.1: the lower-bound trade-off table.
//!
//! Regenerates the `m·s = Ω(n·log m)` curve from the counting chain, with
//! both shape constants and the paper's literal constants, next to the
//! Theorem 2.1 upper shape; then times the numeric solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_lowerbound::counting::{crossover_k, log2_d_k, log2_u_g0};
use unet_lowerbound::{k_min, tradeoff_table, CountingParams};

const GAMMA: f64 = 0.125; // typical certified γ of a random 4-regular expander

fn regenerate_table() {
    let n = 1u64 << 14;
    let ms: Vec<u64> = (3..=14).map(|e| 1u64 << e).collect();
    println!("\n=== E2: lower-bound trade-off (n = {n}, γ = {GAMMA}) ===");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "m", "k_ideal", "k_shape", "k_paper", "s_shape", "s_upper", "m*s(shape)"
    );
    for row in tradeoff_table(n, &ms, GAMMA, 4) {
        println!(
            "{:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>9.1} {:>12.0}",
            row.m, row.k_ideal, row.k_shape, row.k_paper, row.s_shape, row.s_upper, row.ms_product
        );
    }
    println!("k_ideal ≈ log₂ m (the theorem, unit constants); k_paper shows the unoptimized");
    println!("proof constants (the bound only bites at astronomical m — honestly reported).");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let shape = CountingParams::shape(GAMMA);
    let mut group = c.benchmark_group("e2_tradeoff");
    group.bench_function("k_min", |b| b.iter(|| k_min(std::hint::black_box(1u64 << 20), &shape)));
    group.bench_function("crossover_k", |b| b.iter(|| crossover_k(1 << 12, 1 << 10, &shape)));
    group.bench_function("log2_d_k", |b| b.iter(|| log2_d_k(1 << 12, 1 << 10, 3.0, &shape)));
    group.bench_function("log2_u_g0", |b| b.iter(|| log2_u_g0(1 << 12, 16)));
    group.bench_function("tradeoff_table_12_rows", |b| {
        let ms: Vec<u64> = (3..=14).map(|e| 1u64 << e).collect();
        b.iter(|| tradeoff_table(1 << 14, &ms, GAMMA, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
