//! Benchmark harness for the paper reproduction: shared fixtures, the
//! declarative experiment registry, and the shape-regression gate.
//!
//! The crate has two layers:
//!
//! * **Fixtures** (this module): seeded guests, butterfly runs, and the
//!   lower-bound trace shared by the criterion benches (`benches/e*.rs`),
//!   which print the human-readable tables.
//! * **The registry** ([`registry`]): one declarative [`registry::Experiment`]
//!   per machine-checked experiment (E1, E2, E16, E17, E18), swept in parallel
//!   shards ([`sweep`]), serialized to the versioned `BENCH.json` artifact
//!   ([`schema`]), rendered to markdown ([`report_md`]), and regression-gated
//!   by expected-shape predicates ([`shape`], [`diff`]) — `k` affine in
//!   `log m` (Thm 2.1), every point above the `Ω(log m)` floor (Thm 3.1),
//!   bit-for-bit engine determinism — rather than absolute timings.
//!
//! Everything here drives the [`Simulation`] builder engine with explicit
//! seeds, so rows are reproducible and parallel-shard-safe.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use unet_core::prelude::*;
use unet_core::routers::SelectorRouter;
use unet_pebble::check::Trace;
use unet_routing::butterfly::ValiantButterfly;
use unet_topology::generators::{butterfly, random_regular, random_supergraph, torus};
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

pub mod diff;
pub mod registry;
pub mod report_md;
pub mod schema;
pub mod shape;
pub mod sweep;

/// Standard RNG for all benches (reproducible tables).
pub fn rng() -> StdRng {
    seeded_rng(0x5EED)
}

/// A random 4-regular guest of size `n` with its computation.
pub fn standard_guest(n: usize, seed: u64) -> (Graph, GuestComputation) {
    let mut r = seeded_rng(seed);
    let g = random_regular(n, 4, &mut r);
    let c = GuestComputation::random(g.clone(), seed ^ 0xff);
    (g, c)
}

/// Simulate guest on a butterfly of dimension `dim` with Valiant routing
/// (the Theorem 2.1 host family); returns the measured slowdown.
pub fn butterfly_slowdown(
    guest: &Graph,
    comp: &GuestComputation,
    dim: usize,
    steps: u32,
    seed: u64,
) -> f64 {
    butterfly_metrics(guest, comp, dim, steps, seed).slowdown
}

/// Like [`butterfly_slowdown`], but returns the full certified metrics
/// (host steps, slowdown, inefficiency, sizes) — the raw material of the
/// registry's E1 rows.
pub fn butterfly_metrics(
    guest: &Graph,
    comp: &GuestComputation,
    dim: usize,
    steps: u32,
    seed: u64,
) -> unet_pebble::analysis::SimulationMetrics {
    let host = butterfly(dim);
    let router: SelectorRouter<ValiantButterfly> = presets::butterfly_valiant(dim);
    let run = Simulation::builder()
        .guest(comp)
        .host(&host)
        .embedding(Embedding::block(guest.n(), host.n()))
        .router(&router)
        .steps(steps)
        .seed(seed)
        .run()
        .expect("butterfly configuration is valid");
    let v = verify_run(comp, &host, &run, steps).expect("certifies");
    v.metrics
}

/// One engine run for the E17 thread/cache sweep: the E1 butterfly
/// configuration driven through the [`Simulation`] builder with explicit
/// thread and cache settings. Returns the certified run together with the
/// route-plan cache hit/miss counters it reported.
pub fn butterfly_engine_run(
    guest: &Graph,
    comp: &GuestComputation,
    dim: usize,
    steps: u32,
    seed: u64,
    threads: usize,
    cache: bool,
) -> (SimulationRun, u64, u64) {
    let host = butterfly(dim);
    let router: SelectorRouter<ValiantButterfly> = presets::butterfly_valiant(dim);
    let mut rec = unet_obs::InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(comp)
        .host(&host)
        .embedding(Embedding::block(guest.n(), host.n()))
        .router(&router)
        .steps(steps)
        .seed(seed)
        .threads(threads)
        .cache_policy(if cache { CachePolicy::Enabled } else { CachePolicy::Disabled })
        .recorder(&mut rec)
        .run()
        .expect("builder run succeeds on the E1 configuration");
    let hits = rec.counter_value("sim.cache.hits");
    let misses = rec.counter_value("sim.cache.misses");
    (run, hits, misses)
}

/// A verified trace of a `U[G₀]` guest on a torus host — the shared input
/// for the lower-bound analysis benches (E4, E5, E7).
pub struct LowerBoundFixture {
    /// The fixed subgraph.
    pub g0: unet_lowerbound::G0,
    /// The sampled guest ⊇ G₀.
    pub guest: Graph,
    /// The host.
    pub host: Graph,
    /// The certified trace.
    pub trace: Trace,
}

/// Build the standard lower-bound fixture: `n = 144`, `m = 16`, `T = 8`.
/// The analyses downstream (E4 averaging, E5 wavefront, E7 counting) are
/// properties of *any* certified trace (Thm 3.1 holds per protocol), so
/// the fixture just needs one — produced by the builder engine with the
/// fixture's own rng threaded through for the route seed.
pub fn lowerbound_fixture() -> LowerBoundFixture {
    let mut r = seeded_rng(77);
    let g0 = unet_lowerbound::build_g0(144, 1, &mut r);
    let guest = random_supergraph(&g0.graph, 12, &mut r);
    let comp = GuestComputation::random(guest.clone(), 78);
    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(144, 16))
        .router(&router)
        .steps(8)
        .run_with_rng(&mut r)
        .expect("torus fixture is valid");
    let trace = unet_pebble::check(&guest, &host, &run.protocol).expect("certifies");
    LowerBoundFixture { g0, guest, host, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = lowerbound_fixture();
        assert_eq!(f.trace.guest_n, 144);
        assert_eq!(f.trace.host_m, 16);
    }

    #[test]
    fn engine_run_sweep_rows_agree() {
        let (g, c) = standard_guest(96, 1);
        let (base, h0, m0) = butterfly_engine_run(&g, &c, 2, 3, 0x17, 1, false);
        let (tuned, h1, m1) = butterfly_engine_run(&g, &c, 2, 3, 0x17, 4, true);
        assert_eq!(base.protocol, tuned.protocol);
        assert_eq!(base.final_states, tuned.final_states);
        assert_eq!((h0, m0), (0, 0));
        assert!(h1 >= 1 && m1 == 1, "hits {h1}, misses {m1}");
    }

    #[test]
    fn butterfly_slowdown_sane() {
        let (g, c) = standard_guest(128, 1);
        let s = butterfly_slowdown(&g, &c, 3, 2, 0x5EED);
        assert!(s >= 4.0);
    }

    #[test]
    fn butterfly_metrics_is_seed_deterministic() {
        let (g, c) = standard_guest(96, 2);
        let a = butterfly_metrics(&g, &c, 2, 2, 7);
        let b = butterfly_metrics(&g, &c, 2, 2, 7);
        assert_eq!(a.host_steps, b.host_steps);
        assert_eq!(a.slowdown, b.slowdown);
    }
}
