//! One-shot request helper (the `unet request` CLI and tests use this).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Connect to `addr`, send one request line, and read one response line.
///
/// The connection is closed afterwards — scripting-friendly, at the cost of
/// a connect per request (the load generator keeps connections open
/// instead). An empty response (server closed without answering) is an
/// `UnexpectedEof` error.
pub fn request_line(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(response.trim_end().to_string())
}
