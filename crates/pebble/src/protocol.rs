//! The pebble-game simulation protocol (paper, Section 3.1).
//!
//! A simulation of `T` guest steps by `T'` host steps is a *protocol*: for
//! every host time step and every host processor, one operation. A pebble of
//! type `(P_i, t)` stands for the configuration of guest processor `P_i`
//! after `t` guest steps. Initially every host processor holds all pebbles
//! `(P_1, 0), …, (P_n, 0)`; pebbles are never destroyed; at the end every
//! final pebble `(P_i, T)` must have been generated somewhere.

use unet_topology::Node;

/// A pebble type `(P_i, t)`: the configuration of guest node `node` at guest
/// time `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pebble {
    /// Guest processor index `i`.
    pub node: Node,
    /// Guest time step `t ∈ [0, T]`.
    pub t: u32,
}

impl Pebble {
    /// Construct a pebble type.
    #[inline]
    pub fn new(node: Node, t: u32) -> Self {
        Pebble { node, t }
    }

    /// Pack into a `u64` key (for hash sets in hot paths).
    #[inline]
    pub fn key(self) -> u64 {
        ((self.node as u64) << 32) | self.t as u64
    }

    /// Inverse of [`Pebble::key`].
    #[inline]
    pub fn from_key(k: u64) -> Self {
        Pebble { node: (k >> 32) as Node, t: k as u32 }
    }
}

/// One host-processor operation in one host time step.
///
/// The model (Section 3.1): per step a processor may **generate** a pebble
/// `(P_i, t)` (requires holding `(P_i, t−1)` and `(P_j, t−1)` for every guest
/// neighbour `P_j` of `P_i`), **send** a *copy* of a held pebble to a
/// neighbouring processor, or **receive** one pebble from a neighbour.
/// Sends and receives must pair up within the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Do nothing this step.
    Idle,
    /// Generate pebble `(P_i, t)` from its predecessors held locally.
    Generate(Pebble),
    /// Send a copy of `pebble` to host neighbour `to` (both keep a copy).
    Send {
        /// The pebble type being copied.
        pebble: Pebble,
        /// Destination host processor (must be a host neighbour).
        to: Node,
    },
    /// Receive whatever the neighbour `from` sends this step.
    Recv {
        /// Source host processor (must be a host neighbour).
        from: Node,
    },
}

/// A complete simulation protocol: `steps[τ][q]` is the operation of host
/// processor `q` at host time `τ`. All rows have length `m` (host size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protocol {
    /// Number of guest processors `n`.
    pub guest_n: usize,
    /// Number of guest steps `T` being simulated.
    pub guest_t: u32,
    /// Number of host processors `m`.
    pub host_m: usize,
    /// `steps[τ][q]`: op of host `q` at host step `τ`; `steps.len() = T'`.
    pub steps: Vec<Vec<Op>>,
}

impl Protocol {
    /// Empty protocol skeleton.
    pub fn new(guest_n: usize, guest_t: u32, host_m: usize) -> Self {
        Protocol { guest_n, guest_t, host_m, steps: Vec::new() }
    }

    /// Host time `T'`.
    #[inline]
    pub fn host_steps(&self) -> usize {
        self.steps.len()
    }

    /// Append one host step of `m` operations.
    ///
    /// # Panics
    /// Panics if `ops.len() != m`.
    pub fn push_step(&mut self, ops: Vec<Op>) {
        assert_eq!(ops.len(), self.host_m, "step must cover every host processor");
        self.steps.push(ops);
    }

    /// Slowdown `s = T' / T` as a rational (numerator, denominator) and as
    /// `f64`.
    pub fn slowdown(&self) -> f64 {
        self.host_steps() as f64 / self.guest_t as f64
    }

    /// Inefficiency `k = s · m / n = T'·m / (T·n)` (paper, Section 3.1).
    /// The lower bound Theorem 3.1 states `k = Ω(log m)` for universal hosts.
    pub fn inefficiency(&self) -> f64 {
        self.slowdown() * self.host_m as f64 / self.guest_n as f64
    }

    /// Total number of host operations that are not `Idle` — an upper bound
    /// on the number of pebbles handled, used by Lemma 3.12's averaging
    /// (`Σ q_{i,t} ≤ m·T'`).
    pub fn busy_ops(&self) -> usize {
        self.steps.iter().flat_map(|row| row.iter()).filter(|op| !matches!(op, Op::Idle)).count()
    }

    /// Count of operations by kind `(generate, send, recv, idle)`.
    pub fn op_histogram(&self) -> (usize, usize, usize, usize) {
        let mut h = (0, 0, 0, 0);
        for op in self.steps.iter().flat_map(|r| r.iter()) {
            match op {
                Op::Generate(_) => h.0 += 1,
                Op::Send { .. } => h.1 += 1,
                Op::Recv { .. } => h.2 += 1,
                Op::Idle => h.3 += 1,
            }
        }
        h
    }
}

/// Mutable builder used by the simulators: collects per-host op queues and
/// flushes them into aligned [`Protocol`] rows.
#[derive(Debug)]
pub struct ProtocolBuilder {
    proto: Protocol,
    /// Ops queued for the *current* host step, one slot per host.
    current: Vec<Op>,
    dirty: bool,
}

impl ProtocolBuilder {
    /// Start building a protocol for `n` guests, `T` guest steps, `m` hosts.
    pub fn new(guest_n: usize, guest_t: u32, host_m: usize) -> Self {
        ProtocolBuilder {
            proto: Protocol::new(guest_n, guest_t, host_m),
            current: vec![Op::Idle; host_m],
            dirty: false,
        }
    }

    /// Host size `m`.
    pub fn host_m(&self) -> usize {
        self.proto.host_m
    }

    /// Set host `q`'s op for the current step.
    ///
    /// # Panics
    /// Panics if `q` already has a non-idle op this step (the model allows
    /// one operation per processor per step).
    pub fn set_op(&mut self, q: Node, op: Op) {
        let slot = &mut self.current[q as usize];
        assert!(matches!(slot, Op::Idle), "host {q} already has an op this step: {slot:?}");
        *slot = op;
        self.dirty = true;
    }

    /// Whether host `q` is free in the current step.
    pub fn is_free(&self, q: Node) -> bool {
        matches!(self.current[q as usize], Op::Idle)
    }

    /// Close the current host step (even if fully idle) and start a new one.
    pub fn end_step(&mut self) {
        let row = std::mem::replace(&mut self.current, vec![Op::Idle; self.proto.host_m]);
        self.proto.push_step(row);
        self.dirty = false;
    }

    /// Convenience: schedule a paired send/recv in the current step.
    ///
    /// # Panics
    /// Panics if either endpoint is busy.
    pub fn transfer(&mut self, from: Node, to: Node, pebble: Pebble) {
        self.set_op(from, Op::Send { pebble, to });
        self.set_op(to, Op::Recv { from });
    }

    /// Finish: flushes a trailing partial step and returns the protocol.
    pub fn finish(mut self) -> Protocol {
        if self.dirty {
            self.end_step();
        }
        self.proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pebble_key_roundtrip() {
        let p = Pebble::new(123456, 789);
        assert_eq!(Pebble::from_key(p.key()), p);
    }

    #[test]
    fn protocol_metrics() {
        let mut p = Protocol::new(4, 2, 2);
        p.push_step(vec![Op::Generate(Pebble::new(0, 1)), Op::Idle]);
        p.push_step(vec![Op::Send { pebble: Pebble::new(0, 1), to: 1 }, Op::Recv { from: 0 }]);
        assert_eq!(p.host_steps(), 2);
        assert_eq!(p.slowdown(), 1.0);
        assert_eq!(p.inefficiency(), 0.5);
        assert_eq!(p.busy_ops(), 3);
        assert_eq!(p.op_histogram(), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "must cover every host")]
    fn wrong_row_length_rejected() {
        let mut p = Protocol::new(4, 2, 3);
        p.push_step(vec![Op::Idle]);
    }

    #[test]
    fn builder_steps_align() {
        let mut b = ProtocolBuilder::new(2, 1, 3);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        b.transfer(0, 1, Pebble::new(0, 1));
        let proto = b.finish();
        assert_eq!(proto.host_steps(), 2);
        assert_eq!(proto.steps[1][0], Op::Send { pebble: Pebble::new(0, 1), to: 1 });
        assert_eq!(proto.steps[1][1], Op::Recv { from: 0 });
        assert_eq!(proto.steps[1][2], Op::Idle);
    }

    #[test]
    #[should_panic(expected = "already has an op")]
    fn builder_rejects_double_booking() {
        let mut b = ProtocolBuilder::new(2, 1, 2);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.set_op(0, Op::Idle);
    }

    #[test]
    fn builder_flushes_trailing_step() {
        let mut b = ProtocolBuilder::new(2, 1, 1);
        b.set_op(0, Op::Generate(Pebble::new(1, 1)));
        let proto = b.finish();
        assert_eq!(proto.host_steps(), 1);
    }

    #[test]
    fn builder_empty_protocol() {
        let proto = ProtocolBuilder::new(2, 1, 1).finish();
        assert_eq!(proto.host_steps(), 0);
    }
}
