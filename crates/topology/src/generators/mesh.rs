//! Meshes, tori, and the paper's multitorus (Definition 3.8).

use crate::graph::{Graph, GraphBuilder, Node};

/// Coordinates on an `rows × cols` grid, row-major.
#[inline]
pub fn grid_index(rows: usize, cols: usize, x: usize, y: usize) -> Node {
    debug_assert!(x < rows && y < cols);
    (x * cols + y) as Node
}

/// Inverse of [`grid_index`].
#[inline]
pub fn grid_coords(_rows: usize, cols: usize, v: Node) -> (usize, usize) {
    let v = v as usize;
    (v / cols, v % cols)
}

/// `rows × cols` mesh: vertices `(x, y)`, edges between grid neighbours at
/// Manhattan distance 1 (Definition 3.8's n-mesh with `rows = cols = √n`).
pub fn mesh(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for x in 0..rows {
        for y in 0..cols {
            let v = grid_index(rows, cols, x, y);
            if x + 1 < rows {
                b.add_edge(v, grid_index(rows, cols, x + 1, y));
            }
            if y + 1 < cols {
                b.add_edge(v, grid_index(rows, cols, x, y + 1));
            }
        }
    }
    b.build()
}

/// `rows × cols` torus: the mesh plus wrap-around edges in both dimensions
/// (Definition 3.8's n-torus). Side lengths of 1 or 2 degenerate gracefully
/// (wrap edges that would be self-loops or duplicates collapse).
pub fn torus(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for x in 0..rows {
        for y in 0..cols {
            let v = grid_index(rows, cols, x, y);
            let right = grid_index(rows, cols, x, (y + 1) % cols);
            let down = grid_index(rows, cols, (x + 1) % rows, y);
            if v != right {
                b.add_edge(v, right);
            }
            if v != down {
                b.add_edge(v, down);
            }
        }
    }
    b.build()
}

/// The paper's `(a, n)`-multitorus (Definition 3.8): an `N × N` torus
/// (`N = √n`) in which each aligned `a × a` submesh is additionally closed
/// into an `a × a` torus by wrap edges within the block.
///
/// `a` must divide `N`. The blocks are the `(N/a)²` aligned tiles; the paper
/// partitions `G₀` into these tiles (as `(a²)`-tori `T_1, …, T_h`).
///
/// # Panics
/// Panics if `n` is not a perfect square or `a` does not divide `√n`.
pub fn multitorus(a: usize, n: usize) -> Graph {
    let big = torus_side(n);
    assert!(a >= 1 && big.is_multiple_of(a), "block side {a} must divide N = {big}");
    let mut b = GraphBuilder::new(n);
    // Global torus edges.
    for x in 0..big {
        for y in 0..big {
            let v = grid_index(big, big, x, y);
            let right = grid_index(big, big, x, (y + 1) % big);
            let down = grid_index(big, big, (x + 1) % big, y);
            if v != right {
                b.add_edge(v, right);
            }
            if v != down {
                b.add_edge(v, down);
            }
        }
    }
    // Block wrap edges: for each aligned a × a tile, connect first and last
    // row / column of the tile (no-ops when a ≤ 2 are skipped, duplicates
    // collapse in the builder).
    if a > 2 {
        for bx in (0..big).step_by(a) {
            for by in (0..big).step_by(a) {
                for k in 0..a {
                    // Vertical wrap within column by+k.
                    b.add_edge(
                        grid_index(big, big, bx, by + k),
                        grid_index(big, big, bx + a - 1, by + k),
                    );
                    // Horizontal wrap within row bx+k.
                    b.add_edge(
                        grid_index(big, big, bx + k, by),
                        grid_index(big, big, bx + k, by + a - 1),
                    );
                }
            }
        }
    }
    b.build()
}

/// Side length `N = √n`, panicking unless `n` is a perfect square.
pub fn torus_side(n: usize) -> usize {
    let s = crate::util::isqrt(n);
    assert_eq!(s * s, n, "n = {n} must be a perfect square");
    s
}

/// The aligned `a × a` blocks of an `N × N` grid, each as a sorted vertex
/// list. Order: row-major over blocks. These are the tori `T_1, …, T_h` into
/// which the paper partitions `G₀` (with `a = 2·√(log m)` there).
pub fn blocks(a: usize, n: usize) -> Vec<Vec<Node>> {
    let big = torus_side(n);
    assert!(big.is_multiple_of(a));
    let mut out = Vec::with_capacity((big / a) * (big / a));
    for bx in (0..big).step_by(a) {
        for by in (0..big).step_by(a) {
            let mut blk = Vec::with_capacity(a * a);
            for x in 0..a {
                for y in 0..a {
                    blk.push(grid_index(big, big, bx + x, by + y));
                }
            }
            blk.sort_unstable();
            out.push(blk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_structure() {
        let g = mesh(3, 4);
        assert_eq!(g.n(), 12);
        // Edge count: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        // Corner has degree 2, interior 4.
        assert_eq!(g.degree(grid_index(3, 4, 0, 0)), 2);
        assert_eq!(g.degree(grid_index(3, 4, 1, 1)), 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 4);
        assert_eq!(g.is_regular(), Some(4));
        assert_eq!(g.num_edges(), 32);
        // Wrap edges present.
        assert!(g.has_edge(grid_index(4, 4, 0, 0), grid_index(4, 4, 3, 0)));
        assert!(g.has_edge(grid_index(4, 4, 0, 0), grid_index(4, 4, 0, 3)));
    }

    #[test]
    fn torus_degenerate_sides() {
        // 2 × 2 torus: wrap edges coincide with mesh edges.
        let g = torus(2, 2);
        assert_eq!(g.is_regular(), Some(2));
        assert_eq!(g.num_edges(), 4);
        // 1 × 4 torus is a ring of 4.
        let r = torus(1, 4);
        assert_eq!(r.is_regular(), Some(2));
        assert_eq!(r.num_edges(), 4);
    }

    #[test]
    fn multitorus_degree_is_8_interior() {
        // 8×8 torus with 4×4 block tori: nodes on block boundaries get up to
        // 4 extra wrap edges; every node has degree ≤ 8 (paper: multitorus
        // contributes ≤ 8 of G0's 12 degrees).
        let g = multitorus(4, 64);
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
        assert_eq!(g.n(), 64);
        // It contains the plain torus as subgraph.
        let t = torus(8, 8);
        assert!(g.contains_subgraph(&t));
    }

    #[test]
    fn multitorus_block_wrap_edges_present() {
        let g = multitorus(4, 64);
        // Inside block at origin: (0,0)-(3,0) and (0,0)-(0,3) wraps.
        assert!(g.has_edge(grid_index(8, 8, 0, 0), grid_index(8, 8, 3, 0)));
        assert!(g.has_edge(grid_index(8, 8, 0, 0), grid_index(8, 8, 0, 3)));
        // No wrap across block boundary other than global torus ones.
        assert!(!g.has_edge(grid_index(8, 8, 1, 1), grid_index(8, 8, 1, 6)));
    }

    #[test]
    fn multitorus_equal_block_is_torus() {
        // a = N: block wrap edges coincide with global wraps.
        let g = multitorus(4, 16);
        let t = torus(4, 4);
        assert_eq!(g, t);
    }

    #[test]
    fn blocks_partition_vertices() {
        let bl = blocks(4, 64);
        assert_eq!(bl.len(), 4);
        let mut all: Vec<Node> = bl.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        for blk in &bl {
            assert_eq!(blk.len(), 16);
        }
    }

    #[test]
    fn block_induces_torus() {
        // Each block of the multitorus, induced, is an a × a torus.
        let g = multitorus(4, 64);
        let bl = blocks(4, 64);
        let reference = torus(4, 4);
        for blk in &bl {
            let (sub, _) = g.induced(blk);
            // Same degree sequence & edge count as 4×4 torus (isomorphic by
            // construction; we check the invariants cheaply).
            assert_eq!(sub.num_edges(), reference.num_edges());
            assert_eq!(sub.is_regular(), Some(4));
        }
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn multitorus_rejects_non_square() {
        multitorus(2, 12);
    }

    #[test]
    fn grid_roundtrip() {
        for v in 0..12u32 {
            let (x, y) = grid_coords(3, 4, v);
            assert_eq!(grid_index(3, 4, x, y), v);
        }
    }
}
