//! Counting labelled regular graphs.
//!
//! The lower-bound proof of Theorem 3.1 is a counting argument: the number of
//! guests `|U'|` (c-regular graphs on n labelled vertices) must not exceed
//! the number `D(k)` of guests that admit `k`-inefficient simulations. This
//! module supplies the `log₂|U'|` side:
//!
//! * [`log2_num_regular`] — the Bender–Canfield asymptotic count, accurate to
//!   `o(1)` in the exponent for fixed degree;
//! * [`log2_pairings`] — the configuration-model upper bound
//!   `(nd)! / ((nd/2)!·2^{nd/2}·(d!)^n)`;
//! * [`log2_num_supergraphs`] — the paper's bound
//!   `|U[G₀]| ≥ n^{((c−12)/2)·n} · 2^{−δn}` in executable form (the count of
//!   (c−12)-regular residual graphs);
//! * [`count_regular_exact`] — brute-force enumeration for tiny `n`, used to
//!   validate the formulas in tests.

use crate::util::{log2_binomial, log2_factorial};

/// `log₂` of the number of perfect matchings of `2k` points: `(2k−1)!! =
/// (2k)! / (k!·2^k)`.
pub fn log2_double_factorial_odd(k: u64) -> f64 {
    log2_factorial(2 * k) - log2_factorial(k) - k as f64
}

/// `log₂` of the number of configuration-model pairings that project onto
/// labelled `d`-regular multigraphs: `(nd−1)!! / (d!)^n` — an upper bound on
/// the number of simple labelled `d`-regular graphs.
pub fn log2_pairings(n: u64, d: u64) -> f64 {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    log2_double_factorial_odd(n * d / 2) - n as f64 * log2_factorial(d)
}

/// Bender–Canfield estimate of `log₂ #{labelled simple d-regular graphs on n
/// vertices}`:
/// `(nd−1)!!/(d!)^n · e^{−(d²−1)/4}` — exact up to `(1+o(1))` for fixed `d`.
pub fn log2_num_regular(n: u64, d: u64) -> f64 {
    let correction = ((d * d) as f64 - 1.0) / 4.0 / std::f64::consts::LN_2;
    log2_pairings(n, d) - correction
}

/// `log₂|U[G₀]|` in the style of the paper's Theorem 3.1 proof: the guests
/// containing the fixed 12-regular `G₀` are determined by their
/// `(c−12)`-regular residual, so
/// `log₂|U[G₀]| ≈ log₂ #{(c−12)-regular graphs}`. The paper lower-bounds this
/// by `((c−12)/2)·n·log₂ n − δ·n`; we return both the Bender–Canfield value
/// and the paper's leading term for comparison.
pub fn log2_num_supergraphs(n: u64, c: u64) -> SupergraphCount {
    assert!(c >= 12 && (c - 12).is_multiple_of(2));
    let resid = c - 12;
    let bc = if resid == 0 { 0.0 } else { log2_num_regular(n, resid) };
    let leading = (resid as f64 / 2.0) * n as f64 * (n as f64).log2();
    // δ from Stirling: (nd/2)·log₂ e terms etc.; report the implied δ.
    let delta = if n > 0 { (leading - bc) / n as f64 } else { 0.0 };
    SupergraphCount { log2_count: bc, leading_term: leading, delta_per_n: delta }
}

/// Output of [`log2_num_supergraphs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupergraphCount {
    /// Bender–Canfield `log₂` count of residual graphs.
    pub log2_count: f64,
    /// The paper's leading term `((c−12)/2)·n·log₂ n`.
    pub leading_term: f64,
    /// Implied `δ` such that count `= leading − δ·n` (paper: a constant).
    pub delta_per_n: f64,
}

/// `log₂` of the naive per-fragment multiplicity bound of Lemma 3.3:
/// `∏ C(|D_i|, c/2)` given the multiset of `|D_i|` values.
pub fn log2_multiplicity(d_sizes: &[u64], c: u64) -> f64 {
    d_sizes.iter().map(|&di| log2_binomial(di, c / 2)).sum()
}

/// Exact count of labelled simple `d`-regular graphs on `n` vertices by
/// brute force over edge subsets. Exponential; intended for `n ≤ 8` with
/// `d ≤ 3` (validation of the formulas only).
pub fn count_regular_exact(n: usize, d: usize) -> u64 {
    assert!(n <= 8, "exact enumeration limited to n ≤ 8");
    if n * d % 2 == 1 {
        return 0;
    }
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
    let e = pairs.len();
    let need = n * d / 2;
    let mut count = 0u64;
    // Iterate subsets of exactly `need` edges via Gosper's hack.
    if need > e {
        return 0;
    }
    if need == 0 {
        return 1;
    }
    let mut mask: u64 = (1u64 << need) - 1;
    let limit: u64 = 1u64 << e;
    while mask < limit {
        let mut deg = [0u8; 8];
        let mut ok = true;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            let (u, v) = pairs[i];
            deg[u] += 1;
            deg[v] += 1;
            if deg[u] > d as u8 || deg[v] > d as u8 {
                ok = false;
                break;
            }
            m &= m - 1;
        }
        if ok && deg[..n].iter().all(|&x| x == d as u8) {
            count += 1;
        }
        // Gosper: next subset with same popcount.
        let c0 = mask & mask.wrapping_neg();
        let r = mask + c0;
        mask = ((r ^ mask) >> 2).checked_div(c0).map_or(limit, |q| q | r);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_known_values() {
        // Labelled 2-regular graphs = disjoint unions of cycles covering all
        // vertices: n=3 → 1 (triangle), n=4 → 3, n=5 → 12, n=6 → 70.
        assert_eq!(count_regular_exact(3, 2), 1);
        assert_eq!(count_regular_exact(4, 2), 3);
        assert_eq!(count_regular_exact(5, 2), 12);
        assert_eq!(count_regular_exact(6, 2), 70);
        // Labelled cubic graphs: n=4 → 1 (K4), n=6 → 70.
        assert_eq!(count_regular_exact(4, 3), 1);
        assert_eq!(count_regular_exact(6, 3), 70);
        // Odd n·d impossible.
        assert_eq!(count_regular_exact(5, 3), 0);
        // 1-regular = perfect matchings: n=6 → 15.
        assert_eq!(count_regular_exact(6, 1), 15);
    }

    #[test]
    fn pairings_upper_bounds_exact() {
        for (n, d) in [(6u64, 2usize), (6, 3), (8, 2)] {
            let exact = count_regular_exact(n as usize, d) as f64;
            let bound = log2_pairings(n, d as u64);
            assert!(
                bound >= exact.log2() - 1e-9,
                "n={n} d={d}: bound {bound} < exact {}",
                exact.log2()
            );
        }
    }

    #[test]
    fn bender_canfield_close_for_small_cases() {
        // BC is asymptotic; at n=8, d=3 it should be within ~1 bit of exact.
        let exact = count_regular_exact(8, 3) as f64; // 19355
        assert_eq!(exact as u64, 19355);
        let bc = log2_num_regular(8, 3);
        assert!((bc - exact.log2()).abs() < 1.0, "BC {bc} vs exact {}", exact.log2());
    }

    #[test]
    fn supergraph_count_leading_term_dominates() {
        let sc = log2_num_supergraphs(1 << 12, 16);
        // Count is positive and below the leading term (δ > 0 as the paper
        // states), and δ stays bounded.
        assert!(sc.log2_count > 0.0);
        assert!(sc.log2_count < sc.leading_term);
        assert!(sc.delta_per_n > 0.0 && sc.delta_per_n < 10.0, "δ = {}", sc.delta_per_n);
    }

    #[test]
    fn supergraph_count_degree_12_trivial() {
        let sc = log2_num_supergraphs(64, 12);
        assert_eq!(sc.log2_count, 0.0);
    }

    #[test]
    fn multiplicity_bound_formula() {
        // Two D_i of size 4, c = 4 ⇒ C(4,2)² = 36.
        let lg = log2_multiplicity(&[4, 4], 4);
        assert!((lg - 36f64.log2()).abs() < 1e-9);
        // An undersized D_i kills the product.
        assert_eq!(log2_multiplicity(&[1, 4], 4), f64::NEG_INFINITY);
    }

    #[test]
    fn double_factorial_small() {
        // (2·3−1)!! = 15.
        assert!((log2_double_factorial_odd(3) - 15f64.log2()).abs() < 1e-9);
    }
}
