//! The `unet-serve/1` wire protocol.
//!
//! Newline-delimited JSON over TCP, one request and one response per line,
//! versioned by a mandatory `proto` field. Three request kinds:
//!
//! ```text
//! {"proto":"unet-serve/1","kind":"simulate","guest":"ring:24","host":"torus:3x3",
//!  "steps":3,"seed":7,"deadline_ms":5000,"id":1}
//! {"proto":"unet-serve/1","kind":"analyze","trace":["<jsonl line>", ...],"id":2}
//! {"proto":"unet-serve/1","kind":"metrics","id":3}
//! ```
//!
//! and three response kinds:
//!
//! * `result` — the request succeeded; carries `req` (the request kind),
//!   the echoed `id` if one was sent, and kind-specific payload fields
//!   (`slowdown`, `exposition`, …);
//! * `error` — carries a machine-readable `code`
//!   (`bad-request`, `bad-spec`, `bad-trace`, `deadline-exceeded`,
//!   `sim-error`, `verify-failed`) and a human `message`;
//! * `overloaded` — the admission queue was full; the server rejected the
//!   connection *before* queueing it (explicit backpressure, never
//!   unbounded buffering). Carries the configured `queue_cap`.
//!
//! Graph specifications are the same `family:params` strings the CLI takes
//! everywhere else ([`unet_core::spec::parse_graph`]).

use unet_obs::json::Value;

/// The protocol version string every request and response carries.
pub const PROTOCOL: &str = "unet-serve/1";

/// A `simulate` request: run a guest spec on a host spec and certify it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateReq {
    /// Guest graph spec (`family:params`).
    pub guest: String,
    /// Host graph spec (`family:params`).
    pub host: String,
    /// Guest steps to simulate (≥ 1).
    pub steps: u32,
    /// Seed for guest states and route-seed derivation.
    pub seed: u64,
    /// Per-request deadline override in milliseconds (server default
    /// applies when absent).
    pub deadline_ms: Option<u64>,
    /// Client correlation id, echoed in the response.
    pub id: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run and certify one simulation.
    Simulate(SimulateReq),
    /// Aggregate trace lines with the streaming analyzer.
    Analyze {
        /// JSONL trace lines (the `unet trace` format).
        trace: Vec<String>,
        /// Client correlation id.
        id: Option<u64>,
    },
    /// Return the server's live metrics exposition.
    Metrics {
        /// Client correlation id.
        id: Option<u64>,
    },
}

impl Request {
    /// The request kind as it appears on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Simulate(_) => "simulate",
            Request::Analyze { .. } => "analyze",
            Request::Metrics { .. } => "metrics",
        }
    }

    /// The client correlation id, if one was sent.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Simulate(r) => r.id,
            Request::Analyze { id, .. } | Request::Metrics { id } => *id,
        }
    }
}

/// Parse one request line. Errors are human-readable and become the
/// `message` of a `bad-request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = unet_obs::json::parse(line)?;
    match v.get("proto").and_then(Value::as_str) {
        Some(PROTOCOL) => {}
        Some(other) => return Err(format!("unsupported protocol {other:?} (want {PROTOCOL:?})")),
        None => return Err(format!("missing `proto` field (want {PROTOCOL:?})")),
    }
    let id = v.get("id").and_then(Value::as_u64);
    match v.get("kind").and_then(Value::as_str) {
        Some("simulate") => {
            let field = |name: &str| {
                v.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("simulate needs a string `{name}` field"))
            };
            let steps = v
                .get("steps")
                .and_then(Value::as_u64)
                .ok_or("simulate needs an integer `steps` field")?;
            let steps =
                u32::try_from(steps).map_err(|_| format!("steps {steps} exceeds u32::MAX"))?;
            Ok(Request::Simulate(SimulateReq {
                guest: field("guest")?,
                host: field("host")?,
                steps,
                seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                id,
            }))
        }
        Some("analyze") => {
            let arr = v
                .get("trace")
                .and_then(Value::as_arr)
                .ok_or("analyze needs a `trace` array of JSONL lines")?;
            let trace = arr
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "analyze `trace` entries must all be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Analyze { trace, id })
        }
        Some("metrics") => Ok(Request::Metrics { id }),
        Some(other) => Err(format!("unknown request kind {other:?}")),
        None => Err("missing `kind` field".into()),
    }
}

fn envelope(kind: &str, id: Option<u64>) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("proto".to_string(), Value::Str(PROTOCOL.to_string())),
        ("kind".to_string(), Value::Str(kind.to_string())),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    fields
}

/// Build a `result` response line for request kind `req` with the given
/// payload fields.
pub fn result_line(req: &str, id: Option<u64>, payload: Vec<(String, Value)>) -> String {
    let mut fields = envelope("result", id);
    fields.push(("req".to_string(), Value::Str(req.to_string())));
    fields.extend(payload);
    Value::Obj(fields).to_json()
}

/// Build an `error` response line with a machine-readable `code`.
pub fn error_line(code: &str, message: &str, id: Option<u64>) -> String {
    let mut fields = envelope("error", id);
    fields.push(("code".to_string(), Value::Str(code.to_string())));
    fields.push(("message".to_string(), Value::Str(message.to_string())));
    Value::Obj(fields).to_json()
}

/// Build the typed backpressure rejection the acceptor sends when the
/// admission queue is full.
pub fn overloaded_line(queue_cap: usize) -> String {
    let mut fields = envelope("overloaded", None);
    fields.push(("queue_cap".to_string(), Value::UInt(queue_cap as u64)));
    Value::Obj(fields).to_json()
}

/// Build a `simulate` request line (the client/loadgen side of
/// [`parse_request`]).
pub fn simulate_request_line(req: &SimulateReq) -> String {
    let mut fields = vec![
        ("proto".to_string(), Value::Str(PROTOCOL.to_string())),
        ("kind".to_string(), Value::Str("simulate".to_string())),
        ("guest".to_string(), Value::Str(req.guest.clone())),
        ("host".to_string(), Value::Str(req.host.clone())),
        ("steps".to_string(), Value::UInt(req.steps as u64)),
        ("seed".to_string(), Value::UInt(req.seed)),
    ];
    if let Some(d) = req.deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::UInt(d)));
    }
    if let Some(id) = req.id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// Build an `analyze` request line.
pub fn analyze_request_line(trace: &[String], id: Option<u64>) -> String {
    let fields = vec![
        ("proto".to_string(), Value::Str(PROTOCOL.to_string())),
        ("kind".to_string(), Value::Str("analyze".to_string())),
        ("trace".to_string(), Value::Arr(trace.iter().map(|l| Value::Str(l.clone())).collect())),
    ];
    let mut fields = fields;
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// Build a `metrics` request line.
pub fn metrics_request_line(id: Option<u64>) -> String {
    let mut fields = vec![
        ("proto".to_string(), Value::Str(PROTOCOL.to_string())),
        ("kind".to_string(), Value::Str("metrics".to_string())),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// A parsed response line, classified by its `kind`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded; payload fields live in the carried object.
    Result(Value),
    /// The request failed with a typed code and message.
    Error {
        /// Machine-readable failure code.
        code: String,
        /// Human-readable description.
        message: String,
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// The admission queue was full; the request was never queued.
    Overloaded {
        /// The server's configured queue bound.
        queue_cap: u64,
    },
}

/// Parse one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = unet_obs::json::parse(line)?;
    match v.get("proto").and_then(Value::as_str) {
        Some(PROTOCOL) => {}
        _ => return Err(format!("response is not {PROTOCOL:?}: {line}")),
    }
    match v.get("kind").and_then(Value::as_str) {
        Some("result") => Ok(Response::Result(v)),
        Some("error") => Ok(Response::Error {
            code: v.get("code").and_then(Value::as_str).unwrap_or("unknown").to_string(),
            message: v.get("message").and_then(Value::as_str).unwrap_or("").to_string(),
            id: v.get("id").and_then(Value::as_u64),
        }),
        Some("overloaded") => Ok(Response::Overloaded {
            queue_cap: v.get("queue_cap").and_then(Value::as_u64).unwrap_or(0),
        }),
        other => Err(format!("unknown response kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_round_trips() {
        let req = SimulateReq {
            guest: "ring:24".into(),
            host: "torus:3x3".into(),
            steps: 3,
            seed: 7,
            deadline_ms: Some(5000),
            id: Some(41),
        };
        let line = simulate_request_line(&req);
        assert_eq!(parse_request(&line).unwrap(), Request::Simulate(req));
    }

    #[test]
    fn analyze_and_metrics_round_trip() {
        let trace = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        let line = analyze_request_line(&trace, Some(9));
        assert_eq!(parse_request(&line).unwrap(), Request::Analyze { trace, id: Some(9) });
        let line = metrics_request_line(None);
        assert_eq!(parse_request(&line).unwrap(), Request::Metrics { id: None });
    }

    #[test]
    fn version_gate_and_errors_are_descriptive() {
        assert!(parse_request("{}").unwrap_err().contains("proto"));
        assert!(parse_request("{\"proto\":\"unet-serve/0\",\"kind\":\"metrics\"}")
            .unwrap_err()
            .contains("unsupported protocol"));
        let nokind = format!("{{\"proto\":{:?}}}", PROTOCOL);
        assert!(parse_request(&nokind).unwrap_err().contains("kind"));
        let badkind = format!("{{\"proto\":{:?},\"kind\":\"frobnicate\"}}", PROTOCOL);
        assert!(parse_request(&badkind).unwrap_err().contains("frobnicate"));
        let nosteps = format!(
            "{{\"proto\":{:?},\"kind\":\"simulate\",\"guest\":\"ring:4\",\"host\":\"ring:4\"}}",
            PROTOCOL
        );
        assert!(parse_request(&nosteps).unwrap_err().contains("steps"));
    }

    #[test]
    fn response_lines_classify() {
        let ok = result_line("simulate", Some(3), vec![("slowdown".into(), Value::Float(4.5))]);
        match parse_response(&ok).unwrap() {
            Response::Result(v) => {
                assert_eq!(v.get("req").and_then(Value::as_str), Some("simulate"));
                assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
                assert_eq!(v.get("slowdown").and_then(Value::as_f64), Some(4.5));
            }
            other => panic!("expected result, got {other:?}"),
        }
        let err = error_line("bad-spec", "unknown graph family \"blah\"", None);
        match parse_response(&err).unwrap() {
            Response::Error { code, message, id } => {
                assert_eq!(code, "bad-spec");
                assert!(message.contains("blah"));
                assert_eq!(id, None);
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(
            parse_response(&overloaded_line(8)).unwrap(),
            Response::Overloaded { queue_cap: 8 }
        );
    }
}
