//! Closed-form bound predictions for the size/slowdown trade-off.
//!
//! * **Load bound** — any simulation of `n` guests on `m < n` hosts has
//!   slowdown `≥ n/m` (each host step advances at most one guest
//!   configuration per processor).
//! * **Upper bound** (Theorem 2.1 + butterfly corollary) — slowdown
//!   `O((n/m)·log m)` for `m ≤ n`.
//! * **Lower bound** (Theorem 3.1) — `m·s = Ω(n·log m)`, i.e.
//!   `s = Ω((n/m)·log m)`; equivalently inefficiency `k = Ω(log m)`.
//! * **Upper trade-off for `m ≥ n`** (\[14\], quoted in Section 1) — a host of
//!   size `n·ℓ` achieves `s·log ℓ = O(log n)`.

/// The trivial load-induced slowdown `max(1, n/m)`.
pub fn load_bound(n: usize, m: usize) -> f64 {
    (n as f64 / m as f64).max(1.0)
}

/// Theorem 2.1 upper bound shape for a butterfly host: `(n/m)·log₂ m`
/// (asymptotic, constant 1 — compare shapes, not absolutes).
pub fn upper_bound_butterfly(n: usize, m: usize) -> f64 {
    load_bound(n, m) * (m as f64).log2().max(1.0)
}

/// Theorem 3.1 lower bound shape: `s ≥ α·(n/m)·log₂ m` with the constant
/// left symbolic (`alpha`); `lower_bound_shape(n, m, 1.0)` is the shape used
/// in plots. For `m ≥ n` the same formula reads `s ≥ α·n·log₂ m / m`.
pub fn lower_bound_shape(n: usize, m: usize, alpha: f64) -> f64 {
    alpha * n as f64 * (m as f64).log2() / m as f64
}

/// The inefficiency form of Theorem 3.1: `k = s·m/n = Ω(log m)`.
pub fn lower_bound_inefficiency(m: usize, alpha: f64) -> f64 {
    alpha * (m as f64).log2()
}

/// The `m ≥ n` upper trade-off of \[14\]: with host size `m = n·ℓ`,
/// `s = O(log n / log ℓ)`. Returns the predicted slowdown shape.
pub fn upper_tradeoff_large_host(n: usize, m: usize) -> f64 {
    assert!(m >= n && n >= 2);
    let ell = (m as f64 / n as f64).max(2.0);
    (n as f64).log2() / ell.log2()
}

/// Size needed for constant slowdown by the lower bound: `m = Ω(n·log n)`.
pub fn min_size_for_constant_slowdown(n: usize, alpha: f64) -> f64 {
    alpha * n as f64 * (n as f64).log2()
}

/// Whether a measured `(m, s)` point is consistent with the lower-bound
/// trade-off `m·s ≥ alpha·n·log m` (measured points must satisfy this for
/// any correct simulation — a violation would falsify the implementation,
/// not the theorem).
pub fn consistent_with_lower_bound(n: usize, m: usize, s: f64, alpha: f64) -> bool {
    m as f64 * s >= alpha * n as f64 * (m as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_bound_basics() {
        assert_eq!(load_bound(100, 10), 10.0);
        assert_eq!(load_bound(10, 100), 1.0);
    }

    #[test]
    fn upper_bound_exceeds_load() {
        for m in [4usize, 16, 64, 256] {
            assert!(upper_bound_butterfly(1024, m) >= load_bound(1024, m));
        }
    }

    #[test]
    fn bounds_sandwich() {
        // With α ≤ 1, the lower-bound shape never exceeds the upper shape.
        for m in [8usize, 64, 512] {
            let lo = lower_bound_shape(4096, m, 0.5);
            let hi = upper_bound_butterfly(4096, m);
            assert!(lo <= hi, "m = {m}: {lo} > {hi}");
        }
    }

    #[test]
    fn inefficiency_is_log_m() {
        assert_eq!(lower_bound_inefficiency(1024, 1.0), 10.0);
    }

    #[test]
    fn tradeoff_large_host_shrinks_with_ell() {
        let n = 1024;
        let s1 = upper_tradeoff_large_host(n, 2 * n);
        let s2 = upper_tradeoff_large_host(n, 32 * n);
        assert!(s2 < s1);
        // ℓ = n ⇒ constant slowdown 1.
        assert_eq!(upper_tradeoff_large_host(n, n * n), 1.0);
    }

    #[test]
    fn consistency_check() {
        // A slowdown equal to the upper bound is consistent with the lower
        // bound at α = 1.
        let n = 4096;
        let m = 64;
        let s = upper_bound_butterfly(n, m);
        assert!(consistent_with_lower_bound(n, m, s, 1.0));
        // An impossible slowdown (below load) is not.
        assert!(!consistent_with_lower_bound(n, m, 1.0, 1.0));
    }

    #[test]
    fn constant_slowdown_needs_nlogn() {
        let need = min_size_for_constant_slowdown(1 << 16, 1.0);
        assert_eq!(need, 65536.0 * 16.0);
    }
}
