//! E15 — instrumentation overhead of the routing engine.
//!
//! The zero-cost claim, measured: routing with `NoopRecorder` must cost the
//! same as routing without instrumentation, and the live `InMemoryRecorder`
//! shows what full recording costs on the same problem.
//!
//! The subtlety is that there *is* no uninstrumented routing loop — the
//! library's `route()` is defined as `route_recorded(.., &mut NoopRecorder)`,
//! so "plain" and "noop" are the same source. Timing the library's `route()`
//! against this crate's own `route_recorded::<NoopRecorder>` instantiation
//! compares two machine-code copies of identical source, and code placement
//! alone (ASLR, alignment) makes that gap swing ±5% from one process to the
//! next. The gate therefore pins both sides to the single monomorphization
//! this crate produces: `route_uninstrumented` mirrors the library's
//! `route()` definition exactly, so the comparison isolates the recorder
//! plumbing (constructing and threading `&mut NoopRecorder`) while holding
//! code placement fixed. The cross-crate numbers stay visible in the
//! criterion rows below for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use unet_obs::{InMemoryRecorder, NoopRecorder};
use unet_routing::packet::{
    make_packets, route, route_recorded, Discipline, Outcome, Packet, ShortestPath,
};
use unet_topology::generators::torus;
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

fn problem() -> (Graph, Vec<Packet>) {
    let g = torus(16, 16);
    let n = g.n() as u32;
    let mut rng = seeded_rng(0xE15);
    let pairs: Vec<(u32, u32)> =
        (0..2 * n).map(|i| ((i * 37 + 5) % n, (i * 101 + 13) % n)).collect();
    let packets = make_packets(&g, &pairs, &ShortestPath, &mut rng).unwrap();
    (g, packets)
}

/// Local mirror of the library's `route()` — same body, but compiled in
/// this crate so it shares the bench's `route_recorded::<NoopRecorder>`
/// monomorphization instead of linking a second copy of identical code.
fn route_uninstrumented(
    g: &Graph,
    packets: &[Packet],
    discipline: Discipline,
    max_steps: u32,
) -> Option<Outcome> {
    route_recorded(g, packets, discipline, max_steps, &mut NoopRecorder)
}

/// One timed run of `f`, in nanoseconds.
fn time_ns(mut f: impl FnMut()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos()
}

fn overhead_report() {
    // NoopRecorder must stay a ZST: a recorder that carries state would
    // force real work into the monomorphized hot loop.
    assert_eq!(std::mem::size_of::<NoopRecorder>(), 0, "NoopRecorder must be a ZST");
    let (g, packets) = problem();
    // Warm up caches and page in both code paths.
    for _ in 0..3 {
        route_uninstrumented(&g, &packets, Discipline::FarthestFirst, u32::MAX).unwrap();
        route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut NoopRecorder)
            .unwrap();
    }
    // Each block times the two sides in ABBA order (plain, noop, noop,
    // plain) and compares the per-block *sums*: back-to-back runs inside a
    // block make the ratio immune to frequency drift across blocks, and
    // the mirrored order cancels the position penalty the second call in a
    // pair pays (allocator and cache state left by the first). The median
    // over blocks then shrugs off preemption spikes that hit a single one.
    let blocks = 49;
    let mut plain_ns = Vec::with_capacity(2 * blocks);
    let mut noop_ns = Vec::with_capacity(2 * blocks);
    let mut ratios = Vec::with_capacity(blocks);
    let plain_run = || {
        time_ns(|| drop(route_uninstrumented(&g, &packets, Discipline::FarthestFirst, u32::MAX)))
    };
    let noop_run = || {
        time_ns(|| {
            drop(route_recorded(
                &g,
                &packets,
                Discipline::FarthestFirst,
                u32::MAX,
                &mut NoopRecorder,
            ));
        })
    };
    for _ in 0..blocks {
        let (p1, n1, n2, p2) = (plain_run(), noop_run(), noop_run(), plain_run());
        plain_ns.extend([p1, p2]);
        noop_ns.extend([n1, n2]);
        ratios.push((n1 + n2) as f64 / (p1 + p2) as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let min = |v: &[u128]| *v.iter().min().expect("blocks > 0");
    let (plain, noop) = (min(&plain_ns), min(&noop_ns));
    let live = (0..blocks)
        .map(|_| {
            time_ns(|| {
                let mut rec = InMemoryRecorder::new();
                drop(route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut rec));
            })
        })
        .min()
        .expect("blocks > 0");
    println!("\n=== E15: recorder overhead on route(), 512 packets on torus 16x16 ===");
    println!("route() plain:                 {:>10} ns (min over {blocks} ABBA blocks)", plain);
    println!(
        "route_recorded(Noop):          {:>10} ns  ({overhead:+.2}% median block ratio)",
        noop
    );
    println!(
        "route_recorded(InMemory):      {:>10} ns  ({:+.2}% vs plain)",
        live,
        (live as f64 - plain as f64) / plain as f64 * 100.0
    );
    assert!(overhead < 2.0, "NoopRecorder must be free: measured {overhead:.2}% overhead");
    println!("zero-cost check PASSED: noop overhead {overhead:.2}% < 2%");
}

fn bench(c: &mut Criterion) {
    overhead_report();
    let (g, packets) = problem();
    let mut group = c.benchmark_group("e15_obs_overhead");
    group.bench_function("route_plain", |b| {
        b.iter(|| route(&g, &packets, Discipline::FarthestFirst, u32::MAX).unwrap())
    });
    group.bench_function("route_noop_recorder", |b| {
        b.iter(|| {
            route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut NoopRecorder)
                .unwrap()
        })
    });
    group.bench_function("route_inmemory_recorder", |b| {
        b.iter(|| {
            let mut rec = InMemoryRecorder::new();
            route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut rec).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
