//! E12 — ablations over the design choices DESIGN.md calls out, plus the
//! embeddings-vs-dynamics separation.
//!
//! 1. **Queue discipline**: farthest-first vs FIFO in the routing engine.
//! 2. **Embedding choice**: block vs random vs locality tiles for a mesh
//!    guest (dilation/congestion and the resulting slowdown).
//! 3. **Path selection**: greedy vs Valiant on the butterfly inside the full
//!    simulation (not just raw routing).
//! 4. **Protocol pruning**: how much of each simulator's work is essential.
//! 5. **Embeddings vs dynamics**: the [13]/[14] size separation as a table.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::{rng, standard_guest};
use unet_core::prelude::*;
use unet_core::routers::Router;
use unet_lowerbound::embedding_bound::embedding_vs_dynamic;
use unet_pebble::optimize::prune;
use unet_routing::packet::{make_packets, route, Discipline, ShortestPath};
use unet_routing::problem::random_h_h;
use unet_topology::generators::{butterfly, torus};

fn builder_run(
    comp: &GuestComputation,
    host: &unet_topology::Graph,
    embedding: Embedding,
    router: &dyn Router,
    steps: u32,
    seed: u64,
) -> SimulationRun {
    Simulation::builder()
        .guest(comp)
        .host(host)
        .embedding(embedding)
        .router(router)
        .steps(steps)
        .seed(seed)
        .run()
        .expect("ablation configuration is valid")
}

fn discipline_ablation() {
    println!("\n--- E12a: queue discipline (torus 8×8, random h–h) ---");
    let g = torus(8, 8);
    let mut r = rng();
    println!("{:>3} {:>16} {:>10}", "h", "farthest-first", "fifo");
    for h in [1usize, 4, 8] {
        let prob = random_h_h(64, h, &mut r);
        let pk = make_packets(&g, &prob.pairs, &ShortestPath, &mut r).unwrap();
        let lim: u32 = pk.iter().map(|p| p.path.len() as u32 + 1).sum::<u32>() + 64;
        let ff = route(&g, &pk, Discipline::FarthestFirst, lim).unwrap().steps;
        let ffo = route(&g, &pk, Discipline::Fifo, lim).unwrap().steps;
        println!("{h:>3} {ff:>16} {ffo:>10}");
    }
}

fn embedding_ablation() {
    println!("\n--- E12b: embedding choice (torus(16,16) guest on torus(4,4) host) ---");
    let guest = torus(16, 16);
    let host = torus(4, 4);
    let comp = GuestComputation::random(guest.clone(), 0xE12);
    let router = presets::torus_xy(4, 4);
    println!("{:>8} {:>9} {:>11} {:>10}", "embed", "dilation", "congestion", "slowdown");
    let cases: Vec<(&str, Embedding)> = vec![
        ("tiles", Embedding::grid_tiles(16, 4)),
        ("block", Embedding::block(256, 16)),
        ("random", Embedding::random(256, 16, &mut rng())),
    ];
    for (name, e) in cases {
        let dil = e.dilation(&guest, &host);
        let cong = e.edge_congestion(&guest, &host);
        let run = builder_run(&comp, &host, e, &router, 2, 0xE12);
        verify_run(&comp, &host, &run, 2).expect("certifies");
        println!("{name:>8} {dil:>9} {cong:>11} {:>10.1}", run.slowdown());
    }
    println!("locality (dilation 1) is the whole game for mesh-like guests.");
}

fn router_ablation() {
    println!("\n--- E12c: greedy vs Valiant inside the full simulation (butterfly dim 4) ---");
    let (_guest, comp) = standard_guest(512, 0xE12C);
    let host = butterfly(4);
    for (name, s) in [
        ("greedy", {
            let router = presets::butterfly_greedy(4);
            let run = builder_run(&comp, &host, Embedding::block(512, 80), &router, 2, 0xE12C);
            verify_run(&comp, &host, &run, 2).expect("certifies");
            run.slowdown()
        }),
        ("valiant", {
            let router = presets::butterfly_valiant(4);
            let run = builder_run(&comp, &host, Embedding::block(512, 80), &router, 2, 0xE12C);
            verify_run(&comp, &host, &run, 2).expect("certifies");
            run.slowdown()
        }),
    ] {
        println!("{name:>8}: slowdown {s:.1}");
    }
    println!("greedy wins on random traffic (half the stretch); Valiant's insurance");
    println!("only pays on adversarial patterns (see E6's bit-reversal test).");
}

fn prune_ablation() {
    println!("\n--- E12d: essential work after dead-op pruning ---");
    let (guest, comp) = standard_guest(128, 0xE12D);
    let host = torus(3, 3);
    let router = presets::torus_xy(3, 3);
    let run = builder_run(&comp, &host, Embedding::block(128, 9), &router, 2, 0xE12D);
    let (_, st) = prune(&guest, &run.protocol);
    println!(
        "embedding simulator: {} → {} busy ops ({:.0}% essential), {} → {} steps",
        st.busy_before,
        st.busy_after,
        100.0 * st.busy_after as f64 / st.busy_before as f64,
        st.steps_before,
        st.steps_after
    );
    let flood = unet_core::flooding::flooding_protocol(&comp, 9, 2);
    let (_, stf) = prune(&guest, &flood);
    println!(
        "flooding simulator:  {} → {} busy ops ({:.0}% essential)",
        stf.busy_before,
        stf.busy_after,
        100.0 * stf.busy_after as f64 / stf.busy_before as f64,
    );
}

fn separation_table() {
    println!("\n--- E12e: embedding-universal vs dynamic-universal size ([13] vs [14]) ---");
    println!("{:>10} {:>16} {:>15} {:>8}", "n", "log2 m (embed)", "log2 m (dyn)", "ratio");
    for row in embedding_vs_dynamic(&[1 << 10, 1 << 16, 1 << 24, 1 << 32], 4, 4) {
        println!(
            "{:>10} {:>16.1} {:>15.1} {:>8.2}",
            row.n, row.log2_m_embedding, row.log2_m_dynamic, row.exponent_ratio
        );
    }
    println!("constant-slowdown universality by embeddings needs n^Ω(c) processors;");
    println!("dynamic simulation needs n^(1+ε) — the separation the paper highlights.");
}

fn bench(c: &mut Criterion) {
    discipline_ablation();
    embedding_ablation();
    router_ablation();
    prune_ablation();
    separation_table();
    let mut group = c.benchmark_group("e12_ablations");
    group.sample_size(10);
    let (guest, comp) = standard_guest(128, 1);
    let host = torus(3, 3);
    let router = presets::torus_xy(3, 3);
    let run = builder_run(&comp, &host, Embedding::block(128, 9), &router, 2, 1);
    group.bench_function("prune", |b| b.iter(|| prune(&guest, &run.protocol).1));
    group.bench_function("dilation", |b| {
        let g = torus(16, 16);
        let h = torus(4, 4);
        let e = Embedding::grid_tiles(16, 4);
        b.iter(|| e.dilation(&g, &h))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
