//! The sharding front-end behind `unet shard`: fingerprint-affine routing
//! across a pool of backend `unet serve` shards.
//!
//! The paper routes arbitrary guest workloads onto a fixed host with
//! bounded slowdown; this module mirrors that one level up, routing
//! arbitrary request streams across a fixed pool of backend processes with
//! bounded tail latency. The design constraints, front to back:
//!
//! * **Fingerprint affinity** — every `simulate` request (and every member
//!   of a `batch`) is keyed by the same
//!   [`workload_fingerprint`] the backends
//!   use as their [`SharedPlanCache`](unet_core::SharedPlanCache) key, and
//!   the [`Ring`] consistent-hashes it to a home shard. Repeats of a
//!   workload always land on the shard that already compiled its route
//!   plan, so cache hit ratios and single-flight coalescing survive the
//!   scale-out unchanged.
//! * **Batch splitting** — a `batch` request is split by fingerprint into
//!   one sub-batch per home shard, the sub-batches are forwarded
//!   concurrently, and the positionally aligned results are re-merged into
//!   one response in the original item order.
//! * **Health and failover** — a prober thread issues periodic `metrics`
//!   probes; [`ShardConfig::eject_after`] consecutive failures eject a
//!   backend, and ejected backends are re-probed under exponential backoff
//!   until they answer again. A request whose backend dies mid-flight (or
//!   answers `overloaded`) retries on the next shard in ring order, so a
//!   dead shard's keys spill onto its ring successor and nowhere else.
//! * **Aggregated metrics** — a `metrics` request fans out to every healthy
//!   backend and merges the expositions under a `shard` label (the
//!   router's own counters appear as `shard="router"`).
//!
//! # Operating a sharded deployment
//!
//! The runbook below is executable: start two shards and a router, route
//! traffic through it, drain one shard mid-deployment, and watch the ring
//! fail over to the survivor with zero lost requests.
//!
//! ```
//! use unet_serve::{Server, ServeConfig};
//! use unet_serve::router::{Router, ShardConfig};
//! use unet_serve::client::Client;
//! use unet_serve::protocol::SimulateReq;
//!
//! // 1. Start the backend shards (in production: `unet serve`, or let
//! //    `unet shard --shards N` spawn and supervise them).
//! let shard_a = Server::start(ServeConfig::default()).expect("bind shard a");
//! let shard_b = Server::start(ServeConfig::default()).expect("bind shard b");
//!
//! // 2. Start the router in front of them (`unet shard --backend ...`).
//! let router = Router::start(ShardConfig {
//!     backends: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
//!     ..ShardConfig::default()
//! })
//! .expect("bind router");
//!
//! // 3. Clients talk to the router exactly as they would to one server.
//! let mut client = Client::connect(&router.addr().to_string()).expect("connect");
//! let spec = SimulateReq {
//!     guest: "ring:12".into(), host: "torus:2x2".into(),
//!     steps: 2, seed: 7, deadline_ms: None, id: None,
//! };
//! let before = client.simulate(&spec).expect("routed to the home shard");
//!
//! // 4. Drain one shard. Its in-flight requests are answered by the
//! //    drain; everything after fails over to the ring successor.
//! shard_a.drain();
//! let after = client.simulate(&spec).expect("absorbed by the surviving shard");
//! assert_eq!(before.host_steps, after.host_steps, "failover preserves results");
//!
//! // 5. Observe the deployment: the aggregated exposition labels every
//! //    series with the shard that produced it.
//! let exposition = client.metrics().expect("aggregated metrics");
//! assert!(exposition.contains("shard=\""), "series carry shard labels");
//!
//! drop(client);
//! router.drain();
//! shard_b.drain();
//! ```

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::protocol::{
    analyze_request_line, batch_item_value, batch_request_line, error_line, gen_trace_id,
    metrics_request_line, overloaded_line, parse_request, parse_response, result_line,
    simulate_request_line, ProtoVersion, Request, Response, SimulateReq,
};
use crate::queue::BoundedQueue;
use crate::ring::Ring;
use crate::server::{read_line_patient, retry_after_hint, LineRead, IDLE_POLL};
use unet_core::routers::Router as _;
use unet_core::spec::parse_graph;
use unet_core::{workload_fingerprint, Embedding};
use unet_obs::json::Value;
use unet_obs::tailsample::DEFAULT_HEAD_PERMILLE;
use unet_obs::trace::{export_full, RequestRecord, RunMeta, SampleReason, StageSpan};
use unet_obs::{InMemoryRecorder, MetricsRegistry, Recorder, TailSampler};
use unet_topology::par::default_threads;

/// Router configuration (all fields except `backends` have serviceable
/// defaults; `backends` must name at least one `unet serve` address).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address of the router; port 0 picks a free port (the default).
    pub addr: String,
    /// Connection workers. Each worker carries one client request at a
    /// time end-to-end (including the forwarded round trip), so this
    /// bounds the router's concurrency — size it at or above the expected
    /// number of concurrent closed-loop clients.
    pub workers: usize,
    /// Admission queue bound; 0 rejects every connection (default 64).
    pub queue_cap: usize,
    /// Backend shard addresses, in ring order. Position in this vector is
    /// the shard's identity (the `shard` metrics label and ring index).
    pub backends: Vec<String>,
    /// Concurrent connections the router opens per backend (default 1).
    /// A forward beyond this bound waits for a slot instead of dialing:
    /// a backend `unet serve` dedicates one connection worker to each
    /// accepted connection for its lifetime, so dialing more connections
    /// than the backend has workers would park requests on sockets no
    /// worker will ever read — a deadlock, not a slowdown. Raise this to
    /// the backend's `--workers` for per-shard connection concurrency;
    /// `batch` requests already exploit backend executor parallelism
    /// over a single connection.
    pub backend_conns: usize,
    /// How often the prober issues `metrics` probes (default 100 ms).
    pub probe_interval_ms: u64,
    /// Consecutive failures (probes or forwards) before a backend is
    /// ejected from rotation (default 3).
    pub eject_after: u32,
    /// Cap on the exponential reinstatement backoff (default 5 000 ms;
    /// the backoff starts at 100 ms and doubles per failed re-probe).
    pub max_backoff_ms: u64,
    /// Head-sampling rate for the router's per-request stage records, in
    /// permille (default [`DEFAULT_HEAD_PERMILLE`]). The same trace id
    /// hashes to the same coin on router and backends, so a head-sampled
    /// request is kept on every tier.
    pub head_sample_permille: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: default_threads(),
            queue_cap: 64,
            backends: Vec::new(),
            backend_conns: 1,
            probe_interval_ms: 100,
            eject_after: 3,
            max_backoff_ms: 5_000,
            head_sample_permille: DEFAULT_HEAD_PERMILLE,
        }
    }
}

/// Counter snapshot of a running (or drained) router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests forwarded to a backend (first attempts, not retries).
    pub forwarded: u64,
    /// Requests answered to clients (any response kind except the
    /// router's own `overloaded` admission rejection).
    pub completed: u64,
    /// Forwards that had to retry on a ring successor (backend dead or
    /// overloaded mid-request).
    pub failovers: u64,
    /// `overloaded` rejections from one shard absorbed by a healthier
    /// ring successor.
    pub overloads_absorbed: u64,
    /// Backends ejected after consecutive failures.
    pub ejected: u64,
    /// Ejected backends reinstated after a successful re-probe.
    pub reinstated: u64,
    /// Configured backend count.
    pub backends: u64,
    /// Backends currently in rotation.
    pub healthy: u64,
}

/// What a router drain hands back.
#[derive(Debug, Clone)]
pub struct RouterDrainReport {
    /// Final counter snapshot.
    pub stats: RouterStats,
    /// Final Prometheus exposition of the router's own registry (backend
    /// registries are live-aggregated by the `metrics` request kind, not
    /// replayed here).
    pub exposition: String,
    /// JSONL trace of the router recorder, including the tail-sampled
    /// per-request stage records (`forward`, `retry`, `failover`, …) —
    /// merge it with backend drain traces in `unet trace-requests` to see
    /// one trace id's full waterfall across the tier.
    pub trace: String,
}

/// Reinstatement backoff starts here and doubles per failed re-probe.
const BACKOFF_BASE: Duration = Duration::from_millis(100);

/// Reinstatement backoff state of one ejected backend.
struct Backoff {
    /// Doublings applied so far.
    exp: u32,
    /// Earliest instant the prober may re-probe.
    until: Instant,
}

/// Connection slots of one backend. `idle + in_use` never exceeds the
/// configured `backend_conns`, so the router can never open more
/// connections than the backend has workers to read them (see
/// [`ShardConfig::backend_conns`]).
struct ConnPool {
    /// Open connections checked in between forwards.
    idle: Vec<Client>,
    /// Slots currently carrying a forward (connection held or dialing).
    in_use: usize,
}

/// One backend shard: its address, its bounded connection-slot pool, and
/// its health state.
struct Backend {
    addr: String,
    conns: Mutex<ConnPool>,
    /// Signaled whenever a slot is released.
    slot_freed: Condvar,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    backoff: Mutex<Backoff>,
}

struct RouterShared {
    backends: Vec<Backend>,
    ring: Ring,
    recorder: Mutex<InMemoryRecorder>,
    queue: BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    depth_seq: AtomicU64,
    workers: usize,
    conn_limit: usize,
    eject_after: u32,
    max_backoff: Duration,
    /// Tail-sampled per-request stage records, drained into the trace.
    sampler: Mutex<TailSampler>,
    /// Slowest request so far; its trace id rides the latency histogram's
    /// `max` gauge as an exemplar.
    latency_exemplar: Mutex<Option<(String, f64)>>,
}

/// A running shard router; construct with [`Router::start`], stop with
/// [`Router::drain`].
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind, spawn the acceptor, connection workers, and health prober,
    /// and return immediately. Fails if `cfg.backends` is empty.
    pub fn start(cfg: ShardConfig) -> std::io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a shard router needs at least one --backend address",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let now = Instant::now();
        let backends: Vec<Backend> = cfg
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                conns: Mutex::new(ConnPool { idle: Vec::new(), in_use: 0 }),
                slot_freed: Condvar::new(),
                healthy: AtomicBool::new(true),
                consecutive_failures: AtomicU32::new(0),
                backoff: Mutex::new(Backoff { exp: 0, until: now }),
            })
            .collect();
        let shared = Arc::new(RouterShared {
            ring: Ring::new(backends.len()),
            backends,
            recorder: Mutex::new(InMemoryRecorder::new()),
            queue: BoundedQueue::new(cfg.queue_cap),
            shutdown: AtomicBool::new(false),
            depth_seq: AtomicU64::new(0),
            workers,
            conn_limit: cfg.backend_conns.max(1),
            eject_after: cfg.eject_after.max(1),
            max_backoff: Duration::from_millis(cfg.max_backoff_ms.max(1)),
            sampler: Mutex::new(TailSampler::new(cfg.head_sample_permille)),
            latency_exemplar: Mutex::new(None),
        });
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.gauge("shard.workers", workers as f64);
            rec.gauge("shard.queue.cap", cfg.queue_cap as f64);
            rec.gauge("shard.backends", shared.backends.len() as f64);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        serve_router_connection(&shared, stream);
                    }
                })
            })
            .collect();
        let prober = {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(cfg.probe_interval_ms.max(1));
            std::thread::spawn(move || probe_loop(&shared, interval))
        };
        Ok(Router {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            prober: Some(prober),
        })
    }

    /// The bound address (resolve port 0 through this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> RouterStats {
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        router_stats_of(&rec, &self.shared)
    }

    /// Graceful drain: stop accepting, answer everything admitted or in
    /// flight, join all threads, and return the final counters. The
    /// backends are left running — draining them is their owner's call
    /// (the `unet shard` CLI drains the shards it spawned itself).
    pub fn drain(mut self) -> RouterDrainReport {
        self.stop_threads();
        let (requests, dropped) = {
            let mut sampler = self.shared.sampler.lock().expect("sampler poisoned");
            let dropped = sampler.dropped();
            (sampler.drain(), dropped)
        };
        let mut rec = self.shared.recorder.lock().expect("recorder poisoned");
        rec.counter("shard.trace.requests_sampled", requests.len() as u64);
        rec.counter("shard.trace.requests_dropped", dropped);
        let meta = RunMeta {
            command: "shard".to_string(),
            guest: "-".to_string(),
            host: "-".to_string(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        RouterDrainReport {
            stats: router_stats_of(&rec, &self.shared),
            // Labeled `shard="router"` like the live aggregation, so drain
            // output concatenates cleanly with backend expositions in one
            // scrape namespace.
            exposition: merge_expositions(&[(
                "router".to_string(),
                router_exposition_of(&rec, &self.shared),
            )]),
            trace: export_full(&rec, &meta, &[], &requests, None),
        }
    }

    /// Join order matters: acceptor first (it feeds the queue), workers
    /// next (they answer in-flight requests), prober last.
    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // Not drained: still stop the threads so tests that merely start a
        // router cannot leak a spinning acceptor or prober.
        self.shared.queue.close();
        self.stop_threads();
    }
}

fn router_stats_of(rec: &InMemoryRecorder, shared: &RouterShared) -> RouterStats {
    RouterStats {
        forwarded: rec.counter_value("shard.requests.forwarded"),
        completed: rec.counter_value("shard.requests.completed"),
        failovers: rec.counter_value("shard.failovers"),
        overloads_absorbed: rec.counter_value("shard.overloads.absorbed"),
        ejected: rec.counter_value("shard.backends.ejected"),
        reinstated: rec.counter_value("shard.backends.reinstated"),
        backends: shared.backends.len() as u64,
        healthy: shared.backends.iter().filter(|b| b.healthy.load(Ordering::SeqCst)).count() as u64,
    }
}

/// The router's own registry, unlabeled — `handle_metrics` and
/// [`Router::drain`] both label it `shard="router"` when they emit it.
/// The per-stage `shard.stage.*_us` histograms recorded by every handled
/// request surface here as the router's stage breakdown.
fn router_exposition_of(rec: &InMemoryRecorder, shared: &RouterShared) -> String {
    let mut reg = MetricsRegistry::from_recorder(rec);
    reg.set_gauge(
        "shard.backends.healthy",
        shared.backends.iter().filter(|b| b.healthy.load(Ordering::SeqCst)).count() as f64,
    );
    let exemplar = shared.latency_exemplar.lock().expect("exemplar poisoned").clone();
    if let Some((trace_id, ms)) = exemplar {
        reg.set_exemplar("serve.request.latency_ms.max", &trace_id, ms);
    }
    reg.expose()
}

/// The recorder histogram a stage span lands in (recorder names must be
/// `'static`, so the fixed stage set maps to a fixed metric set).
fn stage_metric(stage: &'static str) -> &'static str {
    match stage {
        "accept" => "shard.stage.accept_us",
        "forward" => "shard.stage.forward_us",
        "retry" => "shard.stage.retry_us",
        "failover" => "shard.stage.failover_us",
        "serialize" => "shard.stage.serialize_us",
        _ => "shard.stage.other_us",
    }
}

fn accept_loop(listener: &TcpListener, shared: &RouterShared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                // Same small-line ping-pong as the backend server: Nagle
                // plus delayed ACK would stall every follow-up request.
                let _ = stream.set_nodelay(true);
                admit(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    shared.queue.close();
}

fn admit(shared: &RouterShared, stream: TcpStream) {
    match shared.queue.try_push(stream) {
        Ok(depth) => {
            let seq = shared.depth_seq.fetch_add(1, Ordering::Relaxed);
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.counter("shard.conns.admitted", 1);
            rec.sample("shard.queue.depth", seq, 0, depth as u64);
        }
        Err(mut stream) => {
            let retry_after = {
                let mut rec = shared.recorder.lock().expect("recorder poisoned");
                rec.counter("shard.conns.rejected", 1);
                retry_after_hint(&rec, shared.queue.cap(), shared.workers)
            };
            let _ = writeln!(stream, "{}", overloaded_line(shared.queue.cap(), retry_after));
            let _ = stream.flush();
        }
    }
}

fn serve_router_connection(shared: &RouterShared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_patient(&mut reader, &mut line, &shared.shutdown) {
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let started = Instant::now();
                    let (response, mut info) = route_request(shared, trimmed);
                    let write_started = Instant::now();
                    let write_ok =
                        writeln!(writer, "{response}").and_then(|_| writer.flush()).is_ok();
                    info.stages.push(("serialize", write_started.elapsed().as_secs_f64() * 1e3));
                    let e2e_ms = started.elapsed().as_secs_f64() * 1e3;
                    {
                        let mut rec = shared.recorder.lock().expect("recorder poisoned");
                        rec.counter("shard.requests.completed", 1);
                        // Same histogram name as the server so the shared
                        // `retry_after_hint` shape applies at the router too.
                        rec.histogram("serve.request.latency_ms", e2e_ms as u64);
                        for &(stage, ms) in &info.stages {
                            rec.histogram(stage_metric(stage), (ms * 1e3) as u64);
                        }
                    }
                    {
                        let mut ex = shared.latency_exemplar.lock().expect("exemplar poisoned");
                        if ex.as_ref().is_none_or(|(_, ms)| e2e_ms >= *ms) {
                            *ex = Some((info.trace_id.clone(), e2e_ms));
                        }
                    }
                    let record = RequestRecord {
                        trace_id: info.trace_id,
                        kind: info.kind.to_string(),
                        ok: info.ok,
                        e2e_ms,
                        sampled: SampleReason::Head,
                        stages: info
                            .stages
                            .into_iter()
                            .map(|(stage, ms)| StageSpan { stage: stage.to_string(), ms })
                            .collect(),
                    };
                    shared.sampler.lock().expect("sampler poisoned").offer(record);
                    if !write_ok {
                        return;
                    }
                }
                line.clear();
            }
            LineRead::Closed => return,
        }
    }
}

/// The [`SharedPlanCache`](unet_core::SharedPlanCache) key this spec's
/// simulation will use, derived without running anything — the identical
/// `(guest, host, embedding, router, seed)` fingerprint the server's
/// `build_job` computes, so the front-end router and the backend batching
/// executors agree on workload identity byte for byte.
pub fn simulate_fingerprint(req: &SimulateReq) -> Result<u64, String> {
    let guest = parse_graph(&req.guest).map_err(|e| format!("guest: {e}"))?;
    let host = parse_graph(&req.host).map_err(|e| format!("host: {e}"))?;
    let embedding = Embedding::block(guest.n(), host.n());
    let router = unet_core::routers::presets::bfs();
    Ok(workload_fingerprint(&guest, &host, &embedding, router.name(), req.seed))
}

/// The home shard of a spec under `ring`, with unfingerprintable specs
/// (unknown graph family, zero nodes, …) pinned deterministically to the
/// ring's shard for key 0 — any backend will answer them with the same
/// typed `bad-spec` error, so placement only needs to be stable.
fn shard_of_spec(ring: &Ring, req: &SimulateReq) -> usize {
    match simulate_fingerprint(req) {
        Ok(fp) => ring.shard_of(fp),
        Err(_) => ring.shard_of(0),
    }
}

/// Outcome of one forward attempt to one backend.
enum ForwardOutcome {
    /// The backend answered (any kind except `overloaded`).
    Response(String),
    /// The backend rejected the connection with `overloaded`; the raw
    /// line is kept so it can pass through if every shard is saturated.
    Overloaded(String),
}

/// One round trip to backend `i`: acquire a connection slot (reusing an
/// idle connection, dialing if under [`ShardConfig::backend_conns`], or
/// waiting for a release), forward the line, and classify. An `overloaded`
/// answer closes the backend side, so the connection is dropped rather
/// than checked back in; a transport error likewise burns the connection.
fn try_forward(shared: &RouterShared, i: usize, line: &str) -> Result<ForwardOutcome, ()> {
    let backend = &shared.backends[i];
    let reused = {
        let mut pool = backend.conns.lock().expect("pool poisoned");
        loop {
            if let Some(c) = pool.idle.pop() {
                pool.in_use += 1;
                break Some(c);
            }
            if pool.in_use < shared.conn_limit {
                pool.in_use += 1;
                break None;
            }
            // Every slot is mid-forward; its holder always releases (the
            // backend answers, rejects, or the transport errors out).
            pool = backend.slot_freed.wait(pool).expect("pool poisoned");
        }
    };
    let outcome = match reused.map_or_else(|| Client::connect(&backend.addr).ok(), Some) {
        None => Err(()),
        Some(mut client) => match client.request_raw(line) {
            Ok(resp) if matches!(parse_response(&resp), Ok(Response::Overloaded { .. })) => {
                Ok((ForwardOutcome::Overloaded(resp), None))
            }
            Ok(resp) => Ok((ForwardOutcome::Response(resp), Some(client))),
            Err(_) => Err(()),
        },
    };
    let mut pool = backend.conns.lock().expect("pool poisoned");
    pool.in_use -= 1;
    let outcome = outcome.map(|(outcome, keep)| {
        pool.idle.extend(keep);
        outcome
    });
    drop(pool);
    backend.slot_freed.notify_one();
    outcome
}

/// Note a failed probe or forward; ejects the backend after
/// `eject_after` consecutive failures and arms the reinstatement backoff.
fn record_failure(shared: &RouterShared, i: usize) {
    let backend = &shared.backends[i];
    let failures = backend.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
    if failures >= shared.eject_after && backend.healthy.swap(false, Ordering::SeqCst) {
        let mut backoff = backend.backoff.lock().expect("backoff poisoned");
        let wait = BACKOFF_BASE
            .checked_mul(1u32 << backoff.exp.min(16))
            .unwrap_or(shared.max_backoff)
            .min(shared.max_backoff);
        backoff.until = Instant::now() + wait;
        backoff.exp = backoff.exp.saturating_add(1);
        drop(backoff);
        // A dead backend's pooled connections are dead too.
        backend.conns.lock().expect("pool poisoned").idle.clear();
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        rec.counter("shard.backends.ejected", 1);
    }
}

/// Note a successful probe or forward; resets the failure streak and
/// reinstates the backend if it was ejected (a live answer is better
/// evidence than any probe).
fn record_success(shared: &RouterShared, i: usize) {
    let backend = &shared.backends[i];
    backend.consecutive_failures.store(0, Ordering::SeqCst);
    if !backend.healthy.swap(true, Ordering::SeqCst) {
        backend.backoff.lock().expect("backoff poisoned").exp = 0;
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        rec.counter("shard.backends.reinstated", 1);
    }
}

/// Forward `line` along the failover order of `fingerprint` (ring
/// successor order; plain index order for unkeyed requests), skipping
/// ejected backends on the first pass and trying them anyway if nothing
/// healthy remains. Bounded: every backend is attempted at most once.
///
/// Attempt wall time lands in `spans`: the first attempt is the
/// `forward` span; later attempts are `retry` when the previous shard
/// shed the request (overload) and `failover` when it was unreachable.
fn forward_with_failover(
    shared: &RouterShared,
    fingerprint: Option<u64>,
    line: &str,
    ver: ProtoVersion,
    id: Option<u64>,
    spans: &mut Vec<(&'static str, f64)>,
) -> String {
    let order = match fingerprint {
        Some(fp) => shared.ring.successors(fp),
        None => (0..shared.backends.len()).collect(),
    };
    {
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        rec.counter("shard.requests.forwarded", 1);
    }
    let mut last_overloaded: Option<String> = None;
    let mut attempts = 0u64;
    let (mut forward_ms, mut retry_ms, mut failover_ms) = (0.0f64, 0.0f64, 0.0f64);
    let mut next_is_retry = false;
    let mut response: Option<String> = None;
    'order: for pass in 0..2 {
        for &i in &order {
            let healthy = shared.backends[i].healthy.load(Ordering::SeqCst);
            // Pass 0 trusts the health view; pass 1 is the last resort
            // when every shard is ejected — try them anyway rather than
            // failing a request on stale health data.
            if (pass == 0) != healthy {
                continue;
            }
            attempts += 1;
            let attempt_started = Instant::now();
            let outcome = try_forward(shared, i, line);
            let attempt_ms = attempt_started.elapsed().as_secs_f64() * 1e3;
            if attempts == 1 {
                forward_ms += attempt_ms;
            } else if next_is_retry {
                retry_ms += attempt_ms;
            } else {
                failover_ms += attempt_ms;
            }
            match outcome {
                Ok(ForwardOutcome::Response(resp)) => {
                    record_success(shared, i);
                    if attempts > 1 {
                        let mut rec = shared.recorder.lock().expect("recorder poisoned");
                        rec.counter("shard.failovers", 1);
                        if last_overloaded.is_some() {
                            rec.counter("shard.overloads.absorbed", 1);
                        }
                    }
                    response = Some(resp);
                    break 'order;
                }
                Ok(ForwardOutcome::Overloaded(resp)) => {
                    // Saturation is not sickness: an overloaded shard is
                    // alive and explicitly shedding, so it keeps its
                    // health but loses this request to a ring successor.
                    last_overloaded = Some(resp);
                    next_is_retry = true;
                }
                Err(()) => {
                    record_failure(shared, i);
                    next_is_retry = false;
                }
            }
        }
    }
    if forward_ms > 0.0 {
        spans.push(("forward", forward_ms));
    }
    if retry_ms > 0.0 {
        spans.push(("retry", retry_ms));
    }
    if failover_ms > 0.0 {
        spans.push(("failover", failover_ms));
    }
    if let Some(resp) = response {
        return resp;
    }
    if let Some(resp) = last_overloaded {
        // Every shard is saturated: pass the typed backpressure through
        // so the client's `retry_after_ms` loop takes over.
        return resp;
    }
    error_line(ver, "unavailable", "no backend shard answered (all ejected or unreachable)", id)
}

/// What [`route_request`] learned about one request, for the connection
/// loop's trace record and stage histograms.
struct RouteInfo {
    trace_id: String,
    kind: &'static str,
    ok: bool,
    stages: Vec<(&'static str, f64)>,
}

/// Dispatch one client line. Requests the router does not add value to
/// (`analyze`, malformed lines, unsupported protocol versions) are
/// forwarded verbatim so the backend produces the exact response a
/// single-server deployment would.
///
/// Trace ingress: a `/3` request that arrives without a trace context is
/// re-lined with a router-assigned `trace_id` so the backend records its
/// stage spans under the same id the router samples. `/1` and `/2` lines
/// are forwarded byte-for-byte (adding a `trace` field would break the
/// version echo), so the backend assigns its own id for those.
fn route_request(shared: &RouterShared, line: &str) -> (String, RouteInfo) {
    let parse_started = Instant::now();
    let parsed = parse_request(line);
    let accept_ms = parse_started.elapsed().as_secs_f64() * 1e3;
    let mut stages = vec![("accept", accept_ms)];
    let (response, trace_id, kind) = match parsed {
        Ok((ver, wire_trace, req)) => {
            let trace_id = wire_trace.clone().unwrap_or_else(gen_trace_id);
            let inject = ver == ProtoVersion::V3 && wire_trace.is_none();
            let (response, kind) = match req {
                Request::Metrics { id } => (handle_metrics(shared, ver, id), "metrics"),
                Request::Batch(batch) => {
                    (handle_batch(shared, ver, batch, &trace_id, &mut stages), "batch")
                }
                Request::Simulate(req) => {
                    let fp = simulate_fingerprint(&req).ok();
                    let fwd = if inject {
                        simulate_request_line(&req, Some(&trace_id))
                    } else {
                        line.to_string()
                    };
                    (
                        forward_with_failover(
                            shared,
                            fp.or(Some(0)),
                            &fwd,
                            ver,
                            req.id,
                            &mut stages,
                        ),
                        "simulate",
                    )
                }
                Request::Analyze { trace, id } => {
                    let fwd = if inject {
                        analyze_request_line(&trace, id, Some(&trace_id))
                    } else {
                        line.to_string()
                    };
                    (forward_with_failover(shared, None, &fwd, ver, id, &mut stages), "analyze")
                }
            };
            (response, trace_id, kind)
        }
        // The backends speak the identical protocol module: forwarding a
        // bad line returns the same typed `bad-request` /
        // `unsupported-protocol` error a single server would emit.
        Err(_) => {
            let response =
                forward_with_failover(shared, None, line, ProtoVersion::V3, None, &mut stages);
            (response, gen_trace_id(), "unparsed")
        }
    };
    let ok = matches!(parse_response(&response), Ok(Response::Result(_)));
    (response, RouteInfo { trace_id, kind, ok, stages })
}

/// Serve one `batch` by splitting it into per-home-shard sub-batches,
/// forwarding them concurrently, and re-merging the positionally aligned
/// results into the original item order. Sub-batches run in parallel, so
/// the batch's forward/retry/failover spans are the per-stage **max**
/// across sub-batches — the critical path, not the sum.
fn handle_batch(
    shared: &RouterShared,
    ver: ProtoVersion,
    batch: crate::protocol::BatchReq,
    trace_id: &str,
    stages: &mut Vec<(&'static str, f64)>,
) -> String {
    let mut slots: Vec<Option<Value>> = vec![None; batch.items.len()];
    // shard -> (original positions, specs), in deterministic shard order.
    let mut groups: BTreeMap<usize, (Vec<usize>, Vec<SimulateReq>)> = BTreeMap::new();
    for (idx, item) in batch.items.iter().enumerate() {
        match item {
            Err(msg) => {
                // Same positional error a single server emits for an
                // unparseable batch member.
                slots[idx] = Some(batch_item_value(Err(("bad-request".to_string(), msg.clone()))));
            }
            Ok(spec) => {
                let shard = shard_of_spec(&shared.ring, spec);
                let entry = groups.entry(shard).or_default();
                entry.0.push(idx);
                entry.1.push(spec.clone());
            }
        }
    }
    let deadline_ms = batch.deadline_ms;
    // (original item indices, raw sub-batch response, forward-side spans).
    type SubBatch = (Vec<usize>, String, Vec<(&'static str, f64)>);
    let forwarded: Vec<SubBatch> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_values()
            .map(|(idxs, specs)| {
                s.spawn(move |_| {
                    // Sub-batches always carry the router's trace_id so
                    // every backend's spans merge under one waterfall.
                    let sub_line = batch_request_line(&specs, deadline_ms, None, Some(trace_id));
                    let fp = simulate_fingerprint(&specs[0]).ok().or(Some(0));
                    let mut spans = Vec::new();
                    let resp = forward_with_failover(
                        shared,
                        fp,
                        &sub_line,
                        ProtoVersion::V3,
                        None,
                        &mut spans,
                    );
                    (idxs, resp, spans)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sub-batch forwarder panicked")).collect()
    })
    .expect("batch forward scope");
    for (_, _, spans) in &forwarded {
        for &(stage, ms) in spans {
            match stages.iter_mut().find(|(s, _)| *s == stage) {
                Some(slot) => slot.1 = slot.1.max(ms),
                None => stages.push((stage, ms)),
            }
        }
    }
    for (idxs, resp, _) in forwarded {
        let items: Vec<Value> = match parse_response(&resp) {
            Ok(Response::Result(v)) => {
                v.get("items").and_then(Value::as_arr).map(<[Value]>::to_vec).unwrap_or_default()
            }
            Ok(Response::Error { code, message, .. }) => {
                vec![batch_item_value(Err((code, message))); idxs.len()]
            }
            Ok(Response::Overloaded { queue_cap, retry_after_ms }) => {
                let msg = format!(
                    "every shard is overloaded (queue cap {queue_cap}, retry after {} ms)",
                    retry_after_ms.unwrap_or(0)
                );
                vec![batch_item_value(Err(("overloaded".to_string(), msg))); idxs.len()]
            }
            Err(e) => vec![batch_item_value(Err(("unavailable".to_string(), e))); idxs.len()],
        };
        for (slot, item) in idxs.into_iter().zip(items) {
            slots[slot] = Some(item);
        }
    }
    let items: Vec<Value> = slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                batch_item_value(Err((
                    "unavailable".to_string(),
                    "shard returned a short batch".to_string(),
                )))
            })
        })
        .collect();
    result_line(ver, "batch", batch.id, vec![("items".to_string(), Value::Arr(items))])
}

/// Serve `metrics` by fanning out to every healthy backend and merging
/// the expositions under a `shard` label; the router's own registry rides
/// along as `shard="router"`.
fn handle_metrics(shared: &RouterShared, ver: ProtoVersion, id: Option<u64>) -> String {
    let mut sections: Vec<(String, String)> = Vec::new();
    let probe = metrics_request_line(None, None);
    for (i, backend) in shared.backends.iter().enumerate() {
        if !backend.healthy.load(Ordering::SeqCst) {
            continue;
        }
        if let Ok(ForwardOutcome::Response(resp)) = try_forward(shared, i, &probe) {
            if let Ok(Response::Result(v)) = parse_response(&resp) {
                if let Some(expo) = v.get("exposition").and_then(Value::as_str) {
                    sections.push((i.to_string(), expo.to_string()));
                }
            }
        }
    }
    let own = {
        let rec = shared.recorder.lock().expect("recorder poisoned");
        router_exposition_of(&rec, shared)
    };
    sections.push(("router".to_string(), own));
    result_line(
        ver,
        "metrics",
        id,
        vec![("exposition".to_string(), Value::Str(merge_expositions(&sections)))],
    )
}

/// Merge per-shard Prometheus expositions into one: every series gains a
/// `shard="<label>"` label, families keep one `# TYPE` header (the first
/// seen wins), and output order is deterministic — families sorted by
/// name, series within a family in section order. `# EXEMPLAR` comment
/// lines survive the merge with the same shard label so exemplar
/// trace_ids stay addressable from the aggregated exposition.
pub fn merge_expositions(sections: &[(String, String)]) -> String {
    /// Inject `shard="<label>"` as the first label of `series`.
    fn shard_labeled(series: &str, label: &str) -> String {
        match series.find('{') {
            Some(brace) => {
                format!("{}{{shard=\"{label}\",{}", &series[..brace], &series[brace + 1..])
            }
            None => format!("{series}{{shard=\"{label}\"}}"),
        }
    }
    // family -> (type, series lines in arrival order, exemplar lines)
    let mut families: BTreeMap<String, (String, Vec<String>, Vec<String>)> = BTreeMap::new();
    for (label, exposition) in sections {
        for line in exposition.lines() {
            if let Some(header) = line.strip_prefix("# TYPE ") {
                let mut parts = header.splitn(2, ' ');
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else { continue };
                families
                    .entry(name.to_string())
                    .or_insert_with(|| (kind.to_string(), Vec::new(), Vec::new()));
            } else if let Some(exemplar) = line.strip_prefix("# EXEMPLAR ") {
                let mut parts = exemplar.rsplitn(2, ' ');
                let (Some(value), Some(series)) = (parts.next(), parts.next()) else { continue };
                let name = series.split('{').next().unwrap_or(series).to_string();
                let labeled = shard_labeled(series, label);
                families
                    .entry(name)
                    .or_insert_with(|| ("untyped".to_string(), Vec::new(), Vec::new()))
                    .2
                    .push(format!("# EXEMPLAR {labeled} {value}"));
            } else if !line.trim().is_empty() && !line.starts_with('#') {
                let mut parts = line.rsplitn(2, ' ');
                let (Some(value), Some(series)) = (parts.next(), parts.next()) else { continue };
                let name = series.split('{').next().unwrap_or(series).to_string();
                let labeled = shard_labeled(series, label);
                families
                    .entry(name)
                    .or_insert_with(|| ("untyped".to_string(), Vec::new(), Vec::new()))
                    .1
                    .push(format!("{labeled} {value}"));
            }
        }
    }
    let mut out = String::new();
    for (name, (kind, series, exemplars)) in &families {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for line in series {
            out.push_str(line);
            out.push('\n');
        }
        for line in exemplars {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// The health prober: periodic `metrics` probes keep the failure streaks
/// honest, and ejected backends are re-probed once their backoff expires.
fn probe_loop(shared: &RouterShared, interval: Duration) {
    let probe = metrics_request_line(None, None);
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Sleep in short slices so drain is never blocked on a probe gap.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = IDLE_POLL.min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for (i, backend) in shared.backends.iter().enumerate() {
            let healthy = backend.healthy.load(Ordering::SeqCst);
            if !healthy {
                let due = backend.backoff.lock().expect("backoff poisoned").until;
                if Instant::now() < due {
                    continue;
                }
            }
            match try_forward(shared, i, &probe) {
                Ok(ForwardOutcome::Response(_)) => record_success(shared, i),
                // An overloaded admission queue is load, not death.
                Ok(ForwardOutcome::Overloaded(_)) => {
                    backend.consecutive_failures.store(0, Ordering::SeqCst);
                }
                Err(()) => {
                    if healthy {
                        record_failure(shared, i);
                    } else {
                        // Still down: double the backoff and re-arm.
                        let mut backoff = backend.backoff.lock().expect("backoff poisoned");
                        let wait = BACKOFF_BASE
                            .checked_mul(1u32 << backoff.exp.min(16))
                            .unwrap_or(shared.max_backoff)
                            .min(shared.max_backoff);
                        backoff.until = Instant::now() + wait;
                        backoff.exp = backoff.exp.saturating_add(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_expositions_label_every_series_and_keep_one_header() {
        let a = "# TYPE unet_serve_conns_admitted counter\nunet_serve_conns_admitted 3\n";
        let b = "# TYPE unet_serve_conns_admitted counter\nunet_serve_conns_admitted 5\n\
                 # TYPE unet_phase_seconds_total counter\n\
                 unet_phase_seconds_total{phase=\"sim.comm\"} 0.25\n";
        let merged = merge_expositions(&[("0".into(), a.into()), ("1".into(), b.into())]);
        assert_eq!(
            merged.matches("# TYPE unet_serve_conns_admitted counter").count(),
            1,
            "one header per family:\n{merged}"
        );
        assert!(merged.contains("unet_serve_conns_admitted{shard=\"0\"} 3"), "{merged}");
        assert!(merged.contains("unet_serve_conns_admitted{shard=\"1\"} 5"), "{merged}");
        assert!(
            merged.contains("unet_phase_seconds_total{shard=\"1\",phase=\"sim.comm\"} 0.25"),
            "existing labels keep their places:\n{merged}"
        );
        // Deterministic: same input, same bytes.
        assert_eq!(merged, merge_expositions(&[("0".into(), a.into()), ("1".into(), b.into())]));
    }

    #[test]
    fn fingerprint_matches_across_identical_specs_and_separates_seeds() {
        let spec = |seed| SimulateReq {
            guest: "ring:12".into(),
            host: "torus:2x2".into(),
            steps: 2,
            seed,
            deadline_ms: None,
            id: None,
        };
        assert_eq!(simulate_fingerprint(&spec(7)), simulate_fingerprint(&spec(7)));
        assert_ne!(
            simulate_fingerprint(&spec(7)).unwrap(),
            simulate_fingerprint(&spec(8)).unwrap()
        );
        let mut bad = spec(7);
        bad.guest = "blah:9".into();
        assert!(simulate_fingerprint(&bad).is_err());
    }
}
