//! Protocol optimization: dead-operation elimination.
//!
//! A protocol may contain operations that contribute nothing to the final
//! pebbles — redundant generations (flooding-style simulators produce them
//! wholesale), speculative sends, entire idle processors. [`prune`] runs a
//! backward demand analysis from the final pebbles and strips every
//! operation that no later useful operation depends on, then drops host
//! steps that became fully idle. The result is a valid protocol (re-check it
//! to be sure — tests do) that simulates the same guest computation with at
//! most the original `T'` and usually far fewer busy operations.
//!
//! This is also an analysis tool for the theory: the pruned protocol's
//! weight profile `q_{i,t}` is the "essential redundancy" of a simulation —
//! the quantity the lower-bound's counting actually bites on.

use crate::protocol::{Op, Pebble, Protocol};
use unet_topology::util::{FxHashMap, FxHashSet};
use unet_topology::{Graph, Node};

/// Statistics from a [`prune`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Busy (non-idle) operations before.
    pub busy_before: usize,
    /// Busy operations after.
    pub busy_after: usize,
    /// Host steps before.
    pub steps_before: usize,
    /// Host steps after (all-idle steps dropped).
    pub steps_after: usize,
}

/// Remove every operation that does not contribute to producing the final
/// pebbles `(P_i, T)`, keeping for each final pebble its earliest generation.
///
/// The input must be a *valid* protocol for `guest` (behaviour on invalid
/// protocols is unspecified but memory-safe).
pub fn prune(guest: &Graph, proto: &Protocol) -> (Protocol, PruneStats) {
    let t_final = proto.guest_t;
    let steps = &proto.steps;
    let busy_before = proto.busy_ops();

    // Designate the earliest generator of each final pebble.
    let mut designated: FxHashSet<(usize, Node)> = FxHashSet::default(); // (step, host)
    {
        let mut have: FxHashSet<Node> = FxHashSet::default();
        for (si, row) in steps.iter().enumerate() {
            for (q, op) in row.iter().enumerate() {
                if let Op::Generate(p) = op {
                    if p.t == t_final && have.insert(p.node) {
                        designated.insert((si, q as Node));
                    }
                }
            }
        }
    }

    // Backward demand analysis. demand[q] = pebbles that must be present at
    // q strictly before the step currently being processed.
    let mut demand: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); proto.host_m];
    let mut useful = vec![false; steps.len() * proto.host_m];
    let idx = |si: usize, q: usize| si * proto.host_m + q;

    for si in (0..steps.len()).rev() {
        let row = &steps[si];
        // Phase 1: decide usefulness against demand-from-later, collecting
        // the new demands to apply afterwards (same-step effects must not
        // satisfy same-step requirements).
        let mut new_demands: Vec<(usize, u64)> = Vec::new();
        for (q, op) in row.iter().enumerate() {
            match *op {
                Op::Generate(p) => {
                    let wanted =
                        demand[q].remove(&p.key()) || designated.contains(&(si, q as Node));
                    if wanted {
                        useful[idx(si, q)] = true;
                        // Preconditions: closed neighbourhood at t−1.
                        if p.t >= 2 {
                            new_demands.push((q, Pebble::new(p.node, p.t - 1).key()));
                            for &nb in guest.neighbors(p.node) {
                                new_demands.push((q, Pebble::new(nb, p.t - 1).key()));
                            }
                        }
                    }
                }
                Op::Send { pebble, to } => {
                    let wanted = pebble.t >= 1 && demand[to as usize].remove(&pebble.key());
                    if wanted {
                        useful[idx(si, q)] = true;
                        useful[idx(si, to as usize)] = true; // paired recv
                        new_demands.push((q, pebble.key()));
                    }
                }
                // Recv usefulness is set by its paired send.
                Op::Recv { .. } | Op::Idle => {}
            }
        }
        for (q, key) in new_demands {
            // t = 0 pebbles are initially everywhere; never demanded.
            if Pebble::from_key(key).t >= 1 {
                demand[q].insert(key);
            }
        }
    }
    debug_assert!(
        demand.iter().all(|d| d.is_empty()),
        "unmet demand: the input protocol was invalid"
    );

    // Rebuild: strip useless ops, drop all-idle steps.
    let mut out = Protocol::new(proto.guest_n, t_final, proto.host_m);
    for (si, row) in steps.iter().enumerate() {
        let new_row: Vec<Op> = row
            .iter()
            .enumerate()
            .map(|(q, op)| if useful[idx(si, q)] { *op } else { Op::Idle })
            .collect();
        if new_row.iter().any(|op| !matches!(op, Op::Idle)) {
            out.push_step(new_row);
        }
    }
    let stats = PruneStats {
        busy_before,
        busy_after: out.busy_ops(),
        steps_before: steps.len(),
        steps_after: out.host_steps(),
    };
    (out, stats)
}

/// The essential weight profile: `q_{i,t}` of the pruned protocol — how many
/// copies of each configuration a simulation *needs*, as opposed to how many
/// it happened to make.
pub fn essential_weights(guest: &Graph, host: &Graph, proto: &Protocol) -> FxHashMap<u64, usize> {
    let (pruned, _) = prune(guest, proto);
    let trace = crate::check::check(guest, host, &pruned).expect("pruned protocol stays valid");
    let mut out = FxHashMap::default();
    for i in 0..proto.guest_n as Node {
        for t in 1..=proto.guest_t {
            out.insert(Pebble::new(i, t).key(), trace.weight(i, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::protocol::ProtocolBuilder;
    use unet_topology::generators::{complete, ring};

    /// Host 0 does the honest work; host 1 floods uselessly.
    fn protocol_with_waste() -> (Graph, Graph, Protocol) {
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        for t in 1..=2u32 {
            for i in 0..3u32 {
                b.set_op(0, Op::Generate(Pebble::new(i, t)));
                b.set_op(1, Op::Generate(Pebble::new(i, t))); // redundant
                b.end_step();
            }
        }
        (guest, host, b.finish())
    }

    #[test]
    fn prune_strips_redundant_generator() {
        let (guest, host, proto) = protocol_with_waste();
        check(&guest, &host, &proto).expect("valid before");
        let (pruned, stats) = prune(&guest, &proto);
        check(&guest, &host, &pruned).expect("valid after");
        // Host 1's entire cascade is dead: finals are designated on host 0.
        assert_eq!(stats.busy_before, 12);
        assert_eq!(stats.busy_after, 6);
        assert_eq!(stats.steps_after, 6);
        for row in &pruned.steps {
            assert!(matches!(row[1], Op::Idle));
        }
    }

    #[test]
    fn prune_keeps_useful_transfers() {
        // Host 0 generates level 1, ships to host 1 which generates level 2:
        // everything is load-bearing, nothing may be pruned.
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 2, 2);
        for i in 0..3u32 {
            b.set_op(0, Op::Generate(Pebble::new(i, 1)));
            b.end_step();
        }
        for i in 0..3u32 {
            b.transfer(0, 1, Pebble::new(i, 1));
            b.end_step();
        }
        for i in 0..3u32 {
            b.set_op(1, Op::Generate(Pebble::new(i, 2)));
            b.end_step();
        }
        let proto = b.finish();
        check(&guest, &host, &proto).expect("valid before");
        let (pruned, stats) = prune(&guest, &proto);
        check(&guest, &host, &pruned).expect("valid after");
        assert_eq!(stats.busy_after, stats.busy_before);
        assert_eq!(stats.steps_after, stats.steps_before);
    }

    #[test]
    fn prune_drops_speculative_send() {
        // A send whose payload nobody ever uses must disappear, along with
        // the step that held it.
        let guest = ring(3);
        let host = complete(2);
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.transfer(0, 1, Pebble::new(0, 0)); // pointless: initials are everywhere
        b.end_step();
        for i in 0..3u32 {
            b.set_op(0, Op::Generate(Pebble::new(i, 1)));
            b.end_step();
        }
        let proto = b.finish();
        check(&guest, &host, &proto).expect("valid before");
        let (pruned, stats) = prune(&guest, &proto);
        check(&guest, &host, &pruned).expect("valid after");
        assert_eq!(stats.steps_after, 3);
        assert_eq!(stats.busy_after, 3);
    }

    #[test]
    fn essential_weights_all_one_for_lean_protocol() {
        let (guest, host, proto) = protocol_with_waste();
        let w = essential_weights(&guest, &host, &proto);
        assert!(w.values().all(|&v| v == 1), "{w:?}");
    }
}
