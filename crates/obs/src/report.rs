//! Human-readable summaries of a parsed [`TraceDoc`] — the output of
//! `unet report`.

use crate::recorder::Histogram;
use crate::trace::TraceDoc;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn hist_line(name: &str, h: &Histogram) -> String {
    if h.count == 0 {
        return format!("  {name:<28} (empty)");
    }
    format!(
        "  {name:<28} n={:<8} mean={:<10.2} min={:<8} max={}",
        h.count,
        h.mean().unwrap_or(0.0),
        h.min,
        h.max
    )
}

/// ASCII bar chart of a histogram's occupied log₂ buckets.
fn hist_chart(h: &Histogram) -> Vec<String> {
    const WIDTH: usize = 32;
    let peak = h.buckets.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        return Vec::new();
    }
    let (lo, hi) = (
        h.buckets.iter().position(|&c| c > 0).unwrap(),
        h.buckets.iter().rposition(|&c| c > 0).unwrap(),
    );
    (lo..=hi)
        .map(|i| {
            let c = h.buckets[i];
            let bar = "#".repeat(((c as u128 * WIDTH as u128).div_ceil(peak as u128)) as usize);
            let (b_lo, b_hi) = Histogram::bucket_range(i);
            let label = if b_lo == b_hi {
                format!("{b_lo}")
            } else if b_hi == u64::MAX {
                format!("{b_lo}..")
            } else {
                format!("{b_lo}..{b_hi}")
            };
            format!("    {label:>22} | {bar:<WIDTH$} {c}")
        })
        .collect()
}

/// Render the full report for a trace.
pub fn render(doc: &TraceDoc) -> String {
    let mut out = String::new();
    let m = &doc.meta;
    out.push_str(&format!(
        "trace: {} — guest {} (n={}) on host {} (m={}), {} guest steps\n",
        m.command, m.guest, m.n, m.host, m.m, m.guest_steps
    ));

    if let Some(s) = &doc.summary {
        out.push_str("\nsummary\n");
        out.push_str(&format!(
            "  host steps T'={} (comm {}, compute {})\n",
            s.host_steps, s.comm_steps, s.compute_steps
        ));
        out.push_str(&format!("  slowdown      s = T'/T   = {:.3}\n", s.slowdown));
        out.push_str(&format!("  inefficiency  k = s·m/n  = {:.3}\n", s.inefficiency));
        out.push_str(&format!("  wall time     {:.3} ms\n", s.wall_ms));
    }

    let totals = doc.span_totals();
    if !totals.is_empty() {
        let grand: u64 = {
            // Only top-level time is additive; nested spans double-count.
            // For the share column use the largest total as the scale.
            totals.iter().map(|&(_, ns, _)| ns).max().unwrap_or(1).max(1)
        };
        out.push_str("\nphases (wall clock)\n");
        for (name, ns, count) in &totals {
            out.push_str(&format!(
                "  {name:<28} {:>10}  ×{count:<6} {:>5.1}%\n",
                fmt_ns(*ns),
                *ns as f64 * 100.0 / grand as f64
            ));
        }
    }

    if !doc.faults.is_empty() {
        out.push_str("\nfault timeline\n");
        let mut ordered: Vec<_> = doc.faults.iter().collect();
        ordered.sort_by_key(|f| f.at);
        for f in ordered {
            out.push_str(&format!(
                "  t={:<6} {:<7} {:<6} {}\n",
                f.at,
                f.op.as_str(),
                f.kind,
                f.subject
            ));
        }
    }

    if !doc.samples.is_empty() {
        out.push_str("\ncongestion\n");
        // Group by series name preserving file order, summarizing totals
        // and the hottest (step, key) cell per series.
        let mut names: Vec<&str> = Vec::new();
        for s in &doc.samples {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        for name in names {
            let mut total = 0u64;
            let mut cells = 0u64;
            let mut peak: Option<&crate::trace::SampleRecord> = None;
            let mut last_step = 0u64;
            for s in doc.samples_named(name) {
                total += s.value;
                cells += 1;
                last_step = last_step.max(s.step);
                if peak.is_none_or(|p| s.value > p.value) {
                    peak = Some(s);
                }
            }
            let peak = peak.expect("series has at least one sample");
            let key = if name.ends_with("edge_util") {
                let (from, to) = crate::recorder::unpack_edge_key(peak.key);
                format!("edge {from}->{to}")
            } else {
                format!("node {}", peak.key)
            };
            out.push_str(&format!(
                "  {name:<28} total {total:<8} cells {cells:<8} peak {} at step {} ({key}) over {} steps\n",
                peak.value,
                peak.step,
                last_step + 1
            ));
        }
    }

    if !doc.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (name, v) in &doc.counters {
            out.push_str(&format!("  {name:<28} {v}\n"));
        }
    }

    if !doc.gauges.is_empty() {
        out.push_str("\ngauges\n");
        for (name, v) in &doc.gauges {
            out.push_str(&format!("  {name:<28} {v}\n"));
        }
    }

    if !doc.histograms.is_empty() {
        out.push_str("\nhistograms\n");
        for (name, h) in &doc.histograms {
            out.push_str(&hist_line(name, h));
            out.push('\n');
            for line in hist_chart(h) {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};
    use crate::trace::{export, parse_trace, RunMeta, RunSummary};

    fn sample_doc() -> TraceDoc {
        let mut rec = InMemoryRecorder::new();
        rec.span_start("sim.comm");
        rec.counter("route.transfers", 42);
        rec.histogram("route.hops", 1);
        rec.histogram("route.hops", 5);
        rec.histogram("route.hops", 5);
        rec.gauge("sim.load", 2.5);
        rec.span_end("sim.comm");
        let meta = RunMeta {
            command: "simulate".into(),
            guest: "ring:8".into(),
            host: "mesh:4".into(),
            n: 8,
            m: 4,
            guest_steps: 2,
        };
        let summary = RunSummary {
            host_steps: 20,
            comm_steps: 14,
            compute_steps: 6,
            slowdown: 10.0,
            inefficiency: 5.0,
            wall_ms: 0.5,
        };
        parse_trace(&export(&rec, &meta, Some(&summary))).unwrap()
    }

    #[test]
    fn render_mentions_headline_metrics() {
        let text = render(&sample_doc());
        assert!(text.contains("slowdown"));
        assert!(text.contains("inefficiency"));
        assert!(text.contains("10.000"));
        assert!(text.contains("5.000"));
        assert!(text.contains("route.transfers"));
        assert!(text.contains("sim.comm"));
        assert!(text.contains("route.hops"));
        assert!(text.contains("sim.load"));
    }

    #[test]
    fn congestion_section_rendered_from_samples() {
        use crate::recorder::edge_key;
        let mut rec = InMemoryRecorder::new();
        rec.sample("route.edge_util", 0, edge_key(1, 2), 1);
        rec.sample("route.edge_util", 3, edge_key(4, 5), 7);
        rec.sample("route.queue_depth", 1, 9, 2);
        let meta = RunMeta {
            command: "trace".into(),
            guest: "ring:8".into(),
            host: "mesh:4".into(),
            n: 8,
            m: 4,
            guest_steps: 2,
        };
        let doc = parse_trace(&export(&rec, &meta, None)).unwrap();
        let text = render(&doc);
        assert!(text.contains("congestion"), "{text}");
        assert!(text.contains("route.edge_util"), "{text}");
        assert!(text.contains("peak 7 at step 3 (edge 4->5)"), "{text}");
        assert!(text.contains("node 9"), "{text}");
        // A sample-free doc has no congestion section.
        assert!(!render(&sample_doc()).contains("congestion"));
    }

    #[test]
    fn fault_timeline_rendered_in_time_order() {
        use crate::trace::{export_with_faults, FaultOp, FaultRecord};
        let mut rec = InMemoryRecorder::new();
        rec.counter("faults.dropped", 1);
        let meta = RunMeta {
            command: "faults".into(),
            guest: "ring:8".into(),
            host: "butterfly:3".into(),
            n: 8,
            m: 32,
            guest_steps: 2,
        };
        let faults = vec![
            FaultRecord {
                at: 3,
                op: FaultOp::Repair,
                kind: "flap".into(),
                subject: "link:1-2".into(),
            },
            FaultRecord {
                at: 1,
                op: FaultOp::Inject,
                kind: "crash".into(),
                subject: "node:7".into(),
            },
        ];
        let doc = parse_trace(&export_with_faults(&rec, &meta, &faults, None)).unwrap();
        let text = render(&doc);
        assert!(text.contains("fault timeline"));
        let inject = text.find("inject").unwrap();
        let repair = text.find("repair").unwrap();
        assert!(inject < repair, "timeline must be sorted by time");
        assert!(text.contains("node:7"));
        assert!(text.contains("link:1-2"));
    }

    #[test]
    fn hist_chart_spans_occupied_buckets() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(8);
        h.record(8);
        let lines = hist_chart(&h);
        // Buckets 1 (value 1) through 4 (8..15) inclusive → 4 rows.
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("1 |"));
        assert!(lines[3].contains("8..15"));
    }

    #[test]
    fn empty_histogram_renders_without_panic() {
        let h = Histogram::default();
        assert!(hist_line("empty", &h).contains("(empty)"));
        assert!(hist_chart(&h).is_empty());
    }
}
