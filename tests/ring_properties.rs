//! Consistent-hash ring invariants under random fingerprints and ring
//! sizes. The router's cache-affinity story rests on two properties of
//! [`Ring::successors`]: the order is a permutation of all shards that
//! starts at the home shard, and ejecting any single shard remaps only the
//! keys that shard owned (every survivor's keys stay put, so the surviving
//! plan caches stay warm through a backend death).

use proptest::prelude::*;
use universal_networks::serve::ring::Ring;

proptest! {
    /// `successors(fp)` enumerates every shard exactly once and leads with
    /// `shard_of(fp)` — the router's failover walk can always find a
    /// healthy shard and always tries the cache-affine home first.
    #[test]
    fn successors_are_a_permutation_rooted_at_home(
        shards in 1usize..=8,
        fp in any::<u64>(),
    ) {
        let ring = Ring::new(shards);
        let order = ring.successors(fp);
        prop_assert_eq!(order[0], ring.shard_of(fp), "walk starts at the home shard");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..shards).collect::<Vec<_>>(), "each shard appears once");
    }

    /// Removing any one shard remaps only that shard's own keys: a key
    /// whose home survives keeps its home, and a dead home's keys land on
    /// the key's ring successor — the first *surviving* entry of its own
    /// failover order, never an arbitrary shard.
    #[test]
    fn removing_one_shard_remaps_only_its_own_keys(
        shards in 2usize..=8,
        dead_pick in any::<usize>(),
        fp in any::<u64>(),
    ) {
        let ring = Ring::new(shards);
        let dead = dead_pick % shards;
        let order = ring.successors(fp);
        let rerouted = *order
            .iter()
            .find(|&&s| s != dead)
            .expect("at least one shard survives");
        if order[0] != dead {
            prop_assert_eq!(rerouted, order[0], "keys of surviving shards never move");
        } else {
            prop_assert_eq!(rerouted, order[1], "dead home spills to the next successor");
        }
    }

    /// The failover order itself is membership-independent: it is derived
    /// from the static ring alone, so ejections and reinstatements never
    /// reshuffle where anyone's keys live.
    #[test]
    fn successor_order_is_stable_across_rebuilds(
        shards in 1usize..=8,
        fp in any::<u64>(),
    ) {
        prop_assert_eq!(Ring::new(shards).successors(fp), Ring::new(shards).successors(fp));
    }
}
