//! The wavefront argument (Definition 3.16, Proposition 3.17, Lemma 3.15).
//!
//! For a simulation protocol, `e_t(τ)` counts the guest nodes whose
//! `t`-pebble exists by host step `τ`. Because generating `(P_i, t)`
//! requires *all* neighbours' `(t−1)`-pebbles to exist strictly earlier, the
//! expander inside `G₀` forces the wavefront to spread: if the `t`-level set
//! is still small (`≤ α·n`), the `(t−1)`-level set one step earlier is at
//! least `β` times larger (Proposition 3.17). Combined with the shortage of
//! *heavy* processors, each guest level costs the host
//! `Ω(γ·n / (√m·k))` steps — the engine behind `k = Ω(m^{1/4})` in
//! Lemma 3.15's closing computation.

use unet_pebble::check::Trace;
use unet_topology::{Graph, Node};

/// `existence[t−1][i]` = earliest host step (1-based) at which a pebble
/// `(P_i, t)` exists anywhere, for `t ∈ [1, T]`; `u32::MAX` if never.
/// Level `t = 0` exists at step 0 by definition (initial pebbles).
pub fn existence_times(trace: &Trace) -> Vec<Vec<u32>> {
    let n = trace.guest_n;
    (1..=trace.guest_t)
        .map(|t| {
            (0..n as Node)
                .map(|i| {
                    // A pebble cannot be received before being generated, so
                    // the earliest acquisition across holders is the first
                    // generation step.
                    match trace.representatives(i, t) {
                        unet_pebble::check::RepresentativeSet::Listed(hs) => hs
                            .iter()
                            .filter_map(|&q| {
                                trace.acquisition_step(q, unet_pebble::protocol::Pebble::new(i, t))
                            })
                            .min()
                            .unwrap_or(u32::MAX),
                        unet_pebble::check::RepresentativeSet::All(_) => 0,
                    }
                })
                .collect()
        })
        .collect()
}

/// `e_t(τ)` for one level `t ≥ 1`: how many `t`-pebbles exist by step `τ`.
pub fn e_of(existence: &[Vec<u32>], t: u32, tau: u32) -> usize {
    existence[t as usize - 1].iter().filter(|&&s| s <= tau).count()
}

/// The full curve `e_t(0..=T')` for one level.
pub fn e_curve(existence: &[Vec<u32>], t: u32, t_prime: u32) -> Vec<usize> {
    (0..=t_prime).map(|tau| e_of(existence, t, tau)).collect()
}

/// `τ_j` of Definition 3.16: the earliest host step at which at least
/// `threshold` many `t`-pebbles exist. `None` if never reached.
pub fn tau_threshold(existence: &[Vec<u32>], t: u32, threshold: usize) -> Option<u32> {
    let mut times: Vec<u32> = existence[t as usize - 1].clone();
    times.sort_unstable();
    times.get(threshold.saturating_sub(1)).copied().filter(|&s| s != u32::MAX)
}

/// Verify the expansion step (Proposition 3.17) mechanically: for every
/// level `t ≥ 2` and every host step `τ ≥ 1`, each guest node whose
/// `t`-pebble exists by `τ` has its whole closed neighbourhood's
/// `(t−1)`-pebbles existing by `τ − 1`. This is the data-dependency fact the
/// proposition's proof rests on; the checker makes it true by construction,
/// and this function *re-verifies it from the trace alone*.
pub fn verify_dependency_monotonicity(guest: &Graph, existence: &[Vec<u32>]) -> Result<(), String> {
    let levels = existence.len();
    for t in 2..=levels {
        for i in 0..guest.n() as Node {
            let et = existence[t - 1][i as usize];
            if et == u32::MAX {
                continue;
            }
            let check = |j: Node| -> Result<(), String> {
                let prev = existence[t - 2][j as usize];
                if prev >= et {
                    return Err(format!(
                        "(P{i}, {t}) exists at {et} but predecessor (P{j}, {}) only at {prev}",
                        t - 1
                    ));
                }
                Ok(())
            };
            check(i)?;
            for &j in guest.neighbors(i) {
                check(j)?;
            }
        }
    }
    Ok(())
}

/// The Proposition 3.17 inequality at one level: if `e_{t−1}(τ−1) < α·n`
/// then `e_t(τ) ≤ (α/β)·n` for an `(α, β)`-expander guest. Returns the
/// measured pair `(e_{t−1}(τ−1), e_t(τ))` plus whether the implication holds.
pub fn expansion_step(
    guest_n: usize,
    existence: &[Vec<u32>],
    t: u32,
    tau: u32,
    alpha: f64,
    beta: f64,
) -> (usize, usize, bool) {
    let prev = if t >= 2 {
        e_of(existence, t - 1, tau.saturating_sub(1))
    } else {
        guest_n // level 0 always complete
    };
    let cur = e_of(existence, t, tau);
    let holds = if (prev as f64) < alpha * guest_n as f64 {
        (cur as f64) <= (alpha / beta) * guest_n as f64 + 1e-9
    } else {
        true // implication vacuous
    };
    (prev, cur, holds)
}

/// Summary of the wavefront audit over all levels and a grid of steps.
#[derive(Debug, Clone)]
pub struct WavefrontAudit {
    /// `τ_j` per guest level `t = 1..=T` at threshold `α·n`.
    pub taus: Vec<Option<u32>>,
    /// Minimum observed gap `τ_{j+1} − τ_j` (the quantity Lemma 3.15 lower
    /// bounds by `γ·n/(384·√m·k)`).
    pub min_gap: Option<u32>,
    /// Whether dependency monotonicity held.
    pub monotone: bool,
    /// Whether every tested expansion step held.
    pub expansion_ok: bool,
}

/// Run the full wavefront audit (uses the guest's certified `(α, β)` — in
/// practice the expander certificate of the `G₀` inside the guest).
pub fn audit(guest: &Graph, trace: &Trace, alpha: f64, beta: f64) -> WavefrontAudit {
    let existence = existence_times(trace);
    let n = guest.n();
    let threshold = (alpha * n as f64).ceil() as usize;
    let taus: Vec<Option<u32>> =
        (1..=trace.guest_t).map(|t| tau_threshold(&existence, t, threshold)).collect();
    let mut min_gap: Option<u32> = None;
    for w in taus.windows(2) {
        if let (Some(a), Some(b)) = (w[0], w[1]) {
            let gap = b.saturating_sub(a);
            min_gap = Some(min_gap.map_or(gap, |g| g.min(gap)));
        }
    }
    let monotone = verify_dependency_monotonicity(guest, &existence).is_ok();
    let mut expansion_ok = true;
    for t in 1..=trace.guest_t {
        if let Some(tau) = taus[t as usize - 1] {
            // Test the proposition exactly at τ_j as the proof does.
            let (_, _, ok) = expansion_step(n, &existence, t, tau.saturating_sub(0), alpha, beta);
            // Note: at τ_j the *previous* level may already exceed αn, in
            // which case the implication is vacuous — `ok` handles that.
            expansion_ok &= ok;
        }
    }
    WavefrontAudit { taus, min_gap, monotone, expansion_ok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_core::{Embedding, GuestComputation, Simulation};
    use unet_pebble::check;
    use unet_topology::generators::{random_hamiltonian_union, torus};
    use unet_topology::util::seeded_rng;

    fn simulate_expander_guest() -> (Graph, Trace) {
        let mut rng = seeded_rng(9);
        let guest = random_hamiltonian_union(24, 2, &mut rng); // 4-regular expander
        let comp = GuestComputation::random(guest.clone(), 3);
        let host = torus(2, 2);
        let router = unet_core::routers::presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(24, 4))
            .router(&router)
            .steps(4)
            .run_with_rng(&mut seeded_rng(10))
            .expect("valid configuration");
        let trace = check(&guest, &host, &run.protocol).unwrap();
        (guest, trace)
    }

    #[test]
    fn existence_times_monotone_in_t() {
        let (guest, trace) = simulate_expander_guest();
        let ex = existence_times(&trace);
        assert_eq!(ex.len(), 4);
        verify_dependency_monotonicity(&guest, &ex).expect("monotone");
        // All pebbles eventually exist (full simulation).
        for level in &ex {
            assert!(level.iter().all(|&s| s != u32::MAX));
        }
    }

    #[test]
    fn e_curve_is_monotone_and_saturates() {
        let (_, trace) = simulate_expander_guest();
        let ex = existence_times(&trace);
        let curve = e_curve(&ex, 1, trace.host_steps as u32);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*curve.last().unwrap(), 24);
        assert_eq!(curve[0], 0);
    }

    #[test]
    fn tau_thresholds_ordered() {
        let (_, trace) = simulate_expander_guest();
        let ex = existence_times(&trace);
        let t1 = tau_threshold(&ex, 1, 12).unwrap();
        let t2 = tau_threshold(&ex, 2, 12).unwrap();
        assert!(t2 > t1, "level-2 majority must come after level-1 majority");
        // Threshold beyond n ⇒ None.
        assert_eq!(tau_threshold(&ex, 1, 25), None);
    }

    #[test]
    fn full_audit_passes_on_valid_trace() {
        let (guest, trace) = simulate_expander_guest();
        let audit = audit(&guest, &trace, 0.5, 1.2);
        assert!(audit.monotone);
        assert!(audit.expansion_ok);
        assert!(audit.taus.iter().all(|t| t.is_some()));
        assert!(audit.min_gap.unwrap_or(0) >= 1);
    }

    #[test]
    fn expansion_step_vacuous_when_prev_large() {
        let (_, trace) = simulate_expander_guest();
        let ex = existence_times(&trace);
        // At the very last step everything exists: implication vacuous.
        let (prev, cur, ok) = expansion_step(24, &ex, 4, trace.host_steps as u32, 0.5, 2.0);
        assert_eq!(prev, 24);
        assert_eq!(cur, 24);
        assert!(ok);
    }
}
