//! The typed client: a persistent connection with timeouts, typed
//! responses per request kind, and `overloaded`-aware retries.
//!
//! ```
//! use unet_serve::{Server, ServeConfig};
//! use unet_serve::client::Client;
//! use unet_serve::protocol::SimulateReq;
//!
//! let server = Server::start(ServeConfig::default()).expect("bind");
//! let mut client = Client::connect(&server.addr().to_string())
//!     .expect("connect")
//!     .timeout(std::time::Duration::from_secs(30))
//!     .retries(2);
//! let spec = SimulateReq {
//!     guest: "ring:12".into(), host: "torus:2x2".into(),
//!     steps: 2, seed: 7, deadline_ms: None, id: None,
//! };
//! let one = client.simulate(&spec).expect("simulate");
//! assert!(one.verified && one.slowdown >= 1.0);
//! let many = client.simulate_batch(&[spec.clone(), spec], None).expect("batch");
//! assert!(many.iter().all(|item| item.is_ok()));
//! drop(client);
//! server.drain();
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{
    analyze_request_line, batch_request_line, gen_trace_id, metrics_request_line, parse_response,
    simulate_request_line, Response, SimulateReq,
};
use unet_obs::json::Value;

/// A typed `error` response from the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerError {
    /// Machine-readable failure code (`bad-spec`, `deadline-exceeded`, …).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be established or the round trip died.
    Io(std::io::Error),
    /// The server answered with something the protocol module rejects.
    Protocol(String),
    /// The server answered with a typed `error` response.
    Server(ServerError),
    /// Every retry hit a full admission queue.
    Overloaded {
        /// The server's configured queue bound.
        queue_cap: u64,
        /// The server's last wait hint.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Overloaded { queue_cap, .. } => {
                write!(f, "overloaded: admission queue full (cap {queue_cap})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The typed payload of one successful `simulate` (or batch member).
#[derive(Debug, Clone)]
pub struct SimulateResult {
    /// Measured slowdown (host steps per guest step).
    pub slowdown: f64,
    /// Inefficiency `k = s·m/n`.
    pub inefficiency: f64,
    /// Total host steps of the certified protocol.
    pub host_steps: u64,
    /// Communication-phase host steps.
    pub comm_steps: u64,
    /// Compute-phase host steps.
    pub compute_steps: u64,
    /// The run reused a route plan from the shared cache.
    pub shared_cache_hit: bool,
    /// The run was certified (always true in a `result`).
    pub verified: bool,
    /// Server-side wall time in milliseconds.
    pub wall_ms: f64,
    /// The trace id this request ran under (client-assigned, echoed by
    /// `/3` servers in the payload).
    pub trace_id: Option<String>,
    /// Server-reported stage breakdown (`queue_wait`, `simulate`, …) in
    /// milliseconds, in the server's span order. Empty from pre-`/3`
    /// servers.
    pub stages: Vec<(String, f64)>,
    /// Client-measured end-to-end latency of the round trip that carried
    /// this result, in milliseconds (the whole batch's round trip for a
    /// batch member). Includes queueing, the wire, and parsing — what a
    /// caller would see timing the call itself.
    pub e2e_ms: f64,
    /// The full payload object, for fields this struct does not name.
    pub raw: Value,
}

impl SimulateResult {
    fn from_value(v: Value) -> Result<SimulateResult, ClientError> {
        let f = |name: &str| v.get(name).and_then(Value::as_f64);
        let u = |name: &str| v.get(name).and_then(Value::as_u64);
        let stages = match v.get("stages") {
            Some(Value::Obj(fields)) => fields
                .iter()
                .filter_map(|(stage, ms)| ms.as_f64().map(|ms| (stage.clone(), ms)))
                .collect(),
            _ => Vec::new(),
        };
        let trace_id = v.get("trace_id").and_then(Value::as_str).map(str::to_string);
        let ok = (|| {
            Some(SimulateResult {
                slowdown: f("slowdown")?,
                inefficiency: f("inefficiency")?,
                host_steps: u("host_steps")?,
                comm_steps: u("comm_steps")?,
                compute_steps: u("compute_steps")?,
                shared_cache_hit: v.get("shared_cache_hit").and_then(Value::as_bool)?,
                verified: v.get("verified").and_then(Value::as_bool)?,
                wall_ms: f("wall_ms")?,
                trace_id,
                stages,
                e2e_ms: 0.0,
                raw: v.clone(),
            })
        })();
        ok.ok_or_else(|| {
            ClientError::Protocol(format!("incomplete simulate payload: {}", v.to_json()))
        })
    }
}

/// How many times [`Client`] retries an `overloaded` rejection by default.
const DEFAULT_RETRIES: u32 = 0;

/// Upper bound on one retry sleep, so a wild server hint cannot park the
/// client for minutes. [`retry_sleep`] clamps every hint to this.
pub const MAX_RETRY_SLEEP: Duration = Duration::from_secs(2);

/// How many connect attempts [`Client`] makes when (re)establishing a
/// connection, so a router restart window does not surface as an IO error.
const RECONNECT_ATTEMPTS: u32 = 3;

/// Pause between reconnect attempts.
const RECONNECT_PAUSE: Duration = Duration::from_millis(25);

/// The duration the client sleeps for a server `retry_after_ms` hint:
/// the hint itself (10 ms when the server sent none), clamped to
/// [`MAX_RETRY_SLEEP`]. Exposed so tests can check the cap without
/// standing up an overloaded server.
pub fn retry_sleep(retry_after_ms: Option<u64>) -> Duration {
    Duration::from_millis(retry_after_ms.unwrap_or(10)).min(MAX_RETRY_SLEEP)
}

/// A persistent typed connection to a `unet-serve` server.
///
/// Construct with [`Client::connect`], shape with the builder-style
/// [`timeout`](Client::timeout) / [`retries`](Client::retries), then call
/// the typed request methods. The connection is kept open across calls and
/// transparently re-established after an IO failure or an `overloaded`
/// rejection (the retry honors the server's `retry_after_ms` hint).
pub struct Client {
    addr: String,
    timeout: Option<Duration>,
    retries: u32,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
}

impl Client {
    /// Connect eagerly to `addr` (host:port).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let mut client =
            Client { addr: addr.to_string(), timeout: None, retries: DEFAULT_RETRIES, conn: None };
        client.ensure_conn()?;
        Ok(client)
    }

    /// Set a read/write timeout for the connection (applies immediately).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        if let Some((stream, _)) = &self.conn {
            let _ = stream.set_read_timeout(Some(timeout));
            let _ = stream.set_write_timeout(Some(timeout));
        }
        self
    }

    /// Retry `overloaded` rejections up to `retries` times, sleeping the
    /// server's `retry_after_ms` hint between attempts (default 0 — fail
    /// fast).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn ensure_conn(&mut self) -> Result<(), ClientError> {
        if self.conn.is_none() {
            // A few attempts with short pauses ride out a router or server
            // restart window transparently instead of failing the call.
            let mut attempt = 0;
            let stream = loop {
                match TcpStream::connect(&self.addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        attempt += 1;
                        if attempt >= RECONNECT_ATTEMPTS {
                            return Err(ClientError::Io(e));
                        }
                        std::thread::sleep(RECONNECT_PAUSE);
                    }
                }
            };
            // Small-line request/response ping-pong: leaving Nagle on
            // costs a delayed-ACK stall per request on a kept-alive
            // connection (the E22 span-accounting gate catches this).
            let _ = stream.set_nodelay(true);
            if let Some(t) = self.timeout {
                let _ = stream.set_read_timeout(Some(t));
                let _ = stream.set_write_timeout(Some(t));
            }
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some((stream, reader));
        }
        Ok(())
    }

    /// One raw line round trip (no retries, no response typing). The
    /// connection is re-established once if the round trip dies.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        match self.round_trip_once(line) {
            Ok(resp) => Ok(resp),
            Err(ClientError::Io(_)) => {
                // One reconnect: the server may have closed an idle
                // connection between calls.
                self.conn = None;
                self.round_trip_once(line)
            }
            Err(e) => Err(e),
        }
    }

    fn round_trip_once(&mut self, line: &str) -> Result<String, ClientError> {
        self.ensure_conn()?;
        let result = (|| {
            let (stream, reader) = self.conn.as_mut().expect("ensured above");
            writeln!(stream, "{line}")?;
            stream.flush()?;
            let mut response = String::new();
            let n = reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection without responding",
                ));
            }
            Ok(response.trim_end().to_string())
        })();
        if result.is_err() {
            self.conn = None;
        }
        result.map_err(ClientError::Io)
    }

    /// Send a pre-built request `line`, classify the response, and retry
    /// `overloaded` rejections per the configured budget. The typed
    /// methods ([`simulate`](Client::simulate) etc.) are the usual entry
    /// points; this one serves callers that build request lines
    /// themselves.
    pub fn request_typed_line(&mut self, line: &str) -> Result<Value, ClientError> {
        let mut attempts_left = self.retries;
        loop {
            let raw = self.request_raw(line)?;
            match parse_response(&raw).map_err(ClientError::Protocol)? {
                Response::Result(v) => return Ok(v),
                Response::Error { code, message, .. } => {
                    return Err(ClientError::Server(ServerError { code, message }))
                }
                Response::Overloaded { queue_cap, retry_after_ms } => {
                    // The server answered before reading our request and
                    // will close; reconnect either way.
                    self.conn = None;
                    if attempts_left == 0 {
                        return Err(ClientError::Overloaded { queue_cap, retry_after_ms });
                    }
                    attempts_left -= 1;
                    std::thread::sleep(retry_sleep(retry_after_ms));
                }
            }
        }
    }

    /// Run one simulation and return its typed result. The client assigns
    /// a fresh `trace_id` (the request's first ingress), so the result's
    /// [`trace_id`](SimulateResult::trace_id) and client-measured
    /// [`e2e_ms`](SimulateResult::e2e_ms) are always populated; the
    /// server-side [`stages`](SimulateResult::stages) breakdown rides the
    /// `/3` payload.
    pub fn simulate(&mut self, spec: &SimulateReq) -> Result<SimulateResult, ClientError> {
        let trace_id = gen_trace_id();
        let started = std::time::Instant::now();
        let v = self.request_typed_line(&simulate_request_line(spec, Some(&trace_id)))?;
        let e2e_ms = started.elapsed().as_secs_f64() * 1e3;
        let mut result = SimulateResult::from_value(v)?;
        result.e2e_ms = e2e_ms;
        result.trace_id.get_or_insert(trace_id);
        Ok(result)
    }

    /// Run a batch of simulations under one deadline. The outer `Result`
    /// is the round trip; the inner per-item results isolate failures
    /// (one bad spec fails only its own slot).
    #[allow(clippy::type_complexity)]
    pub fn simulate_batch(
        &mut self,
        specs: &[SimulateReq],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Result<SimulateResult, ServerError>>, ClientError> {
        let trace_id = gen_trace_id();
        let started = std::time::Instant::now();
        let v = self.request_typed_line(&batch_request_line(
            specs,
            deadline_ms,
            None,
            Some(&trace_id),
        ))?;
        let e2e_ms = started.elapsed().as_secs_f64() * 1e3;
        let items = v
            .get("items")
            .and_then(Value::as_arr)
            .ok_or_else(|| ClientError::Protocol("batch result without `items`".into()))?;
        items
            .iter()
            .map(|item| match item.get("ok").and_then(Value::as_bool) {
                Some(true) => SimulateResult::from_value(item.clone()).map(|mut r| {
                    r.e2e_ms = e2e_ms;
                    r.trace_id.get_or_insert_with(|| trace_id.clone());
                    Ok(r)
                }),
                Some(false) => Ok(Err(ServerError {
                    code: item.get("code").and_then(Value::as_str).unwrap_or("unknown").to_string(),
                    message: item.get("message").and_then(Value::as_str).unwrap_or("").to_string(),
                })),
                None => Err(ClientError::Protocol(format!(
                    "batch item without `ok`: {}",
                    item.to_json()
                ))),
            })
            .collect()
    }

    /// Aggregate trace lines with the server's streaming analyzer and
    /// return the metrics exposition it produced.
    pub fn analyze(&mut self, trace: &[String]) -> Result<String, ClientError> {
        let v =
            self.request_typed_line(&analyze_request_line(trace, None, Some(&gen_trace_id())))?;
        v.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("analyze result without `exposition`".into()))
    }

    /// Fetch the server's live Prometheus exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.request_typed_line(&metrics_request_line(None, Some(&gen_trace_id())))?;
        v.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics result without `exposition`".into()))
    }
}
