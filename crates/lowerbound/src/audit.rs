//! The one-call lower-bound audit: run a universal simulation of a
//! `U[G₀]` guest, certify the protocol, and machine-check every lemma of
//! Section 3 on the concrete run.
//!
//! A passing audit does not *prove* the theorem (the theorem is about all
//! protocols); it proves that **this implementation's protocols satisfy
//! every structural fact the proof relies on**, which is the strongest
//! executable statement a reproduction can make about a lower bound.

use crate::averaging::{analyze, AveragingAnalysis};
use crate::fragments::{fragment_costs, FragmentCost};
use crate::g0::G0;
use crate::wavefront::{audit as wavefront_audit, WavefrontAudit};
use rand::rngs::StdRng;
use unet_core::routers::Router;
use unet_core::{Embedding, GuestComputation, Simulation};
use unet_pebble::analysis::{heavy_host_bound, heavy_hosts, metrics, SimulationMetrics};
use unet_pebble::fragment::{extract_fragment, GeneratorChoice};
use unet_topology::util::isqrt;
use unet_topology::Graph;

/// Everything the audit measured and checked.
#[derive(Debug)]
pub struct AuditReport {
    /// Simulation metrics (slowdown, inefficiency `k`, weights).
    pub metrics: SimulationMetrics,
    /// Lemma 3.12 (averaging) results.
    pub averaging: AveragingAnalysis,
    /// Lemma 3.15 / Prop. 3.17 (wavefront) results.
    pub wavefront: WavefrontAudit,
    /// Prop. 3.14 encoding costs per critical step.
    pub fragment_costs: Vec<FragmentCost>,
    /// Lemma 3.3 structural check (guest edges captured by `D_i`) held at
    /// every sampled critical step.
    pub fragments_structurally_valid: bool,
    /// Fraction of guests with `|D_i| ≤ n/√m` at the best critical step
    /// (Main Lemma property 3 wants `≥ γ`).
    pub small_d_fraction: f64,
    /// Measured heavy hosts never exceeded the averaging bound.
    pub heavy_host_bound_held: bool,
    /// Measured `(m, s)` is consistent with `m·s ≥ α·n·log m` at the
    /// chosen `alpha`.
    pub tradeoff_consistent: bool,
}

impl AuditReport {
    /// All mandatory checks passed.
    pub fn passed(&self) -> bool {
        self.averaging.all_bounds_hold()
            && self.averaging.z_s_large_enough
            && self.wavefront.monotone
            && self.wavefront.expansion_ok
            && self.fragments_structurally_valid
            && self.heavy_host_bound_held
            && self.tradeoff_consistent
    }
}

/// Run the full pipeline: sample a guest from `U[G₀]`, simulate it on
/// `host` for `steps` guest steps with the given router and embedding,
/// certify, and audit. `alpha_tradeoff` is the constant used for the final
/// `m·s ≥ α·n·log m` consistency check (use something ≤ 1; measured
/// simulations sit well above the shape).
#[allow(clippy::too_many_arguments)] // the audit takes the whole scenario by design
pub fn run_audit(
    g0: &G0,
    guest: &Graph,
    host: &Graph,
    embedding: Embedding,
    router: &dyn Router,
    steps: u32,
    alpha_tradeoff: f64,
    rng: &mut StdRng,
) -> AuditReport {
    assert!(
        guest.contains_subgraph(&g0.graph),
        "guest must contain G0 (sample it with random_supergraph)"
    );
    let comp = GuestComputation::random(guest.clone(), 0xdead_beef);
    let run = Simulation::builder()
        .guest(&comp)
        .host(host)
        .embedding(embedding)
        .router(router)
        .steps(steps)
        .run_with_rng(rng)
        .expect("audit scenario is a valid simulation");
    let verified = unet_core::verify_run(&comp, host, &run, steps).expect("simulation certifies");
    let trace = verified.trace;
    let mets = metrics(&trace);

    let averaging = analyze(&trace, g0);
    let wavefront = wavefront_audit(guest, &trace, g0.alpha, g0.beta);
    let costs = fragment_costs(&trace, g0, &averaging, host.max_degree());

    // Lemma 3.3 structure + Main Lemma property 3, sampled over Z_S.
    let n = trace.guest_n;
    let threshold = n / isqrt(trace.host_m).max(1);
    let mut structurally_valid = true;
    let mut best_small_frac = 0.0f64;
    for &t0 in averaging.z_s.iter().take(8) {
        if t0 >= trace.guest_t {
            continue;
        }
        if let Some(frag) = extract_fragment(&trace, t0, GeneratorChoice::LightestHost) {
            structurally_valid &= frag.verify_against_guest(guest).is_ok();
            let frac = frag.small_d_count(threshold.max(1)) as f64 / n as f64;
            best_small_frac = best_small_frac.max(frac);
        }
    }

    // Heavy-host averaging bound at each Z_S step.
    let mut heavy_ok = true;
    for &t0 in averaging.z_s.iter().take(8) {
        let heavy = heavy_hosts(&trace, t0, threshold.max(1));
        heavy_ok &= heavy.len() <= heavy_host_bound(&trace, t0, threshold.max(1));
    }

    let tradeoff_consistent = unet_core::bounds::consistent_with_lower_bound(
        n,
        trace.host_m,
        mets.slowdown,
        alpha_tradeoff,
    );

    AuditReport {
        metrics: mets,
        averaging,
        wavefront,
        fragment_costs: costs,
        fragments_structurally_valid: structurally_valid,
        small_d_fraction: best_small_frac,
        heavy_host_bound_held: heavy_ok,
        tradeoff_consistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g0::build_g0;
    use unet_topology::generators::{random_supergraph, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn full_audit_passes_on_small_instance() {
        let mut rng = seeded_rng(33);
        let g0 = build_g0(36, 1, &mut rng);
        let guest = random_supergraph(&g0.graph, 12, &mut rng);
        let host = torus(2, 2);
        let router = unet_core::routers::presets::bfs();
        let report = run_audit(
            &g0,
            &guest,
            &host,
            Embedding::block(36, 4),
            &router,
            6,
            0.1,
            &mut seeded_rng(34),
        );
        assert!(report.passed(), "audit failed: {report:#?}");
        assert!(report.metrics.inefficiency >= 1.0);
        // At m = 4 the small-D property is unattainable (every generator
        // host holds ≥ c+1 > n/√m guests); the audit reports 0 honestly.
        assert_eq!(report.small_d_fraction, 0.0);
    }

    #[test]
    fn small_d_property_emerges_with_local_traffic() {
        // Main Lemma property 3 (`|D_i| ≤ n/√m` for many `i`) holds when
        // pebble custody stays local. The regime that exhibits it at test
        // scale: torus guest, locality-preserving tile embedding (every
        // guest edge crosses to an adjacent host at most), so each host
        // holds only its own tile's pebbles plus a ring of neighbours —
        // about `load + perimeter` ≈ 16 < n/√m = 36.
        let guest = torus(18, 18);
        let host = torus(9, 9);
        let comp = unet_core::GuestComputation::random(guest.clone(), 5);
        let router = unet_core::routers::presets::torus_xy(9, 9);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::grid_tiles(18, 9))
            .router(&router)
            .steps(4)
            .run_with_rng(&mut seeded_rng(38))
            .expect("valid configuration");
        let trace = unet_pebble::check(&guest, &host, &run.protocol).unwrap();
        let n = 324usize;
        let threshold = n / isqrt(81); // 36
        let frag = extract_fragment(&trace, 2, GeneratorChoice::LightestHost).unwrap();
        frag.verify_against_guest(&guest).unwrap();
        let frac = frag.small_d_count(threshold) as f64 / n as f64;
        assert!(frac > 0.9, "small-D fraction {frac} too low");
        // And the transit-custody regime genuinely destroys it: the same
        // guest under a *random* embedding loses locality.
        let run2 = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::random(324, 81, &mut seeded_rng(39)))
            .router(&router)
            .steps(4)
            .run_with_rng(&mut seeded_rng(40))
            .expect("valid configuration");
        let trace2 = unet_pebble::check(&guest, &host, &run2.protocol).unwrap();
        let frag2 = extract_fragment(&trace2, 2, GeneratorChoice::LightestHost).unwrap();
        let frac2 = frag2.small_d_count(threshold) as f64 / n as f64;
        assert!(frac2 < frac, "random embedding should have denser D_i");
    }

    #[test]
    #[should_panic(expected = "must contain G0")]
    fn foreign_guest_rejected() {
        let mut rng = seeded_rng(35);
        let g0 = build_g0(36, 1, &mut rng);
        let guest = torus(4, 4); // does not contain G0's expander edges
        let host = torus(2, 2);
        let router = unet_core::routers::presets::bfs();
        run_audit(
            &g0,
            &guest,
            &host,
            Embedding::block(36, 4),
            &router,
            6,
            0.1,
            &mut seeded_rng(36),
        );
    }
}
