//! End-to-end tests of the serving layer: admission control, deadlines,
//! graceful drain, shared-cache behaviour, batching, and the metrics
//! round trip.

use unet_obs::json::Value;
use unet_obs::{MetricsRegistry, TraceAnalyzer};
use unet_serve::client::Client;
use unet_serve::loadgen::{self, LoadgenConfig};
use unet_serve::protocol::{
    analyze_request_line, batch_request_line, metrics_request_line, parse_response,
    simulate_request_line, Response, SimulateReq, PROTOCOL_V1, PROTOCOL_V2,
};
use unet_serve::{ServeConfig, Server};

fn sim_req(seed: u64) -> SimulateReq {
    SimulateReq {
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        steps: 3,
        seed,
        deadline_ms: None,
        id: Some(seed),
    }
}

fn start(workers: usize, queue_cap: usize) -> Server {
    Server::start(ServeConfig { workers, queue_cap, ..ServeConfig::default() })
        .expect("bind on 127.0.0.1:0")
}

/// One raw round trip on a fresh connection.
fn raw(addr: &str, line: &str) -> String {
    Client::connect(addr).expect("connect").request_raw(line).expect("round trip")
}

#[test]
fn simulate_request_round_trips_and_verifies() {
    let server = start(2, 8);
    let addr = server.addr().to_string();
    let resp = raw(&addr, &simulate_request_line(&sim_req(7), None));
    match parse_response(&resp).expect("valid response") {
        Response::Result(v) => {
            assert_eq!(v.get("req").and_then(Value::as_str), Some("simulate"));
            assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
            assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
            assert!(v.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(v.get("host_steps").and_then(Value::as_u64).unwrap() > 0);
        }
        other => panic!("expected result, got {other:?}"),
    }
    let report = server.drain();
    assert_eq!(report.stats.admitted, 1);
    assert_eq!(report.stats.completed, 1);
    assert_eq!(report.stats.rejected, 0);
}

#[test]
fn typed_client_returns_typed_results_and_errors() {
    let server = start(2, 8);
    let mut client = Client::connect(&server.addr().to_string())
        .expect("connect")
        .timeout(std::time::Duration::from_secs(30));
    let result = client.simulate(&sim_req(7)).expect("simulate");
    assert!(result.verified);
    assert!(result.slowdown >= 1.0);
    assert!(result.host_steps > 0);
    let mut bad = sim_req(1);
    bad.guest = "blah:3".into();
    match client.simulate(&bad) {
        Err(unet_serve::ClientError::Server(e)) => {
            assert_eq!(e.code, "bad-spec");
            assert!(e.message.contains("unknown graph family"));
        }
        other => panic!("expected typed server error, got {other:?}"),
    }
    // The connection survives the error and keeps serving.
    assert!(client.simulate(&sim_req(7)).is_ok());
    assert!(client.metrics().expect("metrics").contains("unet_serve_conns_admitted"));
    drop(client);
    server.drain();
}

#[test]
fn bad_specs_and_bad_requests_get_typed_errors() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut bad_spec = sim_req(1);
    bad_spec.guest = "blah:3".into();
    let resp = raw(&addr, &simulate_request_line(&bad_spec, None));
    match parse_response(&resp).expect("valid") {
        Response::Error { code, message, id } => {
            assert_eq!(code, "bad-spec");
            assert!(message.contains("unknown graph family"));
            assert_eq!(id, Some(1));
        }
        other => panic!("expected error, got {other:?}"),
    }
    let resp = raw(&addr, "this is not json");
    match parse_response(&resp).expect("valid") {
        Response::Error { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("expected error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn zero_queue_cap_rejects_with_typed_overloaded() {
    let server = start(1, 0);
    let addr = server.addr().to_string();
    let resp = raw(&addr, &metrics_request_line(None, None));
    match parse_response(&resp).expect("valid") {
        Response::Overloaded { queue_cap: 0, retry_after_ms: Some(hint) } => assert!(hint >= 1),
        other => panic!("expected overloaded with retry hint, got {other:?}"),
    }
    let report = server.drain();
    assert_eq!(report.stats.rejected, 1);
    assert_eq!(report.stats.admitted, 0);
}

#[test]
fn zero_deadline_is_cancelled_at_a_phase_boundary() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut req = sim_req(3);
    req.deadline_ms = Some(0);
    let resp = raw(&addr, &simulate_request_line(&req, None));
    match parse_response(&resp).expect("valid") {
        Response::Error { code, .. } => assert_eq!(code, "deadline-exceeded"),
        other => panic!("expected deadline error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn repeated_workload_hits_shared_cache_and_drains_clean() {
    let server = start(2, 32);
    let addr = server.addr().to_string();
    let report = loadgen::run(&LoadgenConfig {
        addr,
        clients: 2,
        requests_per_client: 8,
        batch: 1,
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        steps: 3,
        seed: 7,
        deadline_ms: None,
        warmup: true,
        shards: 1,
    })
    .expect("loadgen run");
    assert_eq!(report.sent, 17, "warm-up + 2 clients x 8");
    assert_eq!(report.completed, 17, "nothing rejected or errored");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.errors, 0);
    assert!(report.percentile_ms(99.0).is_some());

    let drained = server.drain();
    // Zero dropped in-flight requests across the drain.
    assert_eq!(drained.stats.completed, 17);
    assert_eq!(drained.stats.admitted, 3, "warm-up + one connection per client");
    // One workload, one compile: everything after the warm-up hits.
    assert_eq!(drained.stats.shared_misses, 1);
    assert_eq!(drained.stats.shared_hits, 16);
    assert!(drained.stats.hit_ratio().unwrap() > 0.9, "route-plan cache hit ratio > 0.9");
}

#[test]
fn batched_workload_coalesces_the_plan_build() {
    let server = start(4, 32);
    let addr = server.addr().to_string();
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        clients: 1,
        requests_per_client: 2,
        batch: 6,
        guest: "ring:24".into(),
        host: "torus:3x3".into(),
        steps: 3,
        seed: 11,
        deadline_ms: None,
        warmup: false,
        shards: 1,
    })
    .expect("loadgen run");
    assert_eq!(report.sent, 12, "2 round trips x 6 items");
    assert_eq!(report.completed, 12);
    assert_eq!(report.errors, 0);
    let drained = server.drain();
    // One cold batch: one plan build, five spared followers; the second
    // batch is all warm hits.
    assert_eq!(drained.stats.shared_misses, 1, "plan built exactly once");
    assert_eq!(drained.stats.shared_hits, 11);
    assert!(
        drained.stats.singleflight_followers >= 5,
        "cold batchmates counted as followers, got {}",
        drained.stats.singleflight_followers
    );
    assert!(drained.exposition.contains("unet_serve_planbuild_singleflight_followers"));
    assert!(drained.exposition.contains("unet_serve_batch_size"));
}

#[test]
fn mixed_fingerprint_batch_isolates_errors_per_item() {
    let server = start(2, 8);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let mut bad = sim_req(0);
    bad.host = "nonsense:1".into();
    let mut other_fp = sim_req(0);
    other_fp.guest = "ring:12".into();
    other_fp.host = "torus:2x2".into();
    let items =
        client.simulate_batch(&[sim_req(0), bad, other_fp], None).expect("batch round trip");
    assert_eq!(items.len(), 3);
    assert!(items[0].is_ok(), "good item unaffected: {:?}", items[0]);
    match &items[1] {
        Err(e) => {
            assert_eq!(e.code, "bad-spec");
            assert!(e.message.contains("unknown graph family"));
        }
        other => panic!("bad item should fail alone, got {other:?}"),
    }
    assert!(items[2].is_ok(), "different fingerprint unaffected: {:?}", items[2]);
    drop(client);
    let drained = server.drain();
    assert_eq!(drained.stats.shared_misses, 2, "two fingerprints, two builds");
}

#[test]
fn v1_client_gets_well_formed_v1_responses() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    // Golden /1 request lines, byte-for-byte what a PR-6 client sends.
    let golden_sim = format!(
        "{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"simulate\",\"guest\":\"ring:24\",\
         \"host\":\"torus:3x3\",\"steps\":3,\"seed\":7,\"id\":41}}"
    );
    let resp = raw(&addr, &golden_sim);
    let v = unet_obs::json::parse(&resp).expect("valid json");
    assert_eq!(v.get("proto").and_then(Value::as_str), Some(PROTOCOL_V1), "stamped /1");
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("result"));
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(41));
    assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
    let golden_metrics = format!("{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"metrics\",\"id\":9}}");
    let resp = raw(&addr, &golden_metrics);
    let v = unet_obs::json::parse(&resp).expect("valid json");
    assert_eq!(v.get("proto").and_then(Value::as_str), Some(PROTOCOL_V1));
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("result"));
    // A /1 error is stamped /1 too.
    let golden_bad = format!(
        "{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"simulate\",\"guest\":\"blah:3\",\
         \"host\":\"torus:3x3\",\"steps\":3}}"
    );
    let resp = raw(&addr, &golden_bad);
    let v = unet_obs::json::parse(&resp).expect("valid json");
    assert_eq!(v.get("proto").and_then(Value::as_str), Some(PROTOCOL_V1));
    assert_eq!(v.get("code").and_then(Value::as_str), Some("bad-spec"));
    server.drain();
}

#[test]
fn unknown_protocol_version_gets_typed_error_not_hangup() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let resp = raw(&addr, "{\"proto\":\"unet-serve/9\",\"kind\":\"metrics\"}");
    match parse_response(&resp).expect("a typed response, not a hangup") {
        Response::Error { code, message, .. } => {
            assert_eq!(code, "unsupported-protocol");
            assert!(message.contains("unet-serve/9"));
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    // A future client (trace context and all) against this server: still a
    // typed error naming the versions we do speak, and the connection
    // stays open for a corrected request — never a hangup. This is
    // exactly what a /3 client sees against a /2-era backend.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let future = "{\"proto\":\"unet-serve/4\",\"kind\":\"metrics\",\
                      \"trace\":{\"id\":\"deadbeefdeadbeef\"}}";
        writeln!(stream, "{future}").expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("typed error, not a hangup");
        match parse_response(resp.trim()).expect("parseable by an old client") {
            Response::Error { code, message, .. } => {
                assert_eq!(code, "unsupported-protocol");
                assert!(message.contains("unet-serve/3"), "names supported versions: {message}");
            }
            other => panic!("expected typed error, got {other:?}"),
        }
        // Same connection, supported version: serves fine.
        writeln!(stream, "{}", metrics_request_line(None, None)).expect("send");
        resp.clear();
        reader.read_line(&mut resp).expect("connection survived the version error");
        assert!(matches!(parse_response(resp.trim()), Ok(Response::Result(_))));
    }
    // Batch under /1 is also a typed error.
    let v1_batch = format!(
        "{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"batch\",\"items\":[\
         {{\"guest\":\"ring:8\",\"host\":\"torus:2x2\",\"steps\":1}}]}}"
    );
    let resp = raw(&addr, &v1_batch);
    match parse_response(&resp).expect("typed") {
        Response::Error { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("expected error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn responses_survive_a_drain_started_after_send() {
    // A request answered while the server drains must still reach the
    // client: send, drain, *then* read.
    use std::io::{BufRead, BufReader, Write};
    let server = start(1, 8);
    let addr = server.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    writeln!(stream, "{}", simulate_request_line(&sim_req(5), None)).expect("send");
    stream.flush().expect("flush");
    // Wait until the request is admitted so drain cannot race the accept.
    while server.stats().admitted == 0 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let report = server.drain();
    assert_eq!(report.stats.completed, 1, "in-flight request answered during drain");
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).expect("response readable after drain");
    assert!(matches!(parse_response(response.trim()), Ok(Response::Result(_))));
}

#[test]
fn batch_responses_survive_a_drain_started_after_send() {
    use std::io::{BufRead, BufReader, Write};
    let server = start(2, 8);
    let addr = server.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let line = batch_request_line(&[sim_req(5), sim_req(5), sim_req(6)], None, Some(77), None);
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    while server.stats().admitted == 0 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let report = server.drain();
    assert_eq!(report.stats.completed, 1, "the batch line answered during drain");
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).expect("response readable after drain");
    match parse_response(response.trim()).expect("valid") {
        Response::Result(v) => {
            assert_eq!(v.get("id").and_then(Value::as_u64), Some(77));
            let items = v.get("items").and_then(Value::as_arr).expect("items");
            assert_eq!(items.len(), 3);
            assert!(items.iter().all(|i| i.get("ok") == Some(&Value::Bool(true))));
        }
        other => panic!("expected batch result, got {other:?}"),
    }
}

#[test]
fn metrics_and_analyze_requests_expose_prometheus_text() {
    let server = start(2, 8);
    let addr = server.addr().to_string();
    raw(&addr, &simulate_request_line(&sim_req(2), None));
    let resp = raw(&addr, &metrics_request_line(Some(9), None));
    let exposition = match parse_response(&resp).expect("valid") {
        Response::Result(v) => v.get("exposition").and_then(Value::as_str).unwrap().to_string(),
        other => panic!("expected result, got {other:?}"),
    };
    assert!(exposition.contains("# TYPE unet_serve_conns_admitted counter"));
    assert!(exposition.contains("unet_sim_guest_steps 3"));
    assert!(exposition.contains("unet_serve_cache_shared_misses 1"));
    assert!(exposition.contains("unet_serve_planbuild_singleflight_followers"));

    // analyze: round-trip a trace through the wire protocol.
    let trace: Vec<String> = {
        use unet_obs::trace::{export, RunMeta};
        use unet_obs::{InMemoryRecorder, Recorder};
        let mut rec = InMemoryRecorder::new();
        rec.counter("sim.cache.hits", 4);
        let meta = RunMeta {
            command: "t".into(),
            guest: "g".into(),
            host: "h".into(),
            n: 1,
            m: 1,
            guest_steps: 1,
        };
        export(&rec, &meta, None).lines().map(str::to_string).collect()
    };
    let resp = raw(&addr, &analyze_request_line(&trace, None, None));
    match parse_response(&resp).expect("valid") {
        Response::Result(v) => {
            assert_eq!(v.get("lines").and_then(Value::as_u64), Some(trace.len() as u64));
            let expo = v.get("exposition").and_then(Value::as_str).unwrap();
            assert!(expo.contains("unet_sim_cache_hits 4"));
        }
        other => panic!("expected result, got {other:?}"),
    }
    // Malformed trace lines surface as typed bad-trace errors.
    let resp = raw(&addr, &analyze_request_line(&["not json".to_string()], Some(3), None));
    match parse_response(&resp).expect("valid") {
        Response::Error { code, message, id } => {
            assert_eq!(code, "bad-trace");
            assert!(message.contains("line 1"));
            assert_eq!(id, Some(3));
        }
        other => panic!("expected error, got {other:?}"),
    }
    server.drain();
}

#[test]
fn trace_context_threads_through_payload_drain_trace_and_exemplar() {
    let server = start(2, 8);
    let addr = server.addr().to_string();
    // An explicit client-assigned trace id is echoed in the /3 payload
    // together with the server's stage breakdown.
    let line = simulate_request_line(&sim_req(7), Some("00c0ffee00c0ffee"));
    let resp = raw(&addr, &line);
    let v = match parse_response(&resp).expect("valid") {
        Response::Result(v) => v,
        other => panic!("expected result, got {other:?}"),
    };
    assert_eq!(v.get("trace_id").and_then(Value::as_str), Some("00c0ffee00c0ffee"));
    let stages = v.get("stages").expect("stage breakdown in the /3 payload");
    assert!(stages.get("simulate").and_then(Value::as_f64).is_some(), "{}", v.to_json());
    assert!(stages.get("queue_wait").and_then(Value::as_f64).is_some(), "{}", v.to_json());

    let report = server.drain();
    // The drain trace carries the request record under the same id...
    let doc = unet_obs::trace::parse_trace(&report.trace).expect("valid drain trace");
    let rec = doc
        .requests_for("00c0ffee00c0ffee")
        .next()
        .expect("the traced request was sampled (errors+head+slow cover a 1-request run)");
    assert!(rec.ok);
    assert_eq!(rec.kind, "simulate");
    assert!(rec.stage_ms("serialize").is_some(), "record includes the write span");
    assert!(rec.e2e_ms > 0.0);
    assert!(
        rec.stage_total_ms() <= rec.e2e_ms * 1.05,
        "disjoint spans cannot exceed e2e: {} vs {}",
        rec.stage_total_ms(),
        rec.e2e_ms
    );
    // ...and the exposition links its slowest-latency series to the same
    // trace id as an exemplar.
    assert!(
        report.exposition.contains("# EXEMPLAR") && report.exposition.contains("00c0ffee00c0ffee"),
        "exemplar line present:\n{}",
        report.exposition
    );
}

#[test]
fn typed_client_reports_e2e_latency_and_server_stage_breakdown() {
    let server = start(2, 8);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let result = client.simulate(&sim_req(3)).expect("simulate");
    let trace_id = result.trace_id.as_deref().expect("client stamps a trace id");
    assert_eq!(trace_id.len(), 16, "16 hex digits: {trace_id:?}");
    assert!(trace_id.bytes().all(|b| b.is_ascii_hexdigit()));
    assert!(result.e2e_ms > 0.0, "client-measured end-to-end latency");
    assert!(
        result.stages.iter().any(|(s, _)| s == "simulate"),
        "server stage breakdown rode the payload: {:?}",
        result.stages
    );
    let span_sum: f64 = result.stages.iter().map(|(_, ms)| ms).sum();
    assert!(span_sum <= result.e2e_ms * 1.05, "spans within e2e: {span_sum} vs {}", result.e2e_ms);
    drop(client);
    server.drain();
}

#[test]
fn zero_head_rate_still_keeps_the_slow_tail() {
    // head_sample_permille: 0 turns off the head coin entirely; the tail
    // rule must still retain the slowest requests so a drain trace is
    // never empty on a quiet server.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        head_sample_permille: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    for seed in 0..3 {
        raw(&addr, &simulate_request_line(&sim_req(seed), None));
    }
    let report = server.drain();
    let doc = unet_obs::trace::parse_trace(&report.trace).expect("valid drain trace");
    assert!(!doc.requests.is_empty(), "slow tail kept despite 0-permille head rate");
    assert!(
        doc.requests.iter().all(|r| r.sampled == unet_obs::trace::SampleReason::Slow),
        "every keep is a tail keep: {:?}",
        doc.requests.iter().map(|r| r.sampled).collect::<Vec<_>>()
    );
}

#[test]
fn v2_golden_client_is_stamped_v2_and_sees_no_v3_fields() {
    let server = start(1, 8);
    let addr = server.addr().to_string();
    // Byte-for-byte what a PR-7-era /2 client sends.
    let golden = format!(
        "{{\"proto\":{PROTOCOL_V2:?},\"kind\":\"simulate\",\"guest\":\"ring:24\",\
         \"host\":\"torus:3x3\",\"steps\":3,\"seed\":7,\"id\":13}}"
    );
    let resp = raw(&addr, &golden);
    let v = unet_obs::json::parse(&resp).expect("valid json");
    assert_eq!(v.get("proto").and_then(Value::as_str), Some(PROTOCOL_V2), "stamped /2");
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("result"));
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(13));
    assert_eq!(v.get("verified"), Some(&Value::Bool(true)));
    // The trace additions are /3-only payload fields: an unupgraded
    // strict reader never sees keys it does not know.
    assert!(v.get("trace_id").is_none(), "no /3 fields in a /2 response: {}", v.to_json());
    assert!(v.get("stages").is_none(), "no /3 fields in a /2 response: {}", v.to_json());
    server.drain();
}

#[test]
fn drained_exposition_parses_back_through_the_streaming_analyzer() {
    // A MetricsRegistry built from a live serve run must parse back with
    // the analyzer's line discipline — the drain trace is valid JSONL and
    // from_analysis reproduces the server counters.
    let server = start(1, 8);
    let addr = server.addr().to_string();
    for seed in 0..3 {
        raw(&addr, &simulate_request_line(&sim_req(seed), None));
    }
    let report = server.drain();
    assert_eq!(report.stats.completed, 3);

    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in report.trace.lines().enumerate() {
        analyzer.feed_line(line, i + 1).expect("drain trace is valid JSONL");
    }
    let analysis = analyzer.finish().expect("complete trace");
    let reg = MetricsRegistry::from_analysis(&analysis);
    assert_eq!(reg.counter("serve.requests.completed"), Some(3));
    assert_eq!(reg.counter("serve.conns.admitted"), Some(3));
    assert_eq!(reg.counter("sim.guest_steps"), Some(9), "3 runs x 3 steps merged");
    // The re-derived exposition carries the same server series the live
    // one did (the live one additionally overlays cache atomics).
    let expo = reg.expose();
    assert!(expo.contains("unet_serve_requests_completed 3"));
    assert!(report.exposition.contains("unet_serve_requests_completed 3"));
    assert!(report.exposition.contains("unet_serve_cache_hit_ratio"));
}
