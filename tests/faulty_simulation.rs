//! End-to-end degraded-mode simulation: the ISSUE acceptance scenario.
//!
//! A crash-stop run on a butterfly host with 10% node faults must complete,
//! certify under `unet_pebble::check`, and reproduce the guest bit-for-bit;
//! dead hosts must stay idle forever; routing on a partitioned host must
//! return a typed error instead of panicking.

use universal_networks::core::prelude::*;
use universal_networks::faults::{DegradedSimulator, FaultPlan};
use universal_networks::pebble::{check, Op};
use universal_networks::routing::packet::{route_simple, RouteError};
use universal_networks::routing::ShortestPath;
use universal_networks::topology::generators::{butterfly::butterfly, random_regular};
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::{Graph, GraphBuilder};

#[test]
fn ten_percent_crashes_on_butterfly_certify_and_reproduce() {
    let dim = 3;
    let host = butterfly(dim); // m = 32
    let n = 96;
    let steps = 4;
    let guest = random_regular(n, 4, &mut seeded_rng(0xF1));
    let comp = GuestComputation::random(guest.clone(), 0xF2);
    let plan = FaultPlan::crashes(&host, 0.10, 2, 0xF3);
    assert_eq!(plan.len(), 3, "10% of 32 hosts = 3 crashes");

    let sim = DegradedSimulator {
        embedding: Embedding::block(n, host.n()),
        plan,
        selector: Some(ShortestPath),
    };
    let run = sim
        .simulate(&comp, &host, steps, &mut seeded_rng(0xF4))
        .expect("survivors remain at 10% faults");

    // The degraded protocol is an ordinary pebble protocol over the full
    // host — the Section 3.1 checker certifies it end-to-end.
    check(&guest, &host, &run.run.protocol).expect("degraded protocol certifies");

    // Bit-for-bit: the degraded run computes exactly what the guest would.
    assert_eq!(run.run.final_states, comp.run_final(steps));

    // The fault story is visible: hosts died, guests moved, pebbles were
    // shipped or replayed around the dead custody.
    assert_eq!(run.m_surviving, 29);
    assert_eq!(run.dead_at.len(), 3);
    assert!(run.remapped >= 3, "each dead host had guests to move");
    assert!(run.delivered > 0);

    // Crash-stop means *stop*: from its death step on, a dead host only
    // ever holds Idle ops.
    for &(q, step) in &run.dead_at {
        for (i, row) in run.run.protocol.steps.iter().enumerate().skip(step as usize) {
            assert_eq!(
                row[q as usize],
                Op::Idle,
                "dead host {q} acted at protocol step {i} (died at {step})"
            );
        }
    }
}

#[test]
fn degraded_run_slowdown_stays_above_surviving_size_bound() {
    let host = butterfly(3);
    let n = 96;
    let guest = random_regular(n, 4, &mut seeded_rng(1));
    let comp = GuestComputation::random(guest.clone(), 2);
    let sim = DegradedSimulator {
        embedding: Embedding::block(n, host.n()),
        plan: FaultPlan::crashes(&host, 0.2, 2, 3),
        selector: Some(ShortestPath),
    };
    let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(4)).expect("survivors remain");
    check(&guest, &host, &run.run.protocol).expect("certifies");
    // Theorem 3.1 on the surviving machine: k' = s·m'/n ≥ Ω(log m').
    let bound = bounds::lower_bound_inefficiency(run.m_surviving, 1.0);
    assert!(
        run.surviving_inefficiency() >= bound,
        "k' = {:.2} below the Thm 3.1 shape {:.2} on m' = {}",
        run.surviving_inefficiency(),
        bound,
        run.m_surviving
    );
}

#[test]
fn partitioned_host_routing_is_a_typed_error_not_a_panic() {
    // Two disjoint edges: {0–1} and {2–3}. No path crosses the gap.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1);
    b.add_edge(2, 3);
    let g: Graph = b.build();
    match route_simple(&g, &[(0, 2)]) {
        Err(RouteError::Unreachable { src: 0, dst: 2 }) => {}
        other => panic!("expected Unreachable, got {other:?}"),
    }
    let err = route_simple(&g, &[(1, 3)]).unwrap_err();
    assert!(err.to_string().contains("partitioned"));
}
