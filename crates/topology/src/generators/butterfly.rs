//! Butterfly and wrapped butterfly networks.
//!
//! The butterfly is the paper's canonical "good universal host" for `m ≤ n`
//! (Section 2): it has constant degree and solves any `h–h` routing problem in
//! `O(h · log m)` steps offline, which makes it `n`-universal with slowdown
//! `O((n/m)·log m)` — matching the lower bound of Theorem 3.1.

use crate::graph::{Graph, GraphBuilder, Node};

/// Vertex id of butterfly node `(level, row)` in a `dim`-dimensional
/// butterfly with `levels` levels (`dim + 1` for the ordinary butterfly,
/// `dim` for the wrapped one).
#[inline]
pub fn bf_index(dim: usize, level: usize, row: usize) -> Node {
    debug_assert!(row < (1usize << dim));
    (level * (1 << dim) + row) as Node
}

/// Inverse of [`bf_index`].
#[inline]
pub fn bf_coords(dim: usize, v: Node) -> (usize, usize) {
    let v = v as usize;
    (v / (1 << dim), v % (1 << dim))
}

/// `dim`-dimensional butterfly: `(dim + 1) · 2^dim` vertices `(ℓ, row)` with
/// `0 ≤ ℓ ≤ dim`, straight edges `(ℓ, r)–(ℓ+1, r)` and cross edges
/// `(ℓ, r)–(ℓ+1, r ⊕ 2^ℓ)`. Degree ≤ 4.
pub fn butterfly(dim: usize) -> Graph {
    let rows = 1usize << dim;
    let mut b = GraphBuilder::new((dim + 1) * rows);
    for level in 0..dim {
        for row in 0..rows {
            let v = bf_index(dim, level, row);
            b.add_edge(v, bf_index(dim, level + 1, row));
            b.add_edge(v, bf_index(dim, level + 1, row ^ (1 << level)));
        }
    }
    b.build()
}

/// Wrapped (cyclic) `dim`-dimensional butterfly: `dim · 2^dim` vertices,
/// levels taken mod `dim`, so level `dim − 1` connects back to level 0.
/// 4-regular for `dim ≥ 3`.
pub fn wrapped_butterfly(dim: usize) -> Graph {
    assert!(dim >= 1);
    let rows = 1usize << dim;
    let mut b = GraphBuilder::new(dim * rows);
    for level in 0..dim {
        let next = (level + 1) % dim;
        for row in 0..rows {
            let v = bf_index(dim, level, row);
            let straight = bf_index(dim, next, row);
            let cross = bf_index(dim, next, row ^ (1 << level));
            if v != straight {
                b.add_edge(v, straight);
            }
            if v != cross {
                b.add_edge(v, cross);
            }
        }
    }
    b.build()
}

/// Largest butterfly dimension such that the (ordinary) butterfly has at most
/// `m` vertices; returns `(dim, size)`.
pub fn butterfly_dim_for_size(m: usize) -> (usize, usize) {
    let mut dim = 0usize;
    loop {
        let next = (dim + 2) * (1usize << (dim + 1));
        if next > m {
            break;
        }
        dim += 1;
    }
    (dim, (dim + 1) * (1usize << dim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_counts() {
        let g = butterfly(3);
        assert_eq!(g.n(), 4 * 8);
        // dim levels of edges, each level 2 * 2^dim edges.
        assert_eq!(g.num_edges(), 3 * 2 * 8);
        assert!(g.max_degree() <= 4);
        // Interior level vertices have degree 4.
        assert_eq!(g.degree(bf_index(3, 1, 0)), 4);
        // Boundary levels have degree 2.
        assert_eq!(g.degree(bf_index(3, 0, 0)), 2);
        assert_eq!(g.degree(bf_index(3, 3, 5)), 2);
    }

    #[test]
    fn butterfly_edges_follow_bit_structure() {
        let g = butterfly(3);
        // (0, 0) connects straight to (1, 0) and cross to (1, 1).
        assert!(g.has_edge(bf_index(3, 0, 0), bf_index(3, 1, 0)));
        assert!(g.has_edge(bf_index(3, 0, 0), bf_index(3, 1, 1)));
        // (1, 0) crosses on bit 1 to (2, 2).
        assert!(g.has_edge(bf_index(3, 1, 0), bf_index(3, 2, 2)));
        assert!(!g.has_edge(bf_index(3, 0, 0), bf_index(3, 2, 0)));
    }

    #[test]
    fn wrapped_butterfly_regular() {
        for dim in 3..7 {
            let g = wrapped_butterfly(dim);
            assert_eq!(g.n(), dim << dim);
            assert_eq!(g.is_regular(), Some(4), "dim = {dim}");
        }
    }

    #[test]
    fn wrapped_butterfly_small_dims() {
        // dim = 1: 2 vertices; straight+cross collapse.
        let g = wrapped_butterfly(1);
        assert_eq!(g.n(), 2);
        // dim = 2 has parallel straight/cross edges collapsing; still valid.
        let g2 = wrapped_butterfly(2);
        assert_eq!(g2.n(), 8);
        assert!(g2.max_degree() <= 4);
    }

    #[test]
    fn connectivity() {
        use crate::analysis::is_connected;
        assert!(is_connected(&butterfly(4)));
        assert!(is_connected(&wrapped_butterfly(4)));
    }

    #[test]
    fn dim_for_size() {
        // dim 3: 4 * 8 = 32 nodes.
        assert_eq!(butterfly_dim_for_size(32), (3, 32));
        assert_eq!(butterfly_dim_for_size(33), (3, 32));
        assert_eq!(butterfly_dim_for_size(79), (3, 32));
        assert_eq!(butterfly_dim_for_size(80), (4, 80));
    }

    #[test]
    fn coords_roundtrip() {
        for v in 0..(4 * 8) as Node {
            let (l, r) = bf_coords(3, v);
            assert_eq!(bf_index(3, l, r), v);
        }
    }
}
