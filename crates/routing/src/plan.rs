//! Replayable route plans: the step-invariant skeleton of a routing run.
//!
//! For a *static* embedding, the induced `h–h` routing problem of Theorem 2.1
//! is identical at every guest step `gt > 1`: the same `(source, target)`
//! pairs, hence (for a deterministic seed) the same router schedule and the
//! same matching decomposition into pebble-game send/receive rounds. Only the
//! *payloads* — which pebble each packet carries — change per step.
//!
//! [`RoutePlan`] captures that skeleton once: the port-disjoint rounds of
//! `(from, to, packet)` transfers produced by the greedy Δ=2 matching
//! decomposition (at most 3 pebble steps per engine step — the Vizing/Shannon
//! bound the engine has always relied on). Replaying a plan with a fresh
//! payload table is then a tight loop over precomputed triples, skipping path
//! selection, queueing, and matching entirely.
//!
//! [`PlanCache`] stores one plan keyed by a fault **epoch** (see
//! `unet_faults::FaultyView::epoch`): any topology change bumps the epoch and
//! invalidates the cached schedule, so degraded runs always reroute around
//! fresh faults. Fault-free runs use a constant epoch and hit every step.

use crate::packet::Transfer;
use unet_topology::util::FxHashSet;
use unet_topology::Node;

/// One port-disjoint round: transfers that may share a pebble step.
pub type PlanRound = Vec<(Node, Node, u32)>;

/// A replayable transfer schedule: the matching decomposition of a routing
/// outcome into pebble-game rounds, with payloads left symbolic (each triple
/// carries the packet index to look the payload up by at replay time).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutePlan {
    /// Port-disjoint rounds, in emission order. Each round becomes exactly
    /// one pebble step; `rounds.len()` is the communication-step cost.
    pub rounds: Vec<PlanRound>,
}

impl RoutePlan {
    /// Number of pebble steps a replay of this plan emits.
    pub fn pebble_steps(&self) -> usize {
        self.rounds.len()
    }

    /// Total non-self transfers in the plan.
    pub fn transfer_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Decompose a packet-engine transfer schedule into a replayable
/// [`RoutePlan`].
///
/// The engine's port model allows a node to send *and* receive in the same
/// synchronous step; the pebble game allows only one operation per processor
/// per step. Each engine step's transfers form a multigraph of maximum
/// degree 2 (≤ 1 out, ≤ 1 in per node), so a greedy matching decomposition
/// needs at most 3 rounds per engine step. Self-transfers (lazy path
/// segments) are dropped — custody already covers them.
///
/// The greedy order is identical to the decomposition the sequential engine
/// has always performed inline, so replaying the extracted plan emits a
/// **bit-for-bit identical** protocol segment.
pub fn extract_plan(transfers: &[Transfer]) -> RoutePlan {
    let mut rounds: Vec<PlanRound> = Vec::new();
    let mut idx = 0usize;
    while idx < transfers.len() {
        // Slice out one engine step.
        let step = transfers[idx].step;
        let mut hi = idx;
        while hi < transfers.len() && transfers[hi].step == step {
            hi += 1;
        }
        let mut remaining: Vec<&Transfer> =
            transfers[idx..hi].iter().filter(|t| t.from != t.to).collect();
        while !remaining.is_empty() {
            let mut used: FxHashSet<Node> = FxHashSet::default();
            let mut round: PlanRound = Vec::new();
            let mut next_round = Vec::new();
            for t in remaining {
                if used.contains(&t.from) || used.contains(&t.to) {
                    next_round.push(t);
                    continue;
                }
                used.insert(t.from);
                used.insert(t.to);
                round.push((t.from, t.to, t.packet_id));
            }
            rounds.push(round);
            remaining = next_round;
        }
        idx = hi;
    }
    RoutePlan { rounds }
}

/// A one-slot route-plan cache keyed by fault epoch.
///
/// Holds an arbitrary cached value `T` (a [`RoutePlan`] plus whatever
/// metadata the caller needs to replay it) tagged with the epoch it was
/// computed under. A lookup at a different epoch misses and evicts; the
/// caller may impose *additional* validity checks (e.g. degraded mode
/// verifies the pair set still matches, since holder drift can change the
/// induced problem even between faults). Hit/miss totals feed the
/// `sim.cache.*` counters.
#[derive(Debug, Default)]
pub struct PlanCache<T> {
    entry: Option<(u64, T)>,
    hits: u64,
    misses: u64,
}

impl<T> PlanCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache { entry: None, hits: 0, misses: 0 }
    }

    /// Look up the cached value for `epoch`, applying the caller's extra
    /// validity predicate. Counts a hit or a miss; a stale-epoch or
    /// predicate-rejected entry is evicted so the slot is free for `store`.
    pub fn lookup<F: FnOnce(&T) -> bool>(&mut self, epoch: u64, valid: F) -> Option<&T> {
        let ok = matches!(&self.entry, Some((e, v)) if *e == epoch && valid(v));
        if ok {
            self.hits += 1;
            self.entry.as_ref().map(|(_, v)| v)
        } else {
            self.misses += 1;
            self.entry = None;
            None
        }
    }

    /// The cached value, without counting a hit or checking validity.
    /// Pair with [`PlanCache::lookup`]: check validity (which counts) first,
    /// then `peek` to borrow the entry without holding a `&mut` borrow.
    pub fn peek(&self) -> Option<&T> {
        self.entry.as_ref().map(|(_, v)| v)
    }

    /// Store a freshly computed value for `epoch`, replacing any entry.
    pub fn store(&mut self, epoch: u64, value: T) {
        self.entry = Some((epoch, value));
    }

    /// Lookups that returned the cached value.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing valid (including the initial cold miss).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(step: u32, from: Node, to: Node, packet_id: u32) -> Transfer {
        Transfer { step, from, to, packet_id }
    }

    #[test]
    fn extracts_port_disjoint_rounds() {
        // Step 0: 0→1 and 1→2 conflict on node 1 → two rounds.
        // Step 1: 2→3 alone → one round.
        let transfers = vec![t(0, 0, 1, 0), t(0, 1, 2, 1), t(1, 2, 3, 0)];
        let plan = extract_plan(&transfers);
        assert_eq!(plan.rounds.len(), 3);
        assert_eq!(plan.rounds[0], vec![(0, 1, 0)]);
        assert_eq!(plan.rounds[1], vec![(1, 2, 1)]);
        assert_eq!(plan.rounds[2], vec![(2, 3, 0)]);
        assert_eq!(plan.pebble_steps(), 3);
        assert_eq!(plan.transfer_count(), 3);
    }

    #[test]
    fn self_transfers_dropped() {
        let transfers = vec![t(0, 5, 5, 0), t(0, 1, 2, 1)];
        let plan = extract_plan(&transfers);
        assert_eq!(plan.rounds, vec![vec![(1, 2, 1)]]);
    }

    #[test]
    fn step_of_only_self_transfers_emits_nothing() {
        // filter leaves `remaining` empty, so the step contributes no round
        // (matching the engine, which never emitted an empty pebble step
        // for a lazy-only engine step).
        let transfers = vec![t(0, 4, 4, 0), t(1, 1, 2, 1)];
        let plan = extract_plan(&transfers);
        assert_eq!(plan.rounds.len(), 1);
    }

    #[test]
    fn disjoint_transfers_share_a_round() {
        let transfers = vec![t(0, 0, 1, 0), t(0, 2, 3, 1), t(0, 4, 5, 2)];
        let plan = extract_plan(&transfers);
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(plan.rounds[0].len(), 3);
    }

    #[test]
    fn delta_two_needs_at_most_three_rounds() {
        // A directed cycle 0→1→2→0 has in/out degree 1 everywhere; the
        // greedy decomposition uses ≤ 3 rounds (here exactly 2 or 3).
        let transfers = vec![t(0, 0, 1, 0), t(0, 1, 2, 1), t(0, 2, 0, 2)];
        let plan = extract_plan(&transfers);
        assert!(plan.rounds.len() <= 3);
        assert_eq!(plan.transfer_count(), 3);
    }

    #[test]
    fn cache_hits_and_epoch_invalidation() {
        let mut cache: PlanCache<u32> = PlanCache::new();
        assert!(cache.lookup(0, |_| true).is_none()); // cold miss
        cache.store(0, 7);
        assert_eq!(cache.lookup(0, |_| true), Some(&7));
        assert_eq!(cache.lookup(0, |_| true), Some(&7));
        // Epoch bump evicts.
        assert!(cache.lookup(1, |_| true).is_none());
        assert!(cache.lookup(1, |_| true).is_none(), "evicted, still cold");
        cache.store(1, 9);
        assert_eq!(cache.lookup(1, |_| true), Some(&9));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn cache_predicate_rejection_counts_as_miss() {
        let mut cache: PlanCache<u32> = PlanCache::new();
        cache.store(0, 7);
        assert!(cache.lookup(0, |&v| v == 8).is_none());
        assert_eq!(cache.misses(), 1);
        // The rejected entry was evicted.
        assert!(cache.lookup(0, |_| true).is_none());
    }
}
