//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Supports the `proptest!` macro with `pat in strategy` arguments, range /
//! tuple / `prop::collection::vec` / `any::<T>()` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Differences
//! from upstream: no shrinking (a failing case reports its arguments and
//! case index instead of a minimized input), and the deterministic RNG is
//! seeded per test from the test name so runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure (mirrors upstream's constructor used by the macros).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (only the field this workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over `T`'s whole domain (upstream `proptest::prelude::any`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

pub mod collection {
    //! Collection strategies (upstream `proptest::collection`).

    use super::{Rng, StdRng, Strategy};

    /// Inclusive length range for [`vec`](fn@crate::collection::vec) (upstream `SizeRange`). Built
    /// only from `usize`-typed ranges so untyped literals like `1..6`
    /// infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prelude`-shaped module tree (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The usual glob import surface.
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic per-test RNG; seeded from the test's name so each test has
/// an independent, reproducible stream.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Reject the current case (skip without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The `proptest!` test-suite macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]`-compatible function running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut rejects: u32 = 0;
                let mut ran: u32 = 0;
                while ran < cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let args_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        let mut $name = (); // shadow-proof the body against the fn name
                        let _ = &mut $name;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            assert!(
                                rejects < cfg.cases * 16 + 256,
                                "proptest {}: too many rejected cases ({rejects})",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {ran}: {msg}\n  inputs: {args_desc}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0u32..5, 0u8..2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for &(a, b) in &v {
                prop_assert!(a < 5 && b < 2);
            }
        }

        #[test]
        fn any_and_assume(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "inputs: x = ")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
