//! End-to-end verification: a universal simulation is *correct* iff
//!
//! 1. its pebble protocol satisfies every rule of the Section 3.1 model
//!    (checked by [`unet_pebble::check`](fn@unet_pebble::check)), and
//! 2. the host-computed final configurations equal the guest's direct run
//!    bit-for-bit.
//!
//! [`verify_run`] bundles both and returns the certified trace together with
//! measured metrics — the standard exit point of every experiment.

use crate::guest::GuestComputation;
use crate::simulate::SimulationRun;
use unet_pebble::analysis::{metrics, SimulationMetrics};
use unet_pebble::check::{check, Trace};
use unet_topology::Graph;

/// A fully verified simulation: certified protocol trace + metrics.
#[derive(Debug)]
pub struct VerifiedRun {
    /// The custody trace (input to all lower-bound analyses).
    pub trace: Trace,
    /// Measured metrics (slowdown, inefficiency, weights).
    pub metrics: SimulationMetrics,
}

/// Errors from [`verify_run`].
#[derive(Debug)]
pub enum VerifyError {
    /// The pebble protocol violates the simulation model.
    Protocol(unet_pebble::check::CheckError),
    /// The protocol is valid but the computed states are wrong.
    WrongStates {
        /// First guest node whose final state disagrees.
        node: u32,
        /// Host-computed value.
        got: u64,
        /// Reference value.
        want: u64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Protocol(e) => write!(f, "protocol violation: {e}"),
            VerifyError::WrongStates { node, got, want } => {
                write!(f, "state mismatch at P{node}: got {got:#x}, want {want:#x}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl SimulationRun {
    /// Certify this run, folding failures into [`SimError`](crate::SimError).
    ///
    /// This is [`verify_run`] adapted to the builder API's error type: use
    /// it when a `?`-chain already speaks `SimError` (the CLI and the
    /// experiment harnesses do); use [`verify_run`] directly when the
    /// caller wants to distinguish the [`VerifyError`] variants.
    pub fn verify(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
    ) -> Result<VerifiedRun, crate::SimError> {
        Ok(verify_run(comp, host, self, steps)?)
    }
}

/// Certify a [`SimulationRun`] against the guest computation and host graph.
pub fn verify_run(
    comp: &GuestComputation,
    host: &Graph,
    run: &SimulationRun,
    steps: u32,
) -> Result<VerifiedRun, VerifyError> {
    let trace = check(&comp.graph, host, &run.protocol).map_err(VerifyError::Protocol)?;
    let reference = comp.run_final(steps);
    for (i, (&got, &want)) in run.final_states.iter().zip(&reference).enumerate() {
        if got != want {
            return Err(VerifyError::WrongStates { node: i as u32, got, want });
        }
    }
    let metrics = metrics(&trace);
    Ok(VerifiedRun { trace, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::Embedding;
    use crate::routers::presets;
    use crate::sim::Simulation;
    use unet_topology::generators::{ring, torus};
    use unet_topology::util::seeded_rng;
    use unet_topology::Graph;

    fn run_ring8(comp: &GuestComputation, host: &Graph) -> SimulationRun {
        let router = presets::bfs();
        Simulation::builder()
            .guest(comp)
            .host(host)
            .embedding(Embedding::block(8, 4))
            .router(&router)
            .steps(2)
            .run_with_rng(&mut seeded_rng(1))
            .expect("valid configuration")
    }

    #[test]
    fn verified_run_bundles_metrics() {
        let guest = ring(8);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 1);
        let run = run_ring8(&comp, &host);
        let v = verify_run(&comp, &host, &run, 2).expect("verifies");
        assert_eq!(v.metrics.guest_n, 8);
        assert_eq!(v.metrics.host_m, 4);
        assert!(v.metrics.slowdown >= 2.0);
        assert!(v.metrics.inefficiency >= 1.0);
    }

    #[test]
    fn wrong_states_detected() {
        let guest = ring(8);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 1);
        let mut run = run_ring8(&comp, &host);
        run.final_states[3] ^= 1; // corrupt
        match verify_run(&comp, &host, &run, 2) {
            Err(VerifyError::WrongStates { node: 3, .. }) => {}
            other => panic!("expected WrongStates, got {other:?}"),
        }
    }

    #[test]
    fn run_verify_folds_into_sim_error() {
        let guest = ring(8);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 1);
        let mut run = run_ring8(&comp, &host);
        assert!(run.verify(&comp, &host, 2).is_ok());
        run.final_states[0] ^= 1;
        match run.verify(&comp, &host, 2) {
            Err(crate::SimError::Verify(VerifyError::WrongStates { node: 0, .. })) => {}
            other => panic!("expected SimError::Verify, got {other:?}"),
        }
    }

    #[test]
    fn protocol_corruption_detected() {
        let guest = ring(8);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 1);
        let mut run = run_ring8(&comp, &host);
        // Drop the last host step (removes final generations).
        run.protocol.steps.pop();
        assert!(matches!(verify_run(&comp, &host, &run, 2), Err(VerifyError::Protocol(_))));
    }
}
