//! # unet-topology — processor-network topologies
//!
//! The topology substrate for the reproduction of *"Optimal Trade-Offs
//! Between Size and Slowdown for Universal Parallel Networks"* (Meyer auf der
//! Heide, Storch, Wanka; SPAA 1995). A parallel processor network is a
//! constant-degree graph whose vertices are processors and whose edges are
//! communication links; this crate provides:
//!
//! * a compact immutable [`graph::Graph`] (CSR, `u32` ids) with set algebra
//!   (union/difference/subgraph) used to assemble the paper's `G₀`;
//! * [`generators`] for every family the paper names — meshes, tori, the
//!   `(a, n)`-multitorus of Definition 3.8, butterflies, cube-connected
//!   cycles, shuffle-exchange, de Bruijn, hypercubes, trees, complete
//!   networks, random regular graphs and expanders;
//! * [`analysis`] (BFS/diameter/spreading function), [`spectral`]
//!   (expander certification via Tanner's bound), [`euler`] (the balanced
//!   orientation device of Lemma 3.3) and [`enumeration`] (the counting side
//!   of the lower-bound argument).

#![deny(missing_docs)]

pub mod analysis;
pub mod enumeration;
pub mod euler;
pub mod generators;
pub mod graph;
pub mod par;
pub mod partition;
pub mod spectral;
pub mod util;

pub use graph::{Graph, GraphBuilder, Node};

/// Convenient glob-import surface: `use unet_topology::prelude::*;`.
pub mod prelude {
    pub use crate::analysis::{bfs_distances, diameter_exact, is_connected};
    pub use crate::generators::*;
    pub use crate::graph::{Graph, GraphBuilder, Node};
    pub use crate::util::seeded_rng;
}
