//! The unified [`MetricsRegistry`] behind `unet metrics`.
//!
//! Before this module, a run's operational numbers lived in three places:
//! fault-routing counters (`faults.route.delivered` / `dropped` /
//! `retried`) inside `unet-faults`, route-plan cache hit/miss counters
//! inside the simulation engine, and per-phase wall-time in the recorder's
//! span totals. The registry ingests an [`InMemoryRecorder`] (or a parsed
//! trace) and exposes all of them uniformly, in Prometheus text
//! exposition format:
//!
//! ```text
//! # TYPE unet_sim_cache_hits counter
//! unet_sim_cache_hits 3
//! # TYPE unet_sim_load gauge
//! unet_sim_load 3.0
//! # TYPE unet_phase_seconds_total counter
//! unet_phase_seconds_total{phase="sim.comm"} 0.000112
//! ```
//!
//! Metric names are the recorder names with `.` mapped to `_` and a
//! `unet_` prefix; span totals become the `unet_phase_seconds_total` /
//! `unet_phase_completions_total` families labelled by phase. Histograms
//! surface as `_count` / `_sum` / `_max` gauges (the full log₂ buckets
//! stay in the trace; the exposition carries the headline aggregates).
//!
//! A metric can carry an **exemplar** — one concrete `trace_id` plus the
//! observed value that produced it — linking the aggregate back to a
//! traced request (`unet trace-requests` resolves the id to a waterfall).
//! Exemplars are emitted as their own `# EXEMPLAR name{trace_id="…"} v`
//! comment line right after the metric, so the plain text exposition
//! format stays parseable by readers that only understand `name value`
//! lines.

use std::collections::BTreeMap;

use crate::analysis::Analysis;
use crate::recorder::{Histogram, InMemoryRecorder};

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
}

/// A unified, queryable registry of every counter, gauge, histogram
/// aggregate, and span timing a run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
    /// `phase -> (seconds, completions)`, labelled exposition family.
    phases: BTreeMap<String, (f64, u64)>,
    /// `sanitized metric name -> (trace_id, observed value)`.
    exemplars: BTreeMap<String, (String, f64)>,
}

fn sanitize(name: &str) -> String {
    let mapped: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("unet_{mapped}")
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a registry from everything a live recorder aggregated:
    /// counters (including the fault-routing and route-plan cache
    /// families), gauges, histogram headline stats, and per-phase span
    /// totals.
    pub fn from_recorder(rec: &InMemoryRecorder) -> Self {
        let mut reg = Self::new();
        for (name, v) in rec.counters() {
            reg.set_counter(name, v);
        }
        for (name, v) in rec.gauges() {
            reg.set_gauge(name, v);
        }
        for (name, h) in rec.histograms() {
            reg.ingest_histogram(name, h);
        }
        for (name, ns, count) in rec.span_totals() {
            reg.set_phase(name, ns as f64 / 1e9, count);
        }
        reg
    }

    /// Build a registry from a finished streaming [`Analysis`] — same
    /// surface as [`MetricsRegistry::from_recorder`], but sourced from a
    /// trace file instead of a live run.
    pub fn from_analysis(a: &Analysis) -> Self {
        let mut reg = Self::new();
        for (name, &v) in &a.counters {
            reg.set_counter(name, v);
        }
        for (name, &v) in &a.gauges {
            reg.set_gauge(name, v);
        }
        for (name, h) in &a.histograms {
            reg.ingest_histogram(name, h);
        }
        for (name, &(ns, count)) in &a.span_totals {
            reg.set_phase(name, ns as f64 / 1e9, count);
        }
        reg
    }

    /// Register/overwrite a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.metrics.insert(sanitize(name), Metric::Counter(value));
    }

    /// Register/overwrite a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.metrics.insert(sanitize(name), Metric::Gauge(value));
    }

    /// Register a phase's total seconds and completion count.
    pub fn set_phase(&mut self, phase: &str, seconds: f64, completions: u64) {
        self.phases.insert(phase.to_string(), (seconds, completions));
    }

    /// Attach an exemplar to a metric by its *recorder* name: one traced
    /// request's id and the value it observed. Later calls overwrite —
    /// callers typically keep the slowest sampled request per series.
    pub fn set_exemplar(&mut self, name: &str, trace_id: &str, value: f64) {
        self.exemplars.insert(sanitize(name), (trace_id.to_string(), value));
    }

    /// The exemplar attached to a metric, by its *recorder* name.
    pub fn exemplar(&self, name: &str) -> Option<(&str, f64)> {
        self.exemplars.get(&sanitize(name)).map(|(id, v)| (id.as_str(), *v))
    }

    fn ingest_histogram(&mut self, name: &str, h: &Histogram) {
        self.set_counter(&format!("{name}.count"), h.count);
        self.set_counter(&format!("{name}.sum"), u64::try_from(h.sum).unwrap_or(u64::MAX));
        self.set_gauge(&format!("{name}.max"), h.max as f64);
    }

    /// Value of a counter by its *recorder* name (pre-sanitization).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(&sanitize(name)) {
            Some(&Metric::Counter(v)) => Some(v),
            _ => None,
        }
    }

    /// Value of a gauge by its *recorder* name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(&sanitize(name)) {
            Some(&Metric::Gauge(v)) => Some(v),
            _ => None,
        }
    }

    /// `(seconds, completions)` of a phase by span name.
    pub fn phase(&self, name: &str) -> Option<(f64, u64)> {
        self.phases.get(name).copied()
    }

    /// Number of registered metrics (phases count once per family entry).
    pub fn len(&self) -> usize {
        self.metrics.len() + self.phases.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.phases.is_empty()
    }

    /// Render the Prometheus text exposition format: `# TYPE` headers,
    /// one `name value` line per metric, phases as labelled families.
    /// Deterministic: everything is sorted by name.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            match m {
                Metric::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
            }
            if let Some((trace_id, v)) = self.exemplars.get(name) {
                let trace_id = escape_label(trace_id);
                out.push_str(&format!("# EXEMPLAR {name}{{trace_id=\"{trace_id}\"}} {v}\n"));
            }
        }
        if !self.phases.is_empty() {
            out.push_str("# TYPE unet_phase_seconds_total counter\n");
            for (phase, &(secs, _)) in &self.phases {
                let phase = escape_label(phase);
                out.push_str(&format!("unet_phase_seconds_total{{phase=\"{phase}\"}} {secs}\n"));
            }
            out.push_str("# TYPE unet_phase_completions_total counter\n");
            for (phase, &(_, n)) in &self.phases {
                let phase = escape_label(phase);
                out.push_str(&format!("unet_phase_completions_total{{phase=\"{phase}\"}} {n}\n"));
            }
        }
        out
    }
}

/// Escape a label value per the Prometheus text exposition rules:
/// backslash, double quote, and newline must be escaped inside `"…"`.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn unifies_scattered_counter_families() {
        // The three previously scattered families all land in one place:
        // fault routing, route-plan cache, and phase wall time.
        let mut rec = InMemoryRecorder::new();
        rec.counter("faults.route.delivered", 9);
        rec.counter("faults.route.dropped", 1);
        rec.counter("faults.route.retried", 2);
        rec.counter("sim.cache.hits", 3);
        rec.counter("sim.cache.misses", 1);
        rec.span_start("sim.comm");
        rec.span_end("sim.comm");
        rec.gauge("sim.load", 3.0);
        rec.histogram("route.queue_occupancy", 4);

        let reg = MetricsRegistry::from_recorder(&rec);
        assert_eq!(reg.counter("faults.route.delivered"), Some(9));
        assert_eq!(reg.counter("sim.cache.hits"), Some(3));
        assert_eq!(reg.gauge("sim.load"), Some(3.0));
        assert_eq!(reg.counter("route.queue_occupancy.count"), Some(1));
        let (secs, n) = reg.phase("sim.comm").unwrap();
        assert_eq!(n, 1);
        assert!(secs >= 0.0);
        assert!(!reg.is_empty());
        assert!(reg.len() >= 8);
    }

    #[test]
    fn exposition_is_prometheus_shaped_and_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("sim.cache.hits", 3);
        reg.set_gauge("sim.load", 2.5);
        reg.set_phase("sim.comm", 0.125, 4);
        let text = reg.expose();
        assert!(text.contains("# TYPE unet_sim_cache_hits counter\nunet_sim_cache_hits 3\n"));
        assert!(text.contains("# TYPE unet_sim_load gauge\nunet_sim_load 2.5\n"));
        assert!(text.contains("unet_phase_seconds_total{phase=\"sim.comm\"} 0.125\n"));
        assert!(text.contains("unet_phase_completions_total{phase=\"sim.comm\"} 4\n"));
        // Sorted: cache line precedes load line.
        let hits = text.find("unet_sim_cache_hits").unwrap();
        let load = text.find("unet_sim_load").unwrap();
        assert!(hits < load);
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
            assert!(parts.next().unwrap().starts_with("unet_"));
        }
    }

    #[test]
    fn phase_labels_are_escaped_and_series_order_is_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.set_phase("odd\"phase\\with\nnasties", 1.0, 1);
        reg.set_phase("sim.comm", 2.0, 2);
        let text = reg.expose();
        // Backslash, quote, and newline are escaped per the Prometheus
        // text rules, so the line stays one line and parses.
        assert!(
            text.contains(r#"unet_phase_seconds_total{phase="odd\"phase\\with\nnasties"} 1"#),
            "{text}"
        );
        assert!(!text.contains("nasties\"} 1\nnasties"), "label must not split lines");
        for line in text.lines() {
            // After stripping escape pairs, the delimiter quotes balance.
            let bare = line.replace("\\\\", "").replace("\\\"", "");
            assert_eq!(bare.matches('"').count() % 2, 0, "unbalanced quotes: {line}");
        }
        // Series ordering is deterministic and sorted: repeated expositions
        // are byte-identical, and within a family labels sort by phase name.
        assert_eq!(text, reg.expose());
        let odd = text.find("odd\\\"phase").unwrap();
        let comm = text.find("phase=\"sim.comm\"").unwrap();
        assert!(odd < comm, "phases sort lexicographically:\n{text}");
    }

    #[test]
    fn exemplars_ride_their_metric_and_stay_comment_shaped() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("serve.request.latency_ms.count", 10);
        reg.set_exemplar("serve.request.latency_ms.count", "00000000c0ffee42", 87.5);
        assert_eq!(
            reg.exemplar("serve.request.latency_ms.count"),
            Some(("00000000c0ffee42", 87.5))
        );
        // Overwrite keeps the latest.
        reg.set_exemplar("serve.request.latency_ms.count", "deadbeefdeadbeef", 99.0);
        let text = reg.expose();
        assert!(
            text.contains(
                "# EXEMPLAR unet_serve_request_latency_ms_count{trace_id=\"deadbeefdeadbeef\"} 99\n"
            ),
            "{text}"
        );
        // The exemplar line follows its metric line immediately.
        let metric = text.find("unet_serve_request_latency_ms_count 10").unwrap();
        let exemplar = text.find("# EXEMPLAR").unwrap();
        assert!(exemplar > metric, "{text}");
        // Every non-comment line still parses as `name value` — exemplars
        // hide behind `#` for readers that only speak the plain format.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "bad line: {line}");
        }
        // An exemplar for an unregistered metric is queryable but never
        // emitted (nothing to attach it to).
        let mut orphan = MetricsRegistry::new();
        orphan.set_exemplar("ghost.metric", "ab", 1.0);
        assert!(!orphan.expose().contains("EXEMPLAR"));
    }

    #[test]
    fn registry_from_analysis_matches_from_recorder() {
        use crate::analysis::analyze_str;
        use crate::trace::{export, RunMeta};
        let mut rec = InMemoryRecorder::new();
        rec.span_start("sim.comm");
        rec.counter("sim.cache.hits", 2);
        rec.histogram("route.hops", 5);
        rec.span_end("sim.comm");
        let meta = RunMeta {
            command: "t".into(),
            guest: "g".into(),
            host: "h".into(),
            n: 1,
            m: 1,
            guest_steps: 1,
        };
        let text = export(&rec, &meta, None);
        let from_trace = MetricsRegistry::from_analysis(&analyze_str(&text).unwrap());
        let live = MetricsRegistry::from_recorder(&rec);
        assert_eq!(from_trace.counter("sim.cache.hits"), live.counter("sim.cache.hits"));
        assert_eq!(from_trace.counter("route.hops.count"), live.counter("route.hops.count"));
        assert_eq!(
            from_trace.phase("sim.comm").map(|(_, n)| n),
            live.phase("sim.comm").map(|(_, n)| n)
        );
    }
}
