//! The counting chain of Theorem 3.1, numerically.
//!
//! The theorem compares two quantities:
//!
//! * `|U[G₀]| ≥ n^{((c−12)/2)·n} · 2^{−δ·n}` — how many guests there are
//!   (graphs containing `G₀`, determined by their `(c−12)`-regular
//!   residual);
//! * `D(k) ≤ |A| · (q·k)^n · X` — how many guests admit `k`-inefficient
//!   simulations, with `|A| ≤ 2^{r·n·k}` (Lemma 3.13),
//!   `(q·k)^n` choices of generators (Prop. 3.6a) and multiplicity
//!   `X ≤ n^{((c−12)/2)n} / m^{(γ/2)·((c−12)/2)·n}` (Prop. 3.6b).
//!
//! Universality forces `D(k) ≥ |U[G₀]|`, i.e. (per node, in bits)
//!
//! ```text
//! r·k + log₂(q·k) + δ ≥ (γ·(c−12)/4)·log₂ m
//! ```
//!
//! whose solution `k_min(m)` is `Ω(log m)` — this module solves it exactly,
//! with the paper's constants or with measured/unit constants.

/// The constants of the counting argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountingParams {
    /// Guest degree `c` (paper: 16).
    pub c: u32,
    /// The `q` of Main Lemma property 2 (paper: 384).
    pub q: f64,
    /// The `r` of `|A| ≤ 2^{r·n·k}` (paper: `3472 + 384·log₂ d`).
    pub r: f64,
    /// The expander constant `γ = ½·α·(1 − 1/β)`.
    pub gamma: f64,
    /// The `δ` of the guest count (from Stirling; `O(1)`).
    pub delta: f64,
}

impl CountingParams {
    /// The paper's constants for a host of degree `d` and certified `γ`,
    /// with `δ` estimated from the Bender–Canfield count at size `n`.
    pub fn paper(host_degree: usize, gamma: f64, n: u64) -> Self {
        let c = 16u32;
        let sc = unet_topology::enumeration::log2_num_supergraphs(n, c as u64);
        CountingParams {
            c,
            q: 384.0,
            r: 3472.0 + 384.0 * (host_degree.max(2) as f64).log2(),
            gamma,
            delta: sc.delta_per_n.max(0.0),
        }
    }

    /// Unit-constant "shape" parameters: exposes the `Θ(log m)` behaviour
    /// without the proof's gigantic constants (the certified γ still scales
    /// the slope).
    pub fn shape(gamma: f64) -> Self {
        CountingParams { c: 16, q: 1.0, r: 1.0, gamma, delta: 0.0 }
    }

    /// Fully idealized constants (`q = r = γ = 1`, `δ = 0`): the solved
    /// bound becomes `k + log₂ k = log₂ m`, i.e. `k ≈ log₂ m` — the
    /// cleanest view of the theorem's `k = Ω(log m)` form.
    pub fn idealized() -> Self {
        CountingParams { c: 16, q: 1.0, r: 1.0, gamma: 1.0, delta: 0.0 }
    }
}

/// `log₂|U[G₀]|` (per the Bender–Canfield residual count).
pub fn log2_u_g0(n: u64, c: u32) -> f64 {
    unet_topology::enumeration::log2_num_supergraphs(n, c as u64).log2_count
}

/// `log₂ D(k)` upper bound from Lemma 3.5 (`≤ 0` terms clamped at the
/// formula level; can exceed `log₂|U[G₀]|`, at which point the argument
/// loses its grip — that is exactly the crossover `k_min`).
pub fn log2_d_k(n: u64, m: u64, k: f64, p: &CountingParams) -> f64 {
    let nf = n as f64;
    let resid = (p.c as f64 - 12.0) / 2.0;
    p.r * nf * k + nf * (p.q * k).max(1e-300).log2() + resid * nf * nf.log2()
        - 0.5 * p.gamma * resid * nf * (m as f64).log2()
}

/// The minimal inefficiency `k` compatible with universality: the solution
/// of `r·k + log₂(q·k) + δ = (γ·(c−12)/4)·log₂ m`, clamped below at 1
/// (inefficiency is ≥ 1 by definition when `s ≥ max(1, n/m)`).
pub fn k_min(m: u64, p: &CountingParams) -> f64 {
    let rhs = 0.25 * p.gamma * (p.c as f64 - 12.0) * (m as f64).log2() - p.delta;
    if rhs <= p.r + (p.q).log2() {
        return 1.0;
    }
    // Binary search on the increasing function f(k) = r·k + log₂(q·k).
    let f = |k: f64| p.r * k + (p.q * k).log2();
    let (mut lo, mut hi) = (1e-9, 1.0);
    while f(hi) < rhs {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < rhs {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi.max(1.0)
}

/// Minimal slowdown from `k_min`: `s = k·n/m` (at least 1).
pub fn s_min(n: u64, m: u64, p: &CountingParams) -> f64 {
    (k_min(m, p) * n as f64 / m as f64).max(1.0)
}

/// The corollary of Theorem 3.1 the paper states explicitly: the minimum
/// host size admitting slowdown ≤ `s` — for `s = O(1)` this is
/// `m = Ω(n·log n)`. Solved by binary search for the smallest `m` with
/// `s_min(n, m) ≤ s`.
pub fn min_size_for_slowdown(n: u64, s: f64, p: &CountingParams) -> u64 {
    assert!(s >= 1.0);
    let (mut lo, mut hi) = (1u64, 1u64);
    while s_min(n, hi, p) > s {
        hi = hi.saturating_mul(2);
        if hi >= u64::MAX / 2 {
            return u64::MAX;
        }
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if s_min(n, mid, p) > s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// One row of the trade-off table (experiment E2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffRow {
    /// Host size.
    pub m: u64,
    /// Lower-bound inefficiency `k_min` (shape constants).
    pub k_shape: f64,
    /// Lower-bound inefficiency with idealized constants (`≈ log₂ m`).
    pub k_ideal: f64,
    /// Lower-bound inefficiency with the paper's constants.
    pub k_paper: f64,
    /// Lower-bound slowdown `s_min` (shape).
    pub s_shape: f64,
    /// Upper-bound slowdown `(n/m)·log₂ m` (Theorem 2.1 + butterfly).
    pub s_upper: f64,
    /// The product `m·s_shape` (the trade-off invariant `Ω(n·log m)`).
    pub ms_product: f64,
}

/// Compute the trade-off table over a host-size sweep for fixed guest size.
pub fn tradeoff_table(n: u64, ms: &[u64], gamma: f64, host_degree: usize) -> Vec<TradeoffRow> {
    let shape = CountingParams::shape(gamma);
    let ideal = CountingParams::idealized();
    let paper = CountingParams::paper(host_degree, gamma, n);
    ms.iter()
        .map(|&m| {
            let k_shape = k_min(m, &shape);
            let s_shape = s_min(n, m, &shape);
            TradeoffRow {
                m,
                k_shape,
                k_ideal: k_min(m, &ideal),
                k_paper: k_min(m, &paper),
                s_shape,
                s_upper: (n as f64 / m as f64).max(1.0) * (m as f64).log2(),
                ms_product: m as f64 * s_shape,
            }
        })
        .collect()
}

/// The crossover check of the proof: the smallest `k` at which
/// `log₂ D(k) ≥ log₂|U[G₀]|` (evaluated directly rather than via the
/// simplified per-node inequality). `|U[G₀]|` is taken in the paper's form
/// `n^{((c−12)/2)·n} · 2^{−δ·n}` using the *same* `δ` as the parameters —
/// the two sides of the proof share it, so mixing in an independent
/// estimate would smuggle a different constant into the inequality.
/// Agrees with [`k_min`] up to the per-node simplification.
pub fn crossover_k(n: u64, m: u64, p: &CountingParams) -> f64 {
    let resid = (p.c as f64 - 12.0) / 2.0;
    let target = resid * n as f64 * (n as f64).log2() - p.delta * n as f64;
    let f = |k: f64| log2_d_k(n, m, k, p);
    let (mut lo, mut hi) = (1e-9, 1.0);
    while f(hi) < target {
        hi *= 2.0;
        if hi > 1e12 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    const GAMMA: f64 = 0.1;

    #[test]
    fn k_min_grows_logarithmically() {
        let p = CountingParams::shape(GAMMA);
        let k1 = k_min(1 << 10, &p);
        let k2 = k_min(1 << 20, &p);
        let k3 = k_min(1 << 40, &p);
        // log m doubles ⇒ k roughly doubles (affine in log m).
        assert!(k2 > k1);
        assert!(k3 > k2);
        // k solves k + log₂ k = Θ(log m): asymptotically linear in log m,
        // with a slowly decaying log correction — accept a generous band
        // around the doubling ratio.
        let d21 = k2 - k1;
        let d32 = k3 - k2;
        let ratio = d32 / d21;
        assert!((1.2..=3.5).contains(&ratio), "growth ratio {ratio} out of band");
    }

    #[test]
    fn k_min_solves_the_equation() {
        let p = CountingParams::shape(GAMMA);
        let m = 1u64 << 30;
        let k = k_min(m, &p);
        let rhs = 0.25 * GAMMA * 4.0 * 30.0;
        let lhs = p.r * k + (p.q * k).log2();
        assert!((lhs - rhs).abs() < 1e-6, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn paper_constants_are_huge() {
        // With r ≈ 3472 + 384·log d, k_min stays at the clamp (1.0) for any
        // realistic m — the honest reading of the paper's unoptimized
        // constants. The *shape* is what matters.
        let p = CountingParams::paper(4, GAMMA, 1 << 12);
        assert!(p.r > 3472.0);
        assert_eq!(k_min(1 << 20, &p), 1.0);
        // But for astronomically large m the bound does bite.
        let astronomical = k_min(u64::MAX, &p);
        assert!(astronomical >= 1.0);
    }

    #[test]
    fn tradeoff_table_shapes() {
        let n = 1u64 << 12;
        let ms: Vec<u64> = (4..=12).map(|e| 1u64 << e).collect();
        let rows = tradeoff_table(n, &ms, GAMMA, 4);
        assert_eq!(rows.len(), 9);
        for w in rows.windows(2) {
            // s_upper decreases with m (for m ≤ n)…
            assert!(w[1].s_upper <= w[0].s_upper * 1.01);
            // …while k_shape increases.
            assert!(w[1].k_shape >= w[0].k_shape);
        }
        // Lower bound below upper bound everywhere (consistency).
        for r in &rows {
            assert!(
                r.s_shape <= r.s_upper + 1e-9,
                "m = {}: lower {} above upper {}",
                r.m,
                r.s_shape,
                r.s_upper
            );
        }
    }

    #[test]
    fn crossover_exceeds_closed_form_floor() {
        let p = CountingParams::shape(GAMMA);
        let n = 1u64 << 12;
        let m = 1u64 << 10;
        let k = crossover_k(n, m, &p);
        assert!(k.is_finite());
        assert!(k > 0.0);
        // At the crossover, D(k) indeed reaches the paper-form |U[G0]|.
        let target = 2.0 * n as f64 * (n as f64).log2() - p.delta * n as f64;
        let diff = log2_d_k(n, m, k, &p) - target;
        assert!(diff.abs() < 1.0, "diff = {diff}");
        // And the crossover tracks k_min's closed form closely.
        let closed = k_min(m, &p);
        assert!((k - closed).abs() / closed < 0.5, "crossover {k} vs k_min {closed}");
    }

    #[test]
    fn constant_slowdown_needs_n_log_n_processors() {
        // The headline corollary: s = O(1) ⇒ m = Ω(n·log n) (idealized
        // constants give the clean form).
        let p = CountingParams::idealized();
        for e in [12u32, 16, 20] {
            let n = 1u64 << e;
            let m = min_size_for_slowdown(n, 2.0, &p);
            let ratio = m as f64 / (n as f64 * e as f64);
            assert!(ratio > 0.2 && ratio < 2.0, "n = 2^{e}: m = {m}, m/(n·log n) = {ratio}");
            // And it is achievable-compatible: s_min at that m is ≤ 2.
            assert!(s_min(n, m, &p) <= 2.0);
        }
    }

    #[test]
    fn idealized_k_is_nearly_log_m() {
        let p = CountingParams::idealized();
        for e in [10u32, 20, 40] {
            let k = k_min(1u64 << e, &p);
            // k + log₂ k = log₂ m = e ⇒ k = e − log₂ k ∈ [e − log₂ e, e].
            assert!(k <= e as f64 && k >= e as f64 - (e as f64).log2() - 1.0, "e={e} k={k}");
        }
    }

    #[test]
    fn d_k_monotone_in_k() {
        let p = CountingParams::shape(GAMMA);
        let a = log2_d_k(1 << 12, 1 << 10, 1.0, &p);
        let b = log2_d_k(1 << 12, 1 << 10, 2.0, &p);
        assert!(b > a);
    }
}
