//! `SimError` — the unified fallible surface of the simulation engine.
//!
//! Historically the engine front door was `EmbeddingSimulator` with
//! panicking asserts; every malformed configuration (zero steps, an
//! embedding sized for a different guest or host, a router bound to a
//! different topology) aborted the process — and several of those were
//! reachable from CLI input. [`SimError`] replaces all of them: the
//! [`Simulation`](crate::sim::Simulation) builder validates up front and
//! returns `Result<SimulationRun, SimError>`, and verification failures
//! fold into the same type via `From<VerifyError>`.

use crate::verify::VerifyError;

/// Everything that can go wrong configuring, running, or certifying a
/// universal simulation.
#[derive(Debug)]
pub enum SimError {
    /// A required builder field was never supplied.
    MissingField(&'static str),
    /// `steps == 0`: a simulation must run at least one guest step.
    ZeroSteps,
    /// The embedding's domain size disagrees with the guest computation.
    GuestMismatch {
        /// `embedding.n()`.
        embedding_n: usize,
        /// `comp.n()`.
        guest_n: usize,
    },
    /// The embedding's range size disagrees with the host graph.
    HostMismatch {
        /// `embedding.m`.
        embedding_m: usize,
        /// `host.n()`.
        host_m: usize,
    },
    /// The host graph has no nodes (or the flooding host count is zero).
    EmptyHost,
    /// The router cannot operate on this host topology.
    Router {
        /// The router's `name()`.
        router: &'static str,
        /// Why the host was rejected.
        reason: String,
    },
    /// The run was cancelled cooperatively (explicit cancel or deadline)
    /// at a phase boundary before completing.
    Cancelled,
    /// The run completed but failed certification.
    Verify(VerifyError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingField(field) => {
                write!(f, "simulation builder is missing required field `{field}`")
            }
            SimError::ZeroSteps => write!(f, "simulate at least one guest step (steps >= 1)"),
            SimError::GuestMismatch { embedding_n, guest_n } => {
                write!(f, "embedding covers {embedding_n} guests but the computation has {guest_n}")
            }
            SimError::HostMismatch { embedding_m, host_m } => {
                write!(f, "embedding targets {embedding_m} hosts but the host graph has {host_m}")
            }
            SimError::EmptyHost => write!(f, "host must have at least one node"),
            SimError::Router { router, reason } => {
                write!(f, "router `{router}` rejected this host: {reason}")
            }
            SimError::Cancelled => {
                write!(f, "run cancelled (deadline or explicit cancel) at a phase boundary")
            }
            SimError::Verify(e) => write!(f, "certification failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for SimError {
    fn from(e: VerifyError) -> Self {
        SimError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        assert!(SimError::ZeroSteps.to_string().contains("at least one"));
        assert!(SimError::MissingField("router").to_string().contains("`router`"));
        let g = SimError::GuestMismatch { embedding_n: 8, guest_n: 12 };
        assert!(g.to_string().contains('8') && g.to_string().contains("12"));
        let h = SimError::HostMismatch { embedding_m: 4, host_m: 9 };
        assert!(h.to_string().contains('4') && h.to_string().contains('9'));
        let r = SimError::Router { router: "benes-offline", reason: "wrong size".into() };
        assert!(r.to_string().contains("benes-offline"));
        assert!(SimError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn verify_error_folds_in_with_source() {
        use std::error::Error;
        let e: SimError = VerifyError::WrongStates { node: 3, got: 1, want: 2 }.into();
        assert!(matches!(e, SimError::Verify(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("P3"));
    }
}
