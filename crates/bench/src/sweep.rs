//! The sharded sweep runner: execute any subset of the registry's grids
//! in parallel and merge deterministically.
//!
//! Grid points are independent by construction ([`crate::registry`]
//! runners are pure functions of their point), so the runner shards them
//! across threads with [`unet_topology::par::par_map`] — which preserves
//! input order — and merges results **in grid order**, never completion
//! order. Two runs of the same grid therefore produce identical
//! measurements regardless of thread count; only the `wall_ms` columns
//! (which record real elapsed time) vary between runs.
//!
//! Resume-from-partial works at row granularity: a row in a prior
//! artifact whose grid-key projection ([`crate::registry::row_key`])
//! matches a grid point is kept verbatim and the point is not re-run.
//! [`run_to_file`] additionally streams — the artifact is rewritten after
//! every experiment completes — so an interrupted sweep loses at most one
//! experiment's worth of work.

use crate::registry::{registry, row_key, Experiment, BASE_SEED};
use crate::schema::{git_rev, BenchDoc, ExperimentResult, SCHEMA};
use unet_obs::json::Value;
use unet_topology::par::{default_threads, par_map};

/// What to sweep: grid size, experiment subset, shard count.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Use the CI-smoke grids (seconds) instead of the full grids.
    pub quick: bool,
    /// Keep only experiments whose id matches (case-insensitive); `None`
    /// runs everything.
    pub filter: Option<Vec<String>>,
    /// Worker threads for sharding grid points.
    pub threads: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { quick: false, filter: None, threads: default_threads() }
    }
}

impl SweepOptions {
    /// Parse a `--filter` argument: comma-separated ids (`e1,E17`).
    pub fn parse_filter(raw: &str) -> Vec<String> {
        raw.split(',').map(|s| s.trim().to_ascii_uppercase()).filter(|s| !s.is_empty()).collect()
    }

    /// Does `id` pass the filter?
    pub fn selects(&self, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(ids) => ids.iter().any(|f| f.eq_ignore_ascii_case(id)),
        }
    }
}

/// Run one experiment's grid, sharded across `threads` workers, reusing
/// rows from `prior` whose grid keys match. Rows come back in grid order;
/// `wall_ms_total` is the sum of the per-row `wall_ms` column, so merged
/// (partly resumed) artifacts stay self-consistent.
pub fn run_experiment(
    exp: &Experiment,
    quick: bool,
    threads: usize,
    prior: Option<&ExperimentResult>,
) -> ExperimentResult {
    let grid = (exp.grid)(quick);
    let have: Vec<(String, &Value)> = prior
        .map(|p| {
            p.rows.iter().filter_map(|row| row_key(row, exp.grid_keys).map(|k| (k, row))).collect()
        })
        .unwrap_or_default();
    let todo: Vec<_> = grid
        .iter()
        .filter(|p| !have.iter().any(|(k, _)| *k == p.key(exp.grid_keys)))
        .cloned()
        .collect();
    let fresh = par_map(&todo, threads, |p| (exp.run)(p));
    let mut fresh_iter = fresh.into_iter();
    let rows: Vec<Value> = grid
        .iter()
        .map(|p| {
            let key = p.key(exp.grid_keys);
            match have.iter().find(|(k, _)| *k == key) {
                Some((_, row)) => (*row).clone(),
                None => fresh_iter.next().expect("one fresh row per un-resumed point"),
            }
        })
        .collect();
    let wall_ms_total = rows.iter().filter_map(|r| r.get("wall_ms").and_then(Value::as_f64)).sum();
    ExperimentResult {
        id: exp.id.to_string(),
        title: exp.title.to_string(),
        claim: exp.claim.to_string(),
        meta: (exp.meta)(quick),
        rows,
        wall_ms_total,
    }
}

fn assemble(opts: &SweepOptions, experiments: Vec<ExperimentResult>) -> BenchDoc {
    BenchDoc {
        schema: SCHEMA.into(),
        git_rev: git_rev(),
        seed: BASE_SEED,
        quick: opts.quick,
        experiments,
    }
}

/// Run the selected registry experiments in memory (no artifact I/O).
/// Used by `unet bench diff` for the fresh side of the comparison.
pub fn run_sweep(opts: &SweepOptions) -> BenchDoc {
    let experiments = registry()
        .iter()
        .filter(|e| opts.selects(e.id))
        .map(|e| run_experiment(e, opts.quick, opts.threads, None))
        .collect();
    assemble(opts, experiments)
}

/// Run the selected experiments and stream the artifact to `path`,
/// resuming from a prior (possibly partial) artifact at `path` when
/// `resume` is set. Experiments excluded by the filter keep their prior
/// results verbatim. Returns the final document together with one progress
/// line per experiment.
pub fn run_to_file(
    path: &str,
    opts: &SweepOptions,
    resume: bool,
) -> Result<(BenchDoc, Vec<String>), String> {
    let prior = if resume {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--resume: cannot read {path}: {e}"))?;
        let doc = BenchDoc::parse(&text).map_err(|e| format!("--resume: {path}: {e}"))?;
        if doc.quick != opts.quick {
            return Err(format!(
                "--resume: {path} was measured with quick={} but this run has quick={} — \
                 rows would not be comparable; delete the file or match the flag",
                doc.quick, opts.quick
            ));
        }
        Some(doc)
    } else {
        None
    };
    let reg = registry();
    let mut progress = Vec::new();
    // Pre-seed with prior results so an interrupt mid-run never loses them.
    let mut done: Vec<Option<ExperimentResult>> =
        reg.iter().map(|e| prior.as_ref().and_then(|p| p.experiment(e.id)).cloned()).collect();
    for (i, exp) in reg.iter().enumerate() {
        if !opts.selects(exp.id) {
            continue;
        }
        let prior_exp = done[i].take();
        let kept = prior_exp
            .as_ref()
            .map(|p| p.rows.iter().filter(|r| row_key(r, exp.grid_keys).is_some()).count())
            .unwrap_or(0);
        let result = run_experiment(exp, opts.quick, opts.threads, prior_exp.as_ref());
        progress.push(format!(
            "{}: {} rows ({} resumed), {:.1} ms",
            exp.id,
            result.rows.len(),
            kept.min(result.rows.len()),
            result.wall_ms_total
        ));
        done[i] = Some(result);
        let doc = assemble(opts, done.iter().flatten().cloned().collect());
        std::fs::write(path, doc.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    let doc = assemble(opts, done.into_iter().flatten().collect());
    Ok((doc, progress))
}

/// The outcome of evaluating one shape predicate against one experiment's
/// rows (from a fresh run or a parsed baseline).
#[derive(Debug, Clone)]
pub struct ShapeOutcome {
    /// Experiment id.
    pub exp: String,
    /// The predicate, as [`crate::shape::Shape::describe`] renders it.
    pub shape: String,
    /// `None` when the shape holds; the violation message otherwise.
    pub violation: Option<String>,
}

/// Evaluate every registry shape predicate against the experiments present
/// in `doc` (absent experiments are skipped — `unet bench diff` treats
/// those separately). This is the regression gate's core: it looks only at
/// *shapes*, never absolute timings.
pub fn check_shapes(doc: &BenchDoc) -> Vec<ShapeOutcome> {
    let mut out = Vec::new();
    for exp in registry() {
        let Some(result) = doc.experiment(exp.id) else { continue };
        for shape in (exp.shapes)() {
            out.push(ShapeOutcome {
                exp: exp.id.to_string(),
                shape: shape.describe(),
                violation: shape.check(&result.rows).err().map(|v| v.to_string()),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e2_only(quick: bool, threads: usize) -> SweepOptions {
        SweepOptions { quick, filter: Some(vec!["E2".into()]), threads }
    }

    /// Rows with the real-elapsed-time column removed: everything the
    /// sweep must reproduce deterministically.
    fn measurements(rows: &[Value]) -> Vec<Value> {
        rows.iter()
            .map(|r| match r {
                Value::Obj(fields) => {
                    Value::Obj(fields.iter().filter(|(k, _)| k != "wall_ms").cloned().collect())
                }
                other => other.clone(),
            })
            .collect()
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let a = run_sweep(&e2_only(true, 1));
        let b = run_sweep(&e2_only(true, 4));
        assert_eq!(measurements(&a.experiments[0].rows), measurements(&b.experiments[0].rows));
    }

    #[test]
    fn filter_selects_case_insensitively() {
        let opts = SweepOptions {
            filter: Some(SweepOptions::parse_filter("e1, E16")),
            ..SweepOptions::default()
        };
        assert!(opts.selects("E1"));
        assert!(opts.selects("E16"));
        assert!(!opts.selects("E2"));
    }

    #[test]
    fn resume_keeps_matching_rows_verbatim() {
        let exp = registry().into_iter().find(|e| e.id == "E2").unwrap();
        let full = run_experiment(&exp, true, 2, None);
        // Drop half the rows; the re-run must regenerate exactly those.
        let mut partial = full.clone();
        partial.rows.truncate(full.rows.len() / 2);
        let resumed = run_experiment(&exp, true, 2, Some(&partial));
        // The kept half is byte-verbatim (same wall_ms), the regenerated
        // half matches on every measurement.
        assert_eq!(resumed.rows[..partial.rows.len()], partial.rows[..]);
        assert_eq!(measurements(&resumed.rows), measurements(&full.rows));
    }

    #[test]
    fn shapes_pass_on_a_fresh_quick_sweep() {
        let doc = run_sweep(&e2_only(true, 2));
        let outcomes = check_shapes(&doc);
        assert!(!outcomes.is_empty());
        for o in outcomes {
            assert!(o.violation.is_none(), "{} / {}: {:?}", o.exp, o.shape, o.violation);
        }
    }

    #[test]
    fn run_to_file_streams_and_resumes() {
        let dir = std::env::temp_dir().join("unet-bench-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let opts = e2_only(true, 2);
        let (doc, progress) = run_to_file(path, &opts, false).expect("first run");
        assert_eq!(doc.experiments.len(), 1);
        assert_eq!(progress.len(), 1);
        // Resume: everything matches, nothing re-runs, artifact unchanged.
        let before = std::fs::read_to_string(path).unwrap();
        let (doc2, _) = run_to_file(path, &opts, true).expect("resume");
        assert_eq!(doc2.experiments[0].rows, doc.experiments[0].rows);
        assert_eq!(std::fs::read_to_string(path).unwrap(), before);
        // Quick-flag mismatch is refused.
        let full = SweepOptions { quick: false, ..e2_only(false, 2) };
        let err = run_to_file(path, &full, true).unwrap_err();
        assert!(err.contains("quick"), "{err}");
        let _ = std::fs::remove_file(path);
    }
}
