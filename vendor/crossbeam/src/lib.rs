//! Offline shim for the subset of `crossbeam` 0.8 this workspace uses:
//! `crossbeam::thread::scope` + `ScopedJoinHandle::join`, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's scoped threads — hence the upstream dependency existing at
//! all). Semantics match the call sites' expectations: worker panics
//! surface through `join()`, and panics inside the main closure propagate
//! out of `scope` itself.

pub mod thread {
    //! Scoped threads (mirrors `crossbeam::thread`).

    use std::any::Any;

    /// Spawn scope handed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries the worker's panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. As in crossbeam, the closure receives the scope
        /// (allowing nested spawns), which call sites here ignore (`|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope in which borrowing locals is sound; all workers
    /// are joined before returning. Matching crossbeam's signature this
    /// returns `Result`, but — also matching crossbeam — a panic that the
    /// caller re-raises after `join()` propagates out of `scope` directly,
    /// so callers' `.expect("scope panicked")` never fires for worker
    /// panics they already handled.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn spawn_join_borrows_locals() {
        let data = vec![1u64, 2, 3, 4];
        let data = &data;
        let total = thread::scope(|scope| {
            let handles: Vec<_> =
                (0..2).map(|i| scope.spawn(move |_| data[i * 2] + data[i * 2 + 1])).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_via_join() {
        let caught = thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
