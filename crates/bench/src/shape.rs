//! Expected-shape predicates: the machine-checkable form of a paper claim.
//!
//! The paper's experimental claims are *shapes*, not absolute numbers:
//! Theorem 2.1 says the measured inefficiency `k = s·m/n` of a butterfly
//! host grows **affinely in `log m`**; Theorem 3.1 says every measured
//! point stays **above the `Ω(log m)` curve**; the engine experiments
//! (E17) say every `(threads, cache)` configuration emits the **same
//! protocol** and the cached rows keep their **speedup ordering**. A
//! [`Shape`] encodes one such claim as a predicate over the rows of a
//! benchmark artifact, so a regression gate (`unet bench diff`) can fail
//! when a change to the routers or the route-plan cache bends a curve —
//! while staying robust to machine noise, because no predicate compares
//! absolute timings between two runs.
//!
//! Shapes are plain data (no closures), so the same predicate evaluates
//! against a freshly measured run *and* against a committed baseline
//! artifact parsed back from `BENCH.json`.

use unet_obs::json::Value;

/// One expected-shape predicate over the rows of an experiment.
///
/// Every variant reads named columns out of each row (a JSON object as
/// emitted by the experiment registry) and checks a relation between them.
/// Missing or non-numeric columns are themselves violations: schema drift
/// must not silently pass the gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// Column `y` is affine in `log₂(x)`: all successive slopes
    /// `Δy / Δlog₂(x)` are positive and their max/min ratio is at most
    /// `max_slope_ratio`.
    ///
    /// This is the Theorem 2.1 upper-bound shape — `k = Θ(log m)` means a
    /// roughly constant inefficiency increment per butterfly dimension. A
    /// curve that is flat (slope → 0), decreasing, or polynomial in `x`
    /// (exponential in `log x`, slope ratio ≈ `x₂/x₁`) fails. With fewer
    /// than three rows the predicate passes trivially (a line fits any
    /// two points).
    AffineInLog {
        /// Column holding the size parameter (e.g. `host_m`).
        x: &'static str,
        /// Column holding the measured quantity (e.g. `inefficiency`).
        y: &'static str,
        /// Maximum allowed ratio between the largest and smallest
        /// successive slope (≥ 1; the measured E1 curve sits near 1.4,
        /// polynomial growth lands near `x₂/x₁` ≥ 2.5).
        max_slope_ratio: f64,
    },
    /// Every row satisfies `row[y] ≥ row[floor]` — the "no measured point
    /// dips below the lower-bound curve" claim, with the curve evaluated
    /// per row and stored alongside the measurement (e.g. E16's `k` vs
    /// `k_bound`, the Theorem 3.1 shape on the surviving size `m'`).
    AtLeastColumn {
        /// Column holding the measured quantity.
        y: &'static str,
        /// Column holding the per-row floor it must dominate.
        floor: &'static str,
    },
    /// Every row satisfies `row[y] ≥ alpha·log₂(row[x])` — the closed-form
    /// Theorem 3.1 floor `k = Ω(log m)` for experiments that do not embed
    /// the bound as its own column.
    FloorLog {
        /// Column holding the size parameter.
        x: &'static str,
        /// Column holding the measured quantity.
        y: &'static str,
        /// The symbolic constant `α` of the bound.
        alpha: f64,
    },
    /// All rows hold the identical value in `col` (JSON equality).
    ///
    /// E17's correctness claim: every `(threads, cache)` configuration
    /// yields the same `makespan`, the same `protocol_hash`, the same
    /// `states_hash` — bit-for-bit, so even one flipped bit in one row
    /// fails the gate.
    ConstantColumn {
        /// Column whose value must not vary across rows.
        col: &'static str,
    },
    /// Column `y` is non-decreasing as column `x` increases (rows are
    /// compared in artifact order after sorting by `x`).
    MonotoneInLog {
        /// Column holding the size parameter.
        x: &'static str,
        /// Column that must grow (weakly) with `x`.
        y: &'static str,
    },
    /// The row whose `key` column equals `fast` must have
    /// `wall ≤ factor · wall(slow)` — the speedup-*ordering* claim of E17
    /// (`seq-cached` beats `seq-uncached`), deliberately loose: `factor`
    /// allows for machine noise, and the check is skipped entirely when
    /// the slow row's wall time is under `min_wall_ms` (micro-timings are
    /// pure noise, e.g. on the `--quick` grid).
    SpeedupOrdering {
        /// Column identifying configurations (e.g. `config`).
        key: &'static str,
        /// Key value of the configuration that must be fast.
        fast: &'static str,
        /// Key value of the configuration it must not lose to.
        slow: &'static str,
        /// Column holding the wall-clock measurement.
        wall: &'static str,
        /// Allowed slack: fast ≤ factor × slow.
        factor: f64,
        /// Skip the check when `wall(slow)` is below this (milliseconds).
        min_wall_ms: f64,
    },
    /// The row whose `key` column equals `fast` must have
    /// `throughput ≥ factor · throughput(slow)` — the scale-out claim of
    /// E21 (4 shards sustain ≥ 3× the offered load of 1 shard at equal
    /// per-shard workers). Wall-clock scaling only exists when the shards
    /// actually run in parallel, so the check is skipped unless the fast
    /// row's `cores` column (recorded at measurement time from
    /// `available_parallelism`) is at least its `cores_needed` column —
    /// on a single-core CI runner the machine-independent E21 gates
    /// (per-shard balance, hit-ratio floor, zero failovers) still run,
    /// while this predicate arms itself automatically on real hardware.
    ThroughputScaling {
        /// Column identifying configurations (e.g. `config`).
        key: &'static str,
        /// Key value of the configuration that must scale.
        fast: &'static str,
        /// Key value of the baseline configuration.
        slow: &'static str,
        /// Column holding the throughput measurement (higher is better).
        throughput: &'static str,
        /// Required ratio: throughput(fast) ≥ factor × throughput(slow).
        factor: f64,
        /// Column holding the cores available when the row was measured.
        cores: &'static str,
        /// Column holding the cores the fast configuration needs for its
        /// shards to truly run in parallel.
        cores_needed: &'static str,
    },
    /// E17's cache-counter consistency: rows with `cache = true` must
    /// report exactly one miss (the cold comm phase) and at least one hit
    /// (the replays); rows with `cache = false` must report zero of both.
    /// Unlike wall time this is fully deterministic, so it is the primary
    /// regression signal for the route-plan cache.
    CacheCounters {
        /// Boolean column holding the cache setting.
        cache: &'static str,
        /// Column holding `sim.cache.hits`.
        hits: &'static str,
        /// Column holding `sim.cache.misses`.
        misses: &'static str,
    },
}

/// A failed shape check: which predicate, and a human-readable reason.
#[derive(Debug, Clone)]
pub struct ShapeViolation {
    /// Compact description of the predicate that failed.
    pub shape: String,
    /// What the rows actually looked like.
    pub detail: String,
}

impl std::fmt::Display for ShapeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.shape, self.detail)
    }
}

/// Extract a required numeric column or produce a schema violation.
fn num(row: &Value, col: &str, shape: &Shape) -> Result<f64, ShapeViolation> {
    row.get(col).and_then(Value::as_f64).ok_or_else(|| ShapeViolation {
        shape: shape.describe(),
        detail: format!("row is missing numeric column {col:?}: {}", row.to_json()),
    })
}

impl Shape {
    /// Compact one-line description, used in reports and violations.
    pub fn describe(&self) -> String {
        match self {
            Shape::AffineInLog { x, y, max_slope_ratio } => {
                format!("affine-in-log({y} vs log2 {x}, slope ratio <= {max_slope_ratio})")
            }
            Shape::AtLeastColumn { y, floor } => format!("{y} >= {floor}"),
            Shape::FloorLog { x, y, alpha } => format!("{y} >= {alpha}*log2({x})"),
            Shape::ConstantColumn { col } => format!("{col} constant across rows"),
            Shape::MonotoneInLog { x, y } => format!("{y} non-decreasing in {x}"),
            Shape::SpeedupOrdering { fast, slow, factor, .. } => {
                format!("wall({fast}) <= {factor}*wall({slow})")
            }
            Shape::ThroughputScaling { fast, slow, factor, .. } => {
                format!("throughput({fast}) >= {factor}*throughput({slow}) when cores allow")
            }
            Shape::CacheCounters { .. } => "cache counters consistent".into(),
        }
    }

    /// Evaluate the predicate against the rows of one experiment.
    pub fn check(&self, rows: &[Value]) -> Result<(), ShapeViolation> {
        let fail = |detail: String| Err(ShapeViolation { shape: self.describe(), detail });
        match *self {
            Shape::AffineInLog { x, y, max_slope_ratio } => {
                let mut pts = Vec::with_capacity(rows.len());
                for row in rows {
                    pts.push((num(row, x, self)?.log2(), num(row, y, self)?));
                }
                pts.sort_by(|a, b| a.0.total_cmp(&b.0));
                if pts.len() < 3 {
                    return Ok(()); // a line fits any two points
                }
                let slopes: Vec<f64> =
                    pts.windows(2).map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0)).collect();
                let (lo, hi) = slopes
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| (l.min(s), h.max(s)));
                if lo <= 0.0 {
                    return fail(format!("non-increasing segment: slopes {slopes:?}"));
                }
                if hi / lo > max_slope_ratio {
                    return fail(format!(
                        "slope ratio {:.2} exceeds {max_slope_ratio} (slopes {slopes:?}) — \
                         {y} is not affine in log2({x})",
                        hi / lo
                    ));
                }
                Ok(())
            }
            Shape::AtLeastColumn { y, floor } => {
                for row in rows {
                    let (yv, fv) = (num(row, y, self)?, num(row, floor, self)?);
                    if yv < fv {
                        return fail(format!("{y} = {yv:.3} dips below {floor} = {fv:.3}"));
                    }
                }
                Ok(())
            }
            Shape::FloorLog { x, y, alpha } => {
                for row in rows {
                    let (xv, yv) = (num(row, x, self)?, num(row, y, self)?);
                    let bound = alpha * xv.log2();
                    if yv < bound {
                        return fail(format!(
                            "{y} = {yv:.3} at {x} = {xv} dips below {alpha}*log2({x}) = {bound:.3}"
                        ));
                    }
                }
                Ok(())
            }
            Shape::ConstantColumn { col } => {
                let mut first: Option<&Value> = None;
                for row in rows {
                    let v = row.get(col).ok_or_else(|| ShapeViolation {
                        shape: self.describe(),
                        detail: format!("row is missing column {col:?}"),
                    })?;
                    match first {
                        None => first = Some(v),
                        Some(f0) if f0 != v => {
                            return fail(format!(
                                "{col} varies: {} vs {}",
                                f0.to_json(),
                                v.to_json()
                            ));
                        }
                        Some(_) => {}
                    }
                }
                Ok(())
            }
            Shape::MonotoneInLog { x, y } => {
                let mut pts = Vec::with_capacity(rows.len());
                for row in rows {
                    pts.push((num(row, x, self)?, num(row, y, self)?));
                }
                pts.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in pts.windows(2) {
                    if w[1].1 < w[0].1 {
                        return fail(format!(
                            "{y} decreases from {:.3} to {:.3} as {x} grows {} -> {}",
                            w[0].1, w[1].1, w[0].0, w[1].0
                        ));
                    }
                }
                Ok(())
            }
            Shape::SpeedupOrdering { key, fast, slow, wall, factor, min_wall_ms } => {
                let find = |label: &str| {
                    rows.iter().find(|r| r.get(key).and_then(Value::as_str) == Some(label))
                };
                let (Some(fr), Some(sr)) = (find(fast), find(slow)) else {
                    return fail(format!("rows for {fast:?} and {slow:?} not both present"));
                };
                let (fw, sw) = (num(fr, wall, self)?, num(sr, wall, self)?);
                if sw < min_wall_ms {
                    return Ok(()); // micro-timings are noise, not signal
                }
                if fw > factor * sw {
                    return fail(format!(
                        "{fast} took {fw:.1} ms vs {slow} {sw:.1} ms — speedup ordering lost"
                    ));
                }
                Ok(())
            }
            Shape::ThroughputScaling {
                key,
                fast,
                slow,
                throughput,
                factor,
                cores,
                cores_needed,
            } => {
                let find = |label: &str| {
                    rows.iter().find(|r| r.get(key).and_then(Value::as_str) == Some(label))
                };
                let (Some(fr), Some(sr)) = (find(fast), find(slow)) else {
                    return fail(format!("rows for {fast:?} and {slow:?} not both present"));
                };
                // Schema first: the columns must exist even when the
                // predicate ends up disarmed, so drift cannot hide.
                let (ft, st) = (num(fr, throughput, self)?, num(sr, throughput, self)?);
                let (have, need) = (num(fr, cores, self)?, num(fr, cores_needed, self)?);
                if have < need {
                    return Ok(()); // shards are time-sliced, not parallel
                }
                if ft < factor * st {
                    return fail(format!(
                        "{fast} sustained {ft:.1} items/s vs {slow} {st:.1} items/s on \
                         {have} cores — scale-out lost ({factor}x required)"
                    ));
                }
                Ok(())
            }
            Shape::CacheCounters { cache, hits, misses } => {
                for row in rows {
                    let on = matches!(row.get(cache), Some(Value::Bool(true)));
                    let (h, m) = (num(row, hits, self)?, num(row, misses, self)?);
                    if on && !(m == 1.0 && h >= 1.0) {
                        return fail(format!(
                            "cached row reports {h} hits / {m} misses (want 1 miss, >= 1 hit)"
                        ));
                    }
                    if !on && (h, m) != (0.0, 0.0) {
                        return fail(format!("uncached row reports {h} hits / {m} misses"));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(fields: &[(&str, Value)]) -> Value {
        Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    /// `k = 10 + 12·log₂(m)` — a clean Theorem 2.1 shape.
    fn affine_rows() -> Vec<Value> {
        [12u64, 32, 80, 192]
            .iter()
            .map(|&m| {
                row(&[
                    ("host_m", Value::UInt(m)),
                    ("inefficiency", Value::Float(10.0 + 12.0 * (m as f64).log2())),
                ])
            })
            .collect()
    }

    #[test]
    fn affine_in_log_accepts_the_theorem_shape() {
        let shape = Shape::AffineInLog { x: "host_m", y: "inefficiency", max_slope_ratio: 2.0 };
        shape.check(&affine_rows()).expect("clean affine curve passes");
    }

    #[test]
    fn affine_in_log_rejects_flat_and_polynomial_curves() {
        let shape = Shape::AffineInLog { x: "host_m", y: "inefficiency", max_slope_ratio: 2.0 };
        // Flat: a cache bug that made slowdown independent of m.
        let flat: Vec<Value> = [12u64, 32, 80, 192]
            .iter()
            .map(|&m| row(&[("host_m", Value::UInt(m)), ("inefficiency", Value::Float(55.0))]))
            .collect();
        assert!(shape.check(&flat).is_err(), "flat curve must fail");
        // Polynomial in m (exponential in log m): a router gone quadratic.
        let poly: Vec<Value> = [12u64, 32, 80, 192]
            .iter()
            .map(|&m| {
                row(&[("host_m", Value::UInt(m)), ("inefficiency", Value::Float(m as f64 * 2.0))])
            })
            .collect();
        assert!(shape.check(&poly).is_err(), "polynomial curve must fail");
        // Decreasing: slope turns negative.
        let dec: Vec<Value> = [12u64, 32, 80]
            .iter()
            .zip([50.0, 40.0, 30.0])
            .map(|(&m, k)| row(&[("host_m", Value::UInt(m)), ("inefficiency", Value::Float(k))]))
            .collect();
        assert!(shape.check(&dec).is_err(), "decreasing curve must fail");
    }

    #[test]
    fn affine_in_log_two_points_pass_trivially() {
        let shape = Shape::AffineInLog { x: "host_m", y: "inefficiency", max_slope_ratio: 1.1 };
        shape.check(&affine_rows()[..2]).expect("two points always fit a line");
    }

    #[test]
    fn at_least_column_catches_a_dip_below_the_bound() {
        let shape = Shape::AtLeastColumn { y: "k", floor: "k_bound" };
        let good = vec![
            row(&[("k", Value::Float(47.9)), ("k_bound", Value::Float(5.0))]),
            row(&[("k", Value::Float(5.0)), ("k_bound", Value::Float(5.0))]),
        ];
        shape.check(&good).expect("points on or above the curve pass");
        let bent = vec![row(&[("k", Value::Float(4.2)), ("k_bound", Value::Float(5.0))])];
        let err = shape.check(&bent).unwrap_err();
        assert!(err.detail.contains("dips below"), "{err}");
    }

    #[test]
    fn floor_log_is_the_thm31_curve() {
        let shape = Shape::FloorLog { x: "host_m", y: "inefficiency", alpha: 1.0 };
        let good =
            vec![row(&[("host_m", Value::UInt(1024)), ("inefficiency", Value::Float(10.0))])];
        shape.check(&good).expect("k = log2 m sits on the curve");
        let bent = vec![row(&[("host_m", Value::UInt(1024)), ("inefficiency", Value::Float(9.9))])];
        assert!(shape.check(&bent).is_err(), "a point below Thm 3.1 must fail");
    }

    #[test]
    fn constant_column_detects_a_single_flipped_bit() {
        let shape = Shape::ConstantColumn { col: "protocol_hash" };
        let same = vec![
            row(&[("protocol_hash", Value::UInt(0xDEAD))]),
            row(&[("protocol_hash", Value::UInt(0xDEAD))]),
        ];
        shape.check(&same).expect("identical hashes pass");
        let drift = vec![
            row(&[("protocol_hash", Value::UInt(0xDEAD))]),
            row(&[("protocol_hash", Value::UInt(0xDEAE))]),
        ];
        assert!(shape.check(&drift).is_err(), "one flipped bit must fail");
    }

    #[test]
    fn monotone_in_log_orders_by_x_before_checking() {
        let shape = Shape::MonotoneInLog { x: "host_m", y: "k_ideal" };
        // Rows deliberately out of order: the predicate sorts by x.
        let good = vec![
            row(&[("host_m", Value::UInt(512)), ("k_ideal", Value::Float(6.3))]),
            row(&[("host_m", Value::UInt(8)), ("k_ideal", Value::Float(2.0))]),
            row(&[("host_m", Value::UInt(64)), ("k_ideal", Value::Float(4.0))]),
        ];
        shape.check(&good).expect("monotone after sorting");
        let bent = vec![
            row(&[("host_m", Value::UInt(8)), ("k_ideal", Value::Float(2.0))]),
            row(&[("host_m", Value::UInt(64)), ("k_ideal", Value::Float(1.5))]),
        ];
        assert!(shape.check(&bent).is_err());
    }

    #[test]
    fn speedup_ordering_loose_but_not_blind() {
        let shape = Shape::SpeedupOrdering {
            key: "config",
            fast: "seq-cached",
            slow: "seq-uncached",
            wall: "wall_ms",
            factor: 1.5,
            min_wall_ms: 5.0,
        };
        let good = vec![
            row(&[("config", Value::Str("seq-uncached".into())), ("wall_ms", Value::Float(64.0))]),
            row(&[("config", Value::Str("seq-cached".into())), ("wall_ms", Value::Float(17.0))]),
        ];
        shape.check(&good).expect("real speedup passes");
        // Losing the ordering outright (cache regression) fails…
        let lost = vec![
            row(&[("config", Value::Str("seq-uncached".into())), ("wall_ms", Value::Float(64.0))]),
            row(&[("config", Value::Str("seq-cached".into())), ("wall_ms", Value::Float(120.0))]),
        ];
        assert!(shape.check(&lost).is_err());
        // …but micro-timings below the noise floor are skipped.
        let tiny = vec![
            row(&[("config", Value::Str("seq-uncached".into())), ("wall_ms", Value::Float(0.8))]),
            row(&[("config", Value::Str("seq-cached".into())), ("wall_ms", Value::Float(2.0))]),
        ];
        shape.check(&tiny).expect("noise floor guard");
        // A missing configuration is a schema violation, not a pass.
        assert!(shape.check(&good[..1]).is_err());
    }

    #[test]
    fn throughput_scaling_armed_only_when_cores_allow() {
        let shape = Shape::ThroughputScaling {
            key: "config",
            fast: "s4",
            slow: "s1",
            throughput: "throughput_rps",
            factor: 3.0,
            cores: "cores",
            cores_needed: "cores_needed",
        };
        let rows = |fast_tp: f64, cores: u64| {
            vec![
                row(&[
                    ("config", Value::Str("s1".into())),
                    ("throughput_rps", Value::Float(100.0)),
                    ("cores", Value::UInt(cores)),
                    ("cores_needed", Value::UInt(1)),
                ]),
                row(&[
                    ("config", Value::Str("s4".into())),
                    ("throughput_rps", Value::Float(fast_tp)),
                    ("cores", Value::UInt(cores)),
                    ("cores_needed", Value::UInt(4)),
                ]),
            ]
        };
        shape.check(&rows(350.0, 8)).expect("3.5x on 8 cores passes");
        assert!(shape.check(&rows(150.0, 8)).is_err(), "1.5x on 8 cores fails the 3x gate");
        shape.check(&rows(150.0, 1)).expect("time-sliced single-core runner is skipped");
        // Missing rows or columns are schema violations even when the
        // predicate would be disarmed.
        assert!(shape.check(&rows(350.0, 8)[..1]).is_err());
        let no_cores = vec![
            row(&[("config", Value::Str("s1".into())), ("throughput_rps", Value::Float(1.0))]),
            row(&[("config", Value::Str("s4".into())), ("throughput_rps", Value::Float(9.0))]),
        ];
        assert!(shape.check(&no_cores).is_err(), "cores columns must exist");
    }

    #[test]
    fn cache_counters_deterministic_signal() {
        let shape =
            Shape::CacheCounters { cache: "cache", hits: "cache_hits", misses: "cache_misses" };
        let good = vec![
            row(&[
                ("cache", Value::Bool(true)),
                ("cache_hits", Value::UInt(6)),
                ("cache_misses", Value::UInt(1)),
            ]),
            row(&[
                ("cache", Value::Bool(false)),
                ("cache_hits", Value::UInt(0)),
                ("cache_misses", Value::UInt(0)),
            ]),
        ];
        shape.check(&good).expect("expected counter pattern");
        let cold_every_step = vec![row(&[
            ("cache", Value::Bool(true)),
            ("cache_hits", Value::UInt(0)),
            ("cache_misses", Value::UInt(7)),
        ])];
        assert!(shape.check(&cold_every_step).is_err(), "cache that never hits must fail");
        let phantom = vec![row(&[
            ("cache", Value::Bool(false)),
            ("cache_hits", Value::UInt(3)),
            ("cache_misses", Value::UInt(1)),
        ])];
        assert!(shape.check(&phantom).is_err(), "uncached rows must not report hits");
    }

    #[test]
    fn missing_columns_are_violations_not_passes() {
        let shape = Shape::AtLeastColumn { y: "k", floor: "k_bound" };
        let drifted = vec![row(&[("k", Value::Float(10.0))])];
        let err = shape.check(&drifted).unwrap_err();
        assert!(err.detail.contains("missing numeric column"), "{err}");
    }
}
