//! The long-running simulation server.
//!
//! Architecture, front to back:
//!
//! * **Acceptor thread** — polls a non-blocking [`TcpListener`]. Every
//!   accepted connection goes through [`BoundedQueue::try_push`]; a full
//!   queue turns into an immediate typed `overloaded` response carrying a
//!   `retry_after_ms` hint (explicit backpressure — the server never
//!   buffers unboundedly). Queue depth at each admission flows through the
//!   same [`Recorder::sample`] hook the routing loop uses for congestion
//!   series.
//! * **Connection workers** — `workers` plain threads popping connections
//!   and reading requests line-by-line. Simulation work is never run on a
//!   connection worker: each `simulate` (and each member of a `batch`)
//!   becomes a `Job` on the central job queue, and the connection worker
//!   blocks on the job's result slot.
//! * **Batching executors** — `workers` threads popping the job queue.
//!   A claim takes the head job **plus every queued job with the same
//!   [`workload_fingerprint`]** (up to `max_batch`, waiting up to
//!   `linger_ms` for stragglers) in one atomic sweep. If the fingerprint
//!   is cold, the claim leader runs first — building and publishing the
//!   route plan exactly once — and the `g − 1` batchmates it spared are
//!   counted as single-flight followers before fanning out across idle
//!   executors with the plan already warm. Independent misses that race a
//!   leader block on the [`SharedPlanCache`] build slot instead of
//!   recomputing, so a plan is built once per fingerprint no matter how
//!   requests arrive. Batch sizes land in the `serve.batch.size` log₂
//!   histogram.
//! * **Deadlines** — each job runs under a [`CancelToken::with_deadline`];
//!   the engine checks it at phase boundaries (and while waiting on a
//!   build slot), and the executor maps [`SimError::Cancelled`] to a
//!   `deadline-exceeded` error.
//! * **Graceful drain** — [`Server::drain`] stops the acceptor, lets the
//!   connection queue empty, answers every request already in flight
//!   (workers close idle connections via a short read timeout once
//!   shutdown is flagged), then closes the job queue and joins the
//!   executors last, so no blocked result slot is ever abandoned. No
//!   admitted request is dropped.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    batch_item_value, error_line, overloaded_line, parse_request, result_line, BatchReq,
    ParseError, ProtoVersion, Request, SimulateReq,
};
use crate::queue::BoundedQueue;
use unet_core::cancel::CancelToken;
use unet_core::routers::Router as _;
use unet_core::spec::parse_graph;
use unet_core::{
    workload_fingerprint, CachePolicy, Embedding, GuestComputation, SharedPlanCache, SimError,
    Simulation,
};
use unet_obs::json::Value;
use unet_obs::trace::{export, RunMeta};
use unet_obs::{InMemoryRecorder, MetricsRegistry, Recorder, TraceAnalyzer};
use unet_topology::par::default_threads;
use unet_topology::Graph;

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the default).
    pub addr: String,
    /// Threads in each pool: connection workers and batching executors
    /// (default: [`default_threads`]).
    pub workers: usize,
    /// Admission queue bound; 0 rejects every connection (default 64).
    pub queue_cap: usize,
    /// Deadline applied to `simulate` requests that do not carry their own
    /// `deadline_ms` (default 10 000 ms).
    pub default_deadline_ms: u64,
    /// Largest same-fingerprint group one executor claims at once
    /// (default 32; 1 disables grouping).
    pub max_batch: usize,
    /// How long a claim lingers for same-fingerprint stragglers before
    /// running with what it has (default 0 — today's latency profile).
    pub linger_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: default_threads(),
            queue_cap: 64,
            default_deadline_ms: 10_000,
            max_batch: 32,
            linger_ms: 0,
        }
    }
}

/// Counter snapshot of a running (or drained) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections admitted to the queue.
    pub admitted: u64,
    /// Connections rejected with `overloaded`.
    pub rejected: u64,
    /// Requests answered (any response kind except `overloaded`).
    pub completed: u64,
    /// Shared route-plan cache hits (process totals).
    pub shared_hits: u64,
    /// Shared route-plan cache misses.
    pub shared_misses: u64,
    /// Plan builds spared by single-flight coalescing (batchmates that
    /// reused a claim leader's plan plus build-slot waiters).
    pub singleflight_followers: u64,
}

impl ServerStats {
    /// Shared-cache hit ratio (`None` before the first simulate request).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            None
        } else {
            Some(self.shared_hits as f64 / total as f64)
        }
    }
}

/// What a graceful drain hands back.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Final counter snapshot.
    pub stats: ServerStats,
    /// Final Prometheus text exposition of the server registry.
    pub exposition: String,
    /// JSONL trace of the server recorder (the `unet trace` format — feeds
    /// the streaming analyzer).
    pub trace: String,
}

/// A simulate unit of work: parsed inputs, grouping fingerprint, and the
/// slot its connection worker is blocked on.
struct Job {
    comp: GuestComputation,
    host: Graph,
    guest_spec: String,
    host_spec: String,
    steps: u32,
    seed: u64,
    fingerprint: u64,
    deadline_ms: u64,
    token: CancelToken,
    slot: Arc<ResultSlot>,
    /// Already claimed into a group and fanned out — never re-grouped.
    grouped: bool,
}

/// A job's outcome: result payload fields, or a typed `(code, message)`.
type SlotOutcome = Result<Vec<(String, Value)>, (String, String)>;

/// One-shot rendezvous between a connection worker and an executor.
struct ResultSlot {
    state: Mutex<Option<SlotOutcome>>,
    ready: Condvar,
}

impl ResultSlot {
    fn new() -> Arc<ResultSlot> {
        Arc::new(ResultSlot { state: Mutex::new(None), ready: Condvar::new() })
    }

    fn put(&self, out: SlotOutcome) {
        let mut state = self.state.lock().expect("slot poisoned");
        *state = Some(out);
        self.ready.notify_all();
    }

    fn wait(&self) -> SlotOutcome {
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let Some(out) = state.take() {
                return out;
            }
            state = self.ready.wait(state).expect("slot poisoned");
        }
    }
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The central job queue. Grouping is atomic: [`pop_group`] removes the
/// head and every queued same-fingerprint job under one lock, so a batch
/// pushed with [`push_all`] can never be half-claimed by a racing
/// executor.
///
/// [`pop_group`]: JobQueue::pop_group
/// [`push_all`]: JobQueue::push_all
struct JobQueue {
    state: Mutex<JobQueueState>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(JobQueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a set of jobs in one critical section (a whole batch lands
    /// before any executor can observe part of it).
    fn push_all(&self, jobs: Vec<Job>) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.jobs.extend(jobs);
        drop(state);
        self.ready.notify_all();
    }

    /// Requeue fan-out members at the front so idle executors pick them up
    /// before unrelated work.
    fn push_front_all(&self, jobs: Vec<Job>) {
        let mut state = self.state.lock().expect("job queue poisoned");
        for job in jobs.into_iter().rev() {
            state.jobs.push_front(job);
        }
        drop(state);
        self.ready.notify_all();
    }

    /// Pop the head job plus every queued ungrouped job with the same
    /// fingerprint, up to `max_batch`. Blocks while empty; `None` once
    /// closed and empty. A `grouped` head is returned alone — it is a
    /// fan-out member already accounted to its claim.
    fn pop_group(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(head) = state.jobs.pop_front() {
                if head.grouped {
                    return Some(vec![head]);
                }
                let mut group = vec![head];
                let fp = group[0].fingerprint;
                let mut rest = VecDeque::with_capacity(state.jobs.len());
                while let Some(job) = state.jobs.pop_front() {
                    if group.len() < max_batch.max(1) && !job.grouped && job.fingerprint == fp {
                        group.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                state.jobs = rest;
                return Some(group);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("job queue poisoned");
        }
    }

    /// Claim up to `want` more same-fingerprint jobs, waiting at most
    /// `linger` for stragglers (best-effort: whatever arrived by then).
    fn claim_lingering(&self, fp: u64, want: usize, linger: Duration) -> Vec<Job> {
        let deadline = Instant::now() + linger;
        let mut claimed = Vec::new();
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            let mut rest = VecDeque::with_capacity(state.jobs.len());
            while let Some(job) = state.jobs.pop_front() {
                if claimed.len() < want && !job.grouped && job.fingerprint == fp {
                    claimed.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            state.jobs = rest;
            let now = Instant::now();
            if claimed.len() >= want || state.closed || now >= deadline {
                return claimed;
            }
            let (next, _) =
                self.ready.wait_timeout(state, deadline - now).expect("job queue poisoned");
            state = next;
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

struct Shared {
    cache: SharedPlanCache,
    recorder: Mutex<InMemoryRecorder>,
    queue: BoundedQueue<TcpStream>,
    jobs: JobQueue,
    shutdown: AtomicBool,
    depth_seq: AtomicU64,
    default_deadline_ms: u64,
    max_batch: usize,
    linger_ms: u64,
    workers: usize,
}

/// A running server; construct with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor, connection workers, and batching
    /// executors, and return immediately.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: SharedPlanCache::new(),
            recorder: Mutex::new(InMemoryRecorder::new()),
            queue: BoundedQueue::new(cfg.queue_cap),
            jobs: JobQueue::new(),
            shutdown: AtomicBool::new(false),
            depth_seq: AtomicU64::new(0),
            default_deadline_ms: cfg.default_deadline_ms,
            max_batch: cfg.max_batch.max(1),
            linger_ms: cfg.linger_ms,
            workers,
        });
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.gauge("serve.workers", workers as f64);
            rec.gauge("serve.queue.cap", cfg.queue_cap as f64);
            rec.gauge("serve.max_batch", shared.max_batch as f64);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        serve_connection(&shared, stream);
                    }
                })
            })
            .collect();
        let executor_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            executors: executor_handles,
        })
    }

    /// The bound address (resolve port 0 through this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        stats_of(&rec, &self.shared.cache)
    }

    /// Graceful drain: stop accepting, answer everything admitted or in
    /// flight, join all threads, and return the final metrics.
    pub fn drain(mut self) -> DrainReport {
        self.stop_threads();
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        let stats = stats_of(&rec, &self.shared.cache);
        let meta = RunMeta {
            command: "serve".to_string(),
            guest: "-".to_string(),
            host: "-".to_string(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        DrainReport {
            stats,
            exposition: exposition_of(&rec, &self.shared.cache),
            trace: export(&rec, &meta, None),
        }
    }

    /// Join order matters: connection workers first (they feed jobs and
    /// block on slots), executors last (they fill the slots).
    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.jobs.close();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not drained: still stop the threads so tests that merely start a
        // server cannot leak a spinning acceptor.
        self.shared.queue.close();
        self.stop_threads();
    }
}

fn stats_of(rec: &InMemoryRecorder, cache: &SharedPlanCache) -> ServerStats {
    ServerStats {
        admitted: rec.counter_value("serve.conns.admitted"),
        rejected: rec.counter_value("serve.conns.rejected"),
        completed: rec.counter_value("serve.requests.completed"),
        shared_hits: cache.hits(),
        shared_misses: cache.misses(),
        singleflight_followers: cache.singleflight_followers(),
    }
}

fn exposition_of(rec: &InMemoryRecorder, cache: &SharedPlanCache) -> String {
    let mut reg = MetricsRegistry::from_recorder(rec);
    // The cache atomics are authoritative process totals (per-request
    // recorder merges could lag mid-flight).
    reg.set_counter("serve.cache.shared.hits", cache.hits());
    reg.set_counter("serve.cache.shared.misses", cache.misses());
    reg.set_counter("serve.planbuild_singleflight_followers", cache.singleflight_followers());
    if let Some(ratio) = cache.hit_ratio() {
        reg.set_gauge("serve.cache.hit_ratio", ratio);
    }
    reg.expose()
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                admit(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    shared.queue.close();
}

/// The `retry_after_ms` fallback before any request latency is measured.
pub(crate) const RETRY_AFTER_FLOOR_MS: u64 = 100;

/// Hint for a rejected client: the full queue must drain through `workers`
/// parallel servers, each request costing about the measured mean latency.
/// Shared with the shard router, which applies the same backpressure shape
/// at its own admission queue.
pub(crate) fn retry_after_hint(rec: &InMemoryRecorder, depth: usize, workers: usize) -> u64 {
    let mean = rec
        .histogram_data("serve.request.latency_ms")
        .and_then(|h| h.mean())
        .unwrap_or(RETRY_AFTER_FLOOR_MS as f64);
    let rounds = depth.div_ceil(workers.max(1)).max(1);
    ((mean * rounds as f64).ceil() as u64).max(1)
}

fn admit(shared: &Shared, stream: TcpStream) {
    match shared.queue.try_push(stream) {
        Ok(depth) => {
            let seq = shared.depth_seq.fetch_add(1, Ordering::Relaxed);
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.counter("serve.conns.admitted", 1);
            rec.sample("serve.queue.depth", seq, 0, depth as u64);
        }
        Err(mut stream) => {
            let retry_after = {
                let mut rec = shared.recorder.lock().expect("recorder poisoned");
                rec.counter("serve.conns.rejected", 1);
                retry_after_hint(&rec, shared.queue.cap(), shared.workers)
            };
            let _ = writeln!(stream, "{}", overloaded_line(shared.queue.cap(), retry_after));
            let _ = stream.flush();
        }
    }
}

/// How long a worker waits on an idle connection before re-checking the
/// shutdown flag. Bounds drain latency for open-but-quiet clients. The
/// shard router's connection workers poll on the same cadence.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(50);

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_patient(&mut reader, &mut line, &shared.shutdown) {
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let started = Instant::now();
                    let response = handle_request(shared, trimmed);
                    if writeln!(writer, "{response}").and_then(|_| writer.flush()).is_err() {
                        return;
                    }
                    let ms = started.elapsed().as_millis() as u64;
                    let mut rec = shared.recorder.lock().expect("recorder poisoned");
                    rec.counter("serve.requests.completed", 1);
                    rec.histogram("serve.request.latency_ms", ms);
                }
                line.clear();
            }
            LineRead::Closed => return,
        }
    }
}

pub(crate) enum LineRead {
    Line,
    Closed,
}

/// Read one line, treating read timeouts as "check shutdown, keep waiting".
/// A timeout mid-line keeps the partial data in `buf`, so slow writers are
/// never corrupted; an EOF (or a drain while idle) closes the connection.
/// Shared with the shard router's connection workers.
pub(crate) fn read_line_patient<R: Read>(
    reader: &mut BufReader<R>,
    buf: &mut String,
    shutdown: &AtomicBool,
) -> LineRead {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return LineRead::Closed,
            Ok(_) => {
                if buf.ends_with('\n') {
                    return LineRead::Line;
                }
                // EOF after a partial line: serve it, next read sees EOF.
                return if buf.is_empty() { LineRead::Closed } else { LineRead::Line };
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
                    // Idle connection during drain: close it. A partial
                    // line means a request is mid-send; keep waiting so
                    // drain never drops an in-flight request.
                    return LineRead::Closed;
                }
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

fn handle_request(shared: &Shared, line: &str) -> String {
    let (ver, req) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(ParseError::UnsupportedProto(msg)) => {
            return error_line(ProtoVersion::V2, "unsupported-protocol", &msg, None)
        }
        Err(ParseError::Malformed(msg)) => {
            return error_line(ProtoVersion::V2, "bad-request", &msg, None)
        }
    };
    match req {
        Request::Simulate(req) => {
            let outcome = match build_job(shared, &req, req.deadline_ms) {
                Ok((job, slot)) => {
                    shared.jobs.push_all(vec![job]);
                    slot.wait()
                }
                Err(e) => Err(e),
            };
            match outcome {
                Ok(payload) => result_line(ver, "simulate", req.id, payload),
                Err((code, message)) => error_line(ver, &code, &message, req.id),
            }
        }
        Request::Batch(batch) => handle_batch(shared, ver, batch),
        Request::Analyze { trace, id } => handle_analyze(ver, &trace, id),
        Request::Metrics { id } => {
            let rec = shared.recorder.lock().expect("recorder poisoned");
            let exposition = exposition_of(&rec, &shared.cache);
            drop(rec);
            result_line(
                ver,
                "metrics",
                id,
                vec![("exposition".to_string(), Value::Str(exposition))],
            )
        }
    }
}

/// Parse one spec into a runnable [`Job`]. Parse failures surface as the
/// item's own typed error, never touching its batchmates.
fn build_job(
    shared: &Shared,
    req: &SimulateReq,
    deadline_override: Option<u64>,
) -> Result<(Job, Arc<ResultSlot>), (String, String)> {
    let guest =
        parse_graph(&req.guest).map_err(|e| ("bad-spec".to_string(), format!("guest: {e}")))?;
    let host =
        parse_graph(&req.host).map_err(|e| ("bad-spec".to_string(), format!("host: {e}")))?;
    let comp = GuestComputation::random(guest, req.seed);
    let embedding = Embedding::block(comp.n(), host.n());
    let router = unet_core::routers::presets::bfs();
    let fingerprint = workload_fingerprint(&comp.graph, &host, &embedding, router.name(), req.seed);
    let deadline_ms = deadline_override.unwrap_or(shared.default_deadline_ms);
    let slot = ResultSlot::new();
    let job = Job {
        comp,
        host,
        guest_spec: req.guest.clone(),
        host_spec: req.host.clone(),
        steps: req.steps,
        seed: req.seed,
        fingerprint,
        deadline_ms,
        token: CancelToken::with_deadline(Duration::from_millis(deadline_ms)),
        slot: Arc::clone(&slot),
        grouped: false,
    };
    Ok((job, slot))
}

/// Serve one `batch` request: enqueue every parseable item in one atomic
/// push (so an executor claims them as a group), then collect the
/// positionally-aligned outcomes.
fn handle_batch(shared: &Shared, ver: ProtoVersion, batch: BatchReq) -> String {
    enum Pending {
        Slot(Arc<ResultSlot>),
        Failed(String, String),
    }
    let mut pending = Vec::with_capacity(batch.items.len());
    let mut jobs = Vec::new();
    for item in &batch.items {
        match item {
            Err(msg) => pending.push(Pending::Failed("bad-request".to_string(), msg.clone())),
            Ok(spec) => {
                let deadline = spec.deadline_ms.or(batch.deadline_ms);
                match build_job(shared, spec, deadline) {
                    Ok((job, slot)) => {
                        jobs.push(job);
                        pending.push(Pending::Slot(slot));
                    }
                    Err((code, msg)) => pending.push(Pending::Failed(code, msg)),
                }
            }
        }
    }
    shared.jobs.push_all(jobs);
    let items: Vec<Value> = pending
        .into_iter()
        .map(|p| {
            batch_item_value(match p {
                Pending::Slot(slot) => slot.wait(),
                Pending::Failed(code, msg) => Err((code, msg)),
            })
        })
        .collect();
    result_line(ver, "batch", batch.id, vec![("items".to_string(), Value::Arr(items))])
}

/// The batching executor: claim a same-fingerprint group, run its leader
/// first on a cold fingerprint (single plan build, followers spared), and
/// fan the rest out across the pool with the plan warm.
fn executor_loop(shared: &Shared) {
    while let Some(mut group) = shared.jobs.pop_group(shared.max_batch) {
        if group[0].grouped {
            // A fan-out member: its claim already ran the leader and
            // recorded the batch, so just execute.
            let job = group.pop().expect("grouped claim is a singleton");
            execute_job(shared, job);
            continue;
        }
        if shared.linger_ms > 0 && group.len() < shared.max_batch {
            let fp = group[0].fingerprint;
            group.extend(shared.jobs.claim_lingering(
                fp,
                shared.max_batch - group.len(),
                Duration::from_millis(shared.linger_ms),
            ));
        }
        let g = group.len();
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.histogram("serve.batch.size", g as u64);
        }
        let cold = !shared.cache.contains(group[0].fingerprint);
        let mut rest: Vec<Job> = group.split_off(1);
        for job in &mut rest {
            job.grouped = true;
        }
        let leader = group.pop().expect("claims are non-empty");
        if cold {
            // Every batchmate was spared a redundant plan build by
            // coalescing on the leader's single flight.
            shared.cache.note_singleflight_followers((g - 1) as u64);
            // Leader first: publish the plan, then fan out warm.
            execute_job(shared, leader);
            shared.jobs.push_front_all(rest);
        } else {
            // Plan already cached: fan out immediately, run the leader here.
            shared.jobs.push_front_all(rest);
            execute_job(shared, leader);
        }
    }
}

fn execute_job(shared: &Shared, job: Job) {
    let outcome = simulate_outcome(shared, &job);
    job.slot.put(outcome);
}

fn simulate_outcome(shared: &Shared, job: &Job) -> SlotOutcome {
    let router = unet_core::routers::presets::bfs();
    let started = Instant::now();
    let mut local = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&job.comp)
        .host(&job.host)
        .embedding(Embedding::block(job.comp.n(), job.host.n()))
        .router(&router)
        .steps(job.steps)
        .seed(job.seed)
        .threads(1)
        .cache_policy(CachePolicy::Enabled)
        .shared_cache(&shared.cache)
        .cancel_token(job.token.clone())
        .recorder(&mut local)
        .run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let shared_hit = local.counter_value("sim.cache.shared.hits") > 0;
    // Fold the request's engine counters into the server-level registry
    // (recorder counters accumulate, so sim.* become process totals).
    {
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        for (name, v) in local.counters() {
            rec.counter(name, v);
        }
    }
    let run = match run {
        Ok(run) => run,
        Err(SimError::Cancelled) => {
            return Err((
                "deadline-exceeded".to_string(),
                format!("deadline of {} ms passed at a phase boundary", job.deadline_ms),
            ))
        }
        Err(e) => return Err(("sim-error".to_string(), e.to_string())),
    };
    if let Err(e) = run.verify(&job.comp, &job.host, job.steps) {
        return Err(("verify-failed".to_string(), e.to_string()));
    }
    Ok(vec![
        ("guest".to_string(), Value::Str(job.guest_spec.clone())),
        ("host".to_string(), Value::Str(job.host_spec.clone())),
        ("steps".to_string(), Value::UInt(job.steps as u64)),
        ("host_steps".to_string(), Value::UInt(run.protocol.host_steps() as u64)),
        ("comm_steps".to_string(), Value::UInt(run.comm_steps as u64)),
        ("compute_steps".to_string(), Value::UInt(run.compute_steps as u64)),
        ("slowdown".to_string(), Value::Float(run.slowdown())),
        ("inefficiency".to_string(), Value::Float(run.inefficiency())),
        ("shared_cache_hit".to_string(), Value::Bool(shared_hit)),
        ("verified".to_string(), Value::Bool(true)),
        ("wall_ms".to_string(), Value::Float(wall_ms)),
    ])
}

fn handle_analyze(ver: ProtoVersion, trace: &[String], id: Option<u64>) -> String {
    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in trace.iter().enumerate() {
        if let Err(e) = analyzer.feed_line(line, i + 1) {
            return error_line(ver, "bad-trace", &e, id);
        }
    }
    let analysis = match analyzer.finish() {
        Ok(a) => a,
        Err(e) => return error_line(ver, "bad-trace", &e, id),
    };
    let exposition = MetricsRegistry::from_analysis(&analysis).expose();
    result_line(
        ver,
        "analyze",
        id,
        vec![
            ("lines".to_string(), Value::UInt(trace.len() as u64)),
            ("exposition".to_string(), Value::Str(exposition)),
        ],
    )
}
