//! The long-running simulation server.
//!
//! Architecture, front to back:
//!
//! * **Acceptor thread** — polls a non-blocking [`TcpListener`]. Every
//!   accepted connection goes through [`BoundedQueue::try_push`]; a full
//!   queue turns into an immediate typed `overloaded` response carrying a
//!   `retry_after_ms` hint (explicit backpressure — the server never
//!   buffers unboundedly). Queue depth at each admission flows through the
//!   same [`Recorder::sample`] hook the routing loop uses for congestion
//!   series.
//! * **Connection workers** — `workers` plain threads popping connections
//!   and reading requests line-by-line. Simulation work is never run on a
//!   connection worker: each `simulate` (and each member of a `batch`)
//!   becomes a `Job` on the central job queue, and the connection worker
//!   blocks on the job's result slot.
//! * **Batching executors** — `workers` threads popping the job queue.
//!   A claim takes the head job **plus every queued job with the same
//!   [`workload_fingerprint`]** (up to `max_batch`, waiting up to
//!   `linger_ms` for stragglers) in one atomic sweep. If the fingerprint
//!   is cold, the claim leader runs first — building and publishing the
//!   route plan exactly once — and the `g − 1` batchmates it spared are
//!   counted as single-flight followers before fanning out across idle
//!   executors with the plan already warm. Independent misses that race a
//!   leader block on the [`SharedPlanCache`] build slot instead of
//!   recomputing, so a plan is built once per fingerprint no matter how
//!   requests arrive. Batch sizes land in the `serve.batch.size` log₂
//!   histogram.
//! * **Deadlines** — each job runs under a [`CancelToken::with_deadline`];
//!   the engine checks it at phase boundaries (and while waiting on a
//!   build slot), and the executor maps [`SimError::Cancelled`] to a
//!   `deadline-exceeded` error.
//! * **Graceful drain** — [`Server::drain`] stops the acceptor, lets the
//!   connection queue empty, answers every request already in flight
//!   (workers close idle connections via a short read timeout once
//!   shutdown is flagged), then closes the job queue and joins the
//!   executors last, so no blocked result slot is ever abandoned. No
//!   admitted request is dropped.
//! * **Request tracing** — every request gets a trace id at first ingress
//!   (propagated from a `/3` client's trace context, else minted here) and
//!   a stage-span breakdown: `accept` (parse), `queue_wait`,
//!   `batch_linger`, `singleflight_wait`, `plan_build`, `simulate`,
//!   `serialize`. `/3` responses carry `trace_id` and `stages` inline; a
//!   [`TailSampler`] keeps every errored request, a deterministic head
//!   sample, and the slowest tail as `request` records in the drain trace,
//!   and the slowest request's trace id rides the latency histogram's
//!   `max` gauge as an exemplar.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    batch_item_value, error_line, gen_trace_id, overloaded_line, parse_request, result_line,
    BatchReq, ParseError, ProtoVersion, Request, SimulateReq,
};
use crate::queue::BoundedQueue;
use unet_core::cancel::CancelToken;
use unet_core::routers::Router as _;
use unet_core::spec::parse_graph;
use unet_core::{
    workload_fingerprint, CachePolicy, Embedding, GuestComputation, SharedPlanCache, SimError,
    Simulation,
};
use unet_obs::json::Value;
use unet_obs::tailsample::DEFAULT_HEAD_PERMILLE;
use unet_obs::trace::{export_full, RequestRecord, RunMeta, SampleReason, StageSpan};
use unet_obs::{InMemoryRecorder, MetricsRegistry, Recorder, TailSampler, TraceAnalyzer};
use unet_topology::par::default_threads;
use unet_topology::Graph;

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the default).
    pub addr: String,
    /// Threads in each pool: batching executors, and (unless
    /// [`conn_workers`](ServeConfig::conn_workers) overrides it)
    /// connection workers too (default: [`default_threads`]).
    pub workers: usize,
    /// Admission queue bound; 0 rejects every connection (default 64).
    pub queue_cap: usize,
    /// Deadline applied to `simulate` requests that do not carry their own
    /// `deadline_ms` (default 10 000 ms).
    pub default_deadline_ms: u64,
    /// Largest same-fingerprint group one executor claims at once
    /// (default 32; 1 disables grouping).
    pub max_batch: usize,
    /// How long a claim lingers for same-fingerprint stragglers before
    /// running with what it has (default 0 — today's latency profile).
    pub linger_ms: u64,
    /// Head-sampling rate for per-request stage records, in permille
    /// (default [`DEFAULT_HEAD_PERMILLE`]). Errors and the slowest tail
    /// are always kept regardless.
    pub head_sample_permille: u32,
    /// Connection-worker pool size override; `None` (the default) sizes
    /// the pool to `workers`. Capacity experiments set this above
    /// `workers` so every client connection is served concurrently while
    /// the executor pool stays the bottleneck.
    pub conn_workers: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: default_threads(),
            queue_cap: 64,
            default_deadline_ms: 10_000,
            max_batch: 32,
            linger_ms: 0,
            head_sample_permille: DEFAULT_HEAD_PERMILLE,
            conn_workers: None,
        }
    }
}

/// Counter snapshot of a running (or drained) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections admitted to the queue.
    pub admitted: u64,
    /// Connections rejected with `overloaded`.
    pub rejected: u64,
    /// Requests answered (any response kind except `overloaded`).
    pub completed: u64,
    /// Shared route-plan cache hits (process totals).
    pub shared_hits: u64,
    /// Shared route-plan cache misses.
    pub shared_misses: u64,
    /// Plan builds spared by single-flight coalescing (batchmates that
    /// reused a claim leader's plan plus build-slot waiters).
    pub singleflight_followers: u64,
}

impl ServerStats {
    /// Shared-cache hit ratio (`None` before the first simulate request).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            None
        } else {
            Some(self.shared_hits as f64 / total as f64)
        }
    }
}

/// What a graceful drain hands back.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Final counter snapshot.
    pub stats: ServerStats,
    /// Final Prometheus text exposition of the server registry.
    pub exposition: String,
    /// JSONL trace of the server recorder (the `unet trace` format — feeds
    /// the streaming analyzer).
    pub trace: String,
}

/// A simulate unit of work: parsed inputs, grouping fingerprint, and the
/// slot its connection worker is blocked on.
struct Job {
    comp: GuestComputation,
    host: Graph,
    guest_spec: String,
    host_spec: String,
    steps: u32,
    seed: u64,
    fingerprint: u64,
    deadline_ms: u64,
    token: CancelToken,
    slot: Arc<ResultSlot>,
    /// Already claimed into a group and fanned out — never re-grouped.
    grouped: bool,
    /// When the job entered the queue — the start of its `queue_wait` span.
    enqueued_at: Instant,
}

/// A job's outcome: result payload fields, or a typed `(code, message)`.
type SlotOutcome = Result<Vec<(String, Value)>, (String, String)>;

/// What an executor hands back through the slot: the wire payload outcome
/// plus the job's measured stage spans (`queue_wait`, `batch_linger`,
/// `singleflight_wait`, `plan_build`, `simulate`) in milliseconds.
struct JobOutcome {
    payload: SlotOutcome,
    stages: Vec<(&'static str, f64)>,
}

/// One-shot rendezvous between a connection worker and an executor.
struct ResultSlot {
    state: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

impl ResultSlot {
    fn new() -> Arc<ResultSlot> {
        Arc::new(ResultSlot { state: Mutex::new(None), ready: Condvar::new() })
    }

    fn put(&self, out: JobOutcome) {
        let mut state = self.state.lock().expect("slot poisoned");
        *state = Some(out);
        self.ready.notify_all();
    }

    fn wait(&self) -> JobOutcome {
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let Some(out) = state.take() {
                return out;
            }
            state = self.ready.wait(state).expect("slot poisoned");
        }
    }
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The central job queue. Grouping is atomic: [`pop_group`] removes the
/// head and every queued same-fingerprint job under one lock, so a batch
/// pushed with [`push_all`] can never be half-claimed by a racing
/// executor.
///
/// [`pop_group`]: JobQueue::pop_group
/// [`push_all`]: JobQueue::push_all
struct JobQueue {
    state: Mutex<JobQueueState>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(JobQueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a set of jobs in one critical section (a whole batch lands
    /// before any executor can observe part of it).
    fn push_all(&self, jobs: Vec<Job>) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.jobs.extend(jobs);
        drop(state);
        self.ready.notify_all();
    }

    /// Requeue fan-out members at the front so idle executors pick them up
    /// before unrelated work.
    fn push_front_all(&self, jobs: Vec<Job>) {
        let mut state = self.state.lock().expect("job queue poisoned");
        for job in jobs.into_iter().rev() {
            state.jobs.push_front(job);
        }
        drop(state);
        self.ready.notify_all();
    }

    /// Pop the head job plus every queued ungrouped job with the same
    /// fingerprint, up to `max_batch`. Blocks while empty; `None` once
    /// closed and empty. A `grouped` head is returned alone — it is a
    /// fan-out member already accounted to its claim.
    fn pop_group(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(head) = state.jobs.pop_front() {
                if head.grouped {
                    return Some(vec![head]);
                }
                let mut group = vec![head];
                let fp = group[0].fingerprint;
                let mut rest = VecDeque::with_capacity(state.jobs.len());
                while let Some(job) = state.jobs.pop_front() {
                    if group.len() < max_batch.max(1) && !job.grouped && job.fingerprint == fp {
                        group.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                state.jobs = rest;
                return Some(group);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("job queue poisoned");
        }
    }

    /// Claim up to `want` more same-fingerprint jobs, waiting at most
    /// `linger` for stragglers (best-effort: whatever arrived by then).
    fn claim_lingering(&self, fp: u64, want: usize, linger: Duration) -> Vec<Job> {
        let deadline = Instant::now() + linger;
        let mut claimed = Vec::new();
        let mut state = self.state.lock().expect("job queue poisoned");
        loop {
            let mut rest = VecDeque::with_capacity(state.jobs.len());
            while let Some(job) = state.jobs.pop_front() {
                if claimed.len() < want && !job.grouped && job.fingerprint == fp {
                    claimed.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            state.jobs = rest;
            let now = Instant::now();
            if claimed.len() >= want || state.closed || now >= deadline {
                return claimed;
            }
            let (next, _) =
                self.ready.wait_timeout(state, deadline - now).expect("job queue poisoned");
            state = next;
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("job queue poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

struct Shared {
    cache: SharedPlanCache,
    recorder: Mutex<InMemoryRecorder>,
    queue: BoundedQueue<TcpStream>,
    jobs: JobQueue,
    shutdown: AtomicBool,
    depth_seq: AtomicU64,
    default_deadline_ms: u64,
    max_batch: usize,
    linger_ms: u64,
    workers: usize,
    /// Tail-sampled per-request stage records, drained into the trace.
    sampler: Mutex<TailSampler>,
    /// The slowest request seen so far: its trace id rides the latency
    /// histogram's `max` gauge as an exemplar in the exposition.
    latency_exemplar: Mutex<Option<(String, f64)>>,
}

/// A running server; construct with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor, connection workers, and batching
    /// executors, and return immediately.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: SharedPlanCache::new(),
            recorder: Mutex::new(InMemoryRecorder::new()),
            queue: BoundedQueue::new(cfg.queue_cap),
            jobs: JobQueue::new(),
            shutdown: AtomicBool::new(false),
            depth_seq: AtomicU64::new(0),
            default_deadline_ms: cfg.default_deadline_ms,
            max_batch: cfg.max_batch.max(1),
            linger_ms: cfg.linger_ms,
            workers,
            sampler: Mutex::new(TailSampler::new(cfg.head_sample_permille)),
            latency_exemplar: Mutex::new(None),
        });
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.gauge("serve.workers", workers as f64);
            rec.gauge("serve.queue.cap", cfg.queue_cap as f64);
            rec.gauge("serve.max_batch", shared.max_batch as f64);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let conn_workers = cfg.conn_workers.unwrap_or(workers).max(1);
        let worker_handles = (0..conn_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        serve_connection(&shared, stream);
                    }
                })
            })
            .collect();
        let executor_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            executors: executor_handles,
        })
    }

    /// The bound address (resolve port 0 through this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        stats_of(&rec, &self.shared.cache)
    }

    /// Graceful drain: stop accepting, answer everything admitted or in
    /// flight, join all threads, and return the final metrics.
    pub fn drain(mut self) -> DrainReport {
        self.stop_threads();
        let (requests, dropped) = {
            let mut sampler = self.shared.sampler.lock().expect("sampler poisoned");
            let dropped = sampler.dropped();
            (sampler.drain(), dropped)
        };
        let exemplar = self.shared.latency_exemplar.lock().expect("exemplar poisoned").clone();
        let mut rec = self.shared.recorder.lock().expect("recorder poisoned");
        rec.counter("serve.trace.requests_sampled", requests.len() as u64);
        rec.counter("serve.trace.requests_dropped", dropped);
        let stats = stats_of(&rec, &self.shared.cache);
        let meta = RunMeta {
            command: "serve".to_string(),
            guest: "-".to_string(),
            host: "-".to_string(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        DrainReport {
            stats,
            exposition: exposition_of(&rec, &self.shared.cache, exemplar.as_ref()),
            trace: export_full(&rec, &meta, &[], &requests, None),
        }
    }

    /// Join order matters: connection workers first (they feed jobs and
    /// block on slots), executors last (they fill the slots).
    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.jobs.close();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not drained: still stop the threads so tests that merely start a
        // server cannot leak a spinning acceptor.
        self.shared.queue.close();
        self.stop_threads();
    }
}

fn stats_of(rec: &InMemoryRecorder, cache: &SharedPlanCache) -> ServerStats {
    ServerStats {
        admitted: rec.counter_value("serve.conns.admitted"),
        rejected: rec.counter_value("serve.conns.rejected"),
        completed: rec.counter_value("serve.requests.completed"),
        shared_hits: cache.hits(),
        shared_misses: cache.misses(),
        singleflight_followers: cache.singleflight_followers(),
    }
}

fn exposition_of(
    rec: &InMemoryRecorder,
    cache: &SharedPlanCache,
    exemplar: Option<&(String, f64)>,
) -> String {
    let mut reg = MetricsRegistry::from_recorder(rec);
    // The cache atomics are authoritative process totals (per-request
    // recorder merges could lag mid-flight).
    reg.set_counter("serve.cache.shared.hits", cache.hits());
    reg.set_counter("serve.cache.shared.misses", cache.misses());
    reg.set_counter("serve.planbuild_singleflight_followers", cache.singleflight_followers());
    if let Some(ratio) = cache.hit_ratio() {
        reg.set_gauge("serve.cache.hit_ratio", ratio);
    }
    if let Some((trace_id, ms)) = exemplar {
        // The slowest request explains the histogram's max.
        reg.set_exemplar("serve.request.latency_ms.max", trace_id, *ms);
    }
    reg.expose()
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                // The protocol is a ping-pong of small lines; without
                // nodelay, Nagle + delayed ACK stall every request after
                // the first on a persistent connection by tens of ms.
                let _ = stream.set_nodelay(true);
                admit(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    shared.queue.close();
}

/// The `retry_after_ms` fallback before any request latency is measured.
pub(crate) const RETRY_AFTER_FLOOR_MS: u64 = 100;

/// Hint for a rejected client: the full queue must drain through `workers`
/// parallel servers, each request costing about the measured mean latency.
/// Shared with the shard router, which applies the same backpressure shape
/// at its own admission queue.
///
/// Before the first request latency lands (the zero-sample startup
/// window), the hint is the bare floor — multiplying the floor by the
/// drain rounds would tell the very first rejected clients to back off
/// for seconds based on no evidence at all. A non-finite mean (possible
/// only if the histogram is ever fed garbage) takes the same path.
pub(crate) fn retry_after_hint(rec: &InMemoryRecorder, depth: usize, workers: usize) -> u64 {
    match rec.histogram_data("serve.request.latency_ms").and_then(|h| h.mean()) {
        Some(mean) if mean.is_finite() => {
            let rounds = depth.div_ceil(workers.max(1)).max(1);
            ((mean * rounds as f64).ceil() as u64).max(1)
        }
        _ => RETRY_AFTER_FLOOR_MS,
    }
}

fn admit(shared: &Shared, stream: TcpStream) {
    match shared.queue.try_push(stream) {
        Ok(depth) => {
            let seq = shared.depth_seq.fetch_add(1, Ordering::Relaxed);
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.counter("serve.conns.admitted", 1);
            rec.sample("serve.queue.depth", seq, 0, depth as u64);
        }
        Err(mut stream) => {
            let retry_after = {
                let mut rec = shared.recorder.lock().expect("recorder poisoned");
                rec.counter("serve.conns.rejected", 1);
                retry_after_hint(&rec, shared.queue.cap(), shared.workers)
            };
            let _ = writeln!(stream, "{}", overloaded_line(shared.queue.cap(), retry_after));
            let _ = stream.flush();
        }
    }
}

/// How long a worker waits on an idle connection before re-checking the
/// shutdown flag. Bounds drain latency for open-but-quiet clients. The
/// shard router's connection workers poll on the same cadence.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(50);

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_patient(&mut reader, &mut line, &shared.shutdown) {
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let started = Instant::now();
                    let (response, mut info) = handle_request(shared, trimmed);
                    let write_started = Instant::now();
                    let write_ok =
                        writeln!(writer, "{response}").and_then(|_| writer.flush()).is_ok();
                    info.stages.push(("serialize", write_started.elapsed().as_secs_f64() * 1e3));
                    let e2e_ms = started.elapsed().as_secs_f64() * 1e3;
                    {
                        let mut rec = shared.recorder.lock().expect("recorder poisoned");
                        rec.counter("serve.requests.completed", 1);
                        rec.histogram("serve.request.latency_ms", e2e_ms as u64);
                    }
                    {
                        let mut ex = shared.latency_exemplar.lock().expect("exemplar poisoned");
                        if ex.as_ref().is_none_or(|(_, ms)| e2e_ms >= *ms) {
                            *ex = Some((info.trace_id.clone(), e2e_ms));
                        }
                    }
                    let record = RequestRecord {
                        trace_id: info.trace_id,
                        kind: info.kind.to_string(),
                        ok: info.ok,
                        e2e_ms,
                        sampled: SampleReason::Head,
                        stages: info
                            .stages
                            .into_iter()
                            .map(|(stage, ms)| StageSpan { stage: stage.to_string(), ms })
                            .collect(),
                    };
                    shared.sampler.lock().expect("sampler poisoned").offer(record);
                    if !write_ok {
                        return;
                    }
                }
                line.clear();
            }
            LineRead::Closed => return,
        }
    }
}

pub(crate) enum LineRead {
    Line,
    Closed,
}

/// Read one line, treating read timeouts as "check shutdown, keep waiting".
/// A timeout mid-line keeps the partial data in `buf`, so slow writers are
/// never corrupted; an EOF (or a drain while idle) closes the connection.
/// Shared with the shard router's connection workers.
pub(crate) fn read_line_patient<R: Read>(
    reader: &mut BufReader<R>,
    buf: &mut String,
    shutdown: &AtomicBool,
) -> LineRead {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return LineRead::Closed,
            Ok(_) => {
                if buf.ends_with('\n') {
                    return LineRead::Line;
                }
                // EOF after a partial line: serve it, next read sees EOF.
                return if buf.is_empty() { LineRead::Closed } else { LineRead::Line };
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
                    // Idle connection during drain: close it. A partial
                    // line means a request is mid-send; keep waiting so
                    // drain never drops an in-flight request.
                    return LineRead::Closed;
                }
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

/// What one handled request looked like, for the request-span record its
/// connection worker offers to the tail sampler.
struct ReqInfo {
    trace_id: String,
    kind: &'static str,
    ok: bool,
    stages: Vec<(&'static str, f64)>,
}

/// The wire form of a stage-span list: `{"queue_wait":1.5,...}`.
fn stages_value(stages: &[(&'static str, f64)]) -> Value {
    Value::Obj(stages.iter().map(|&(s, ms)| (s.to_string(), Value::Float(ms))).collect())
}

fn handle_request(shared: &Shared, line: &str) -> (String, ReqInfo) {
    let parse_started = Instant::now();
    let parsed = parse_request(line);
    let accept_ms = parse_started.elapsed().as_secs_f64() * 1e3;
    let (ver, wire_trace, req) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            let info = ReqInfo {
                trace_id: gen_trace_id(),
                kind: "unparsed",
                ok: false,
                stages: vec![("accept", accept_ms)],
            };
            let line = match e {
                ParseError::UnsupportedProto(msg) => {
                    error_line(ProtoVersion::V3, "unsupported-protocol", &msg, None)
                }
                ParseError::Malformed(msg) => {
                    error_line(ProtoVersion::V3, "bad-request", &msg, None)
                }
            };
            return (line, info);
        }
    };
    // First ingress: a /3 client (or the shard router) propagates its
    // trace context; older clients get a server-assigned trace id.
    let trace_id = wire_trace.unwrap_or_else(gen_trace_id);
    let kind = req.kind();
    let mut stages = vec![("accept", accept_ms)];
    let (response, ok) = match req {
        Request::Simulate(req) => {
            // `accept` covers admission too: spec parsing, topology and
            // computation construction, and fingerprinting all happen on
            // the connection thread before the job reaches the queue.
            let admit_started = Instant::now();
            let built = build_job(shared, &req, req.deadline_ms);
            // Close the span before the job becomes visible to workers, so
            // `accept` never overlaps the worker-side spans.
            stages[0].1 += admit_started.elapsed().as_secs_f64() * 1e3;
            let outcome = match built {
                Ok((job, slot)) => {
                    shared.jobs.push_all(vec![job]);
                    let wait_started = Instant::now();
                    let mut out = slot.wait();
                    let wait_ms = wait_started.elapsed().as_secs_f64() * 1e3;
                    // What the blocking wait cost beyond the worker's own
                    // spans: the scheduler handoff into the worker and the
                    // result handoff back. Without this span, condvar
                    // wakeup latency is unaccounted end-to-end time.
                    let worker_ms: f64 = out.stages.iter().map(|(_, ms)| ms).sum();
                    let dispatch_ms = wait_ms - worker_ms;
                    if dispatch_ms > 0.0 {
                        out.stages.push(("dispatch", dispatch_ms));
                    }
                    out
                }
                Err(e) => JobOutcome { payload: Err(e), stages: Vec::new() },
            };
            stages.extend(outcome.stages);
            match outcome.payload {
                Ok(mut payload) => {
                    if ver == ProtoVersion::V3 {
                        payload.push(("trace_id".to_string(), Value::Str(trace_id.clone())));
                        payload.push(("stages".to_string(), stages_value(&stages)));
                    }
                    (result_line(ver, "simulate", req.id, payload), true)
                }
                Err((code, message)) => (error_line(ver, &code, &message, req.id), false),
            }
        }
        Request::Batch(batch) => {
            let (line, ok, batch_stages) = handle_batch(shared, ver, batch, &trace_id);
            stages.extend(batch_stages);
            (line, ok)
        }
        Request::Analyze { trace, id } => handle_analyze(ver, &trace, id),
        Request::Metrics { id } => {
            let exemplar = shared.latency_exemplar.lock().expect("exemplar poisoned").clone();
            let rec = shared.recorder.lock().expect("recorder poisoned");
            let exposition = exposition_of(&rec, &shared.cache, exemplar.as_ref());
            drop(rec);
            (
                result_line(
                    ver,
                    "metrics",
                    id,
                    vec![("exposition".to_string(), Value::Str(exposition))],
                ),
                true,
            )
        }
    };
    (response, ReqInfo { trace_id, kind, ok, stages })
}

/// Parse one spec into a runnable [`Job`]. Parse failures surface as the
/// item's own typed error, never touching its batchmates.
fn build_job(
    shared: &Shared,
    req: &SimulateReq,
    deadline_override: Option<u64>,
) -> Result<(Job, Arc<ResultSlot>), (String, String)> {
    let guest =
        parse_graph(&req.guest).map_err(|e| ("bad-spec".to_string(), format!("guest: {e}")))?;
    let host =
        parse_graph(&req.host).map_err(|e| ("bad-spec".to_string(), format!("host: {e}")))?;
    let comp = GuestComputation::random(guest, req.seed);
    let embedding = Embedding::block(comp.n(), host.n());
    let router = unet_core::routers::presets::bfs();
    let fingerprint = workload_fingerprint(&comp.graph, &host, &embedding, router.name(), req.seed);
    let deadline_ms = deadline_override.unwrap_or(shared.default_deadline_ms);
    let slot = ResultSlot::new();
    let job = Job {
        comp,
        host,
        guest_spec: req.guest.clone(),
        host_spec: req.host.clone(),
        steps: req.steps,
        seed: req.seed,
        fingerprint,
        deadline_ms,
        token: CancelToken::with_deadline(Duration::from_millis(deadline_ms)),
        slot: Arc::clone(&slot),
        grouped: false,
        enqueued_at: Instant::now(),
    };
    Ok((job, slot))
}

/// Serve one `batch` request: enqueue every parseable item in one atomic
/// push (so an executor claims them as a group), then collect the
/// positionally-aligned outcomes. Returns the response line, whether every
/// item succeeded, and the batch's stage spans (per-stage *maximum* across
/// members — the members run in parallel, so the max approximates the
/// critical path without over-counting the request's wall clock).
fn handle_batch(
    shared: &Shared,
    ver: ProtoVersion,
    batch: BatchReq,
    trace_id: &str,
) -> (String, bool, Vec<(&'static str, f64)>) {
    enum Pending {
        Slot(Arc<ResultSlot>),
        Failed(String, String),
    }
    let mut pending = Vec::with_capacity(batch.items.len());
    let mut jobs = Vec::new();
    for item in &batch.items {
        match item {
            Err(msg) => pending.push(Pending::Failed("bad-request".to_string(), msg.clone())),
            Ok(spec) => {
                let deadline = spec.deadline_ms.or(batch.deadline_ms);
                match build_job(shared, spec, deadline) {
                    Ok((job, slot)) => {
                        jobs.push(job);
                        pending.push(Pending::Slot(slot));
                    }
                    Err((code, msg)) => pending.push(Pending::Failed(code, msg)),
                }
            }
        }
    }
    shared.jobs.push_all(jobs);
    let mut all_ok = true;
    let mut stage_max: Vec<(&'static str, f64)> = Vec::new();
    let items: Vec<Value> = pending
        .into_iter()
        .map(|p| {
            let outcome = match p {
                Pending::Slot(slot) => {
                    let out = slot.wait();
                    for (stage, ms) in out.stages {
                        match stage_max.iter_mut().find(|(s, _)| *s == stage) {
                            Some((_, acc)) => *acc = acc.max(ms),
                            None => stage_max.push((stage, ms)),
                        }
                    }
                    match out.payload {
                        Ok(mut payload) => {
                            if ver == ProtoVersion::V3 {
                                payload.push((
                                    "trace_id".to_string(),
                                    Value::Str(trace_id.to_string()),
                                ));
                            }
                            Ok(payload)
                        }
                        Err(e) => Err(e),
                    }
                }
                Pending::Failed(code, msg) => Err((code, msg)),
            };
            all_ok &= outcome.is_ok();
            batch_item_value(outcome)
        })
        .collect();
    let line = result_line(ver, "batch", batch.id, vec![("items".to_string(), Value::Arr(items))]);
    (line, all_ok, stage_max)
}

/// The batching executor: claim a same-fingerprint group, run its leader
/// first on a cold fingerprint (single plan build, followers spared), and
/// fan the rest out across the pool with the plan warm.
fn executor_loop(shared: &Shared) {
    while let Some(mut group) = shared.jobs.pop_group(shared.max_batch) {
        if group[0].grouped {
            // A fan-out member: its claim already ran the leader and
            // recorded the batch, so just execute.
            let job = group.pop().expect("grouped claim is a singleton");
            execute_job(shared, job, 0.0);
            continue;
        }
        let mut linger_ms = 0.0;
        if shared.linger_ms > 0 && group.len() < shared.max_batch {
            let fp = group[0].fingerprint;
            let linger_started = Instant::now();
            group.extend(shared.jobs.claim_lingering(
                fp,
                shared.max_batch - group.len(),
                Duration::from_millis(shared.linger_ms),
            ));
            linger_ms = linger_started.elapsed().as_secs_f64() * 1e3;
        }
        let g = group.len();
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.histogram("serve.batch.size", g as u64);
        }
        let cold = !shared.cache.contains(group[0].fingerprint);
        let mut rest: Vec<Job> = group.split_off(1);
        for job in &mut rest {
            job.grouped = true;
        }
        let leader = group.pop().expect("claims are non-empty");
        if cold {
            // Every batchmate was spared a redundant plan build by
            // coalescing on the leader's single flight.
            shared.cache.note_singleflight_followers((g - 1) as u64);
            // Leader first: publish the plan, then fan out warm.
            execute_job(shared, leader, linger_ms);
            shared.jobs.push_front_all(rest);
        } else {
            // Plan already cached: fan out immediately, run the leader here.
            shared.jobs.push_front_all(rest);
            execute_job(shared, leader, linger_ms);
        }
    }
}

/// Run one job and fill its slot, assembling the job-side stage spans:
/// `queue_wait` (enqueue to execution), `batch_linger` (the claim leader's
/// straggler wait, when any), then the engine-side spans measured by
/// [`simulate_outcome`].
fn execute_job(shared: &Shared, job: Job, linger_ms: f64) {
    let queue_wait_ms = job.enqueued_at.elapsed().as_secs_f64() * 1e3;
    let (payload, engine_stages) = simulate_outcome(shared, &job);
    let mut stages = vec![("queue_wait", queue_wait_ms)];
    if linger_ms > 0.0 {
        stages.push(("batch_linger", linger_ms));
    }
    stages.extend(engine_stages);
    job.slot.put(JobOutcome { payload, stages });
}

fn simulate_outcome(shared: &Shared, job: &Job) -> (SlotOutcome, Vec<(&'static str, f64)>) {
    let router = unet_core::routers::presets::bfs();
    let started = Instant::now();
    let mut local = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&job.comp)
        .host(&job.host)
        .embedding(Embedding::block(job.comp.n(), job.host.n()))
        .router(&router)
        .steps(job.steps)
        .seed(job.seed)
        .threads(1)
        .cache_policy(CachePolicy::Enabled)
        .shared_cache(&shared.cache)
        .cancel_token(job.token.clone())
        .recorder(&mut local)
        .run();
    // Verification replays the protocol against the guest/host contract —
    // part of serving the request, so it happens inside the timed region
    // the `simulate` span is carved from.
    let verify_err =
        run.as_ref().ok().and_then(|r| r.verify(&job.comp, &job.host, job.steps).err());
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let shared_hit = local.counter_value("sim.cache.shared.hits") > 0;
    // Disjoint engine spans: the plan acquire (single-flight wait) and the
    // plan build are carved out of the run's wall clock so a stage sum
    // never double-counts.
    let acquire_ms =
        local.histogram_data("sim.plan.acquire_us").map_or(0.0, |h| h.sum as f64 / 1e3);
    let build_ms = local.histogram_data("sim.plan.build_us").map_or(0.0, |h| h.sum as f64 / 1e3);
    let mut stages: Vec<(&'static str, f64)> = Vec::new();
    if acquire_ms > 0.0 {
        stages.push(("singleflight_wait", acquire_ms));
    }
    if build_ms > 0.0 {
        stages.push(("plan_build", build_ms));
    }
    stages.push(("simulate", (wall_ms - acquire_ms - build_ms).max(0.0)));
    // Fold the request's engine counters into the server-level registry
    // (recorder counters accumulate, so sim.* become process totals).
    {
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        for (name, v) in local.counters() {
            rec.counter(name, v);
        }
    }
    let run = match run {
        Ok(run) => run,
        Err(SimError::Cancelled) => {
            return (
                Err((
                    "deadline-exceeded".to_string(),
                    format!("deadline of {} ms passed at a phase boundary", job.deadline_ms),
                )),
                stages,
            )
        }
        Err(e) => return (Err(("sim-error".to_string(), e.to_string())), stages),
    };
    if let Some(e) = verify_err {
        return (Err(("verify-failed".to_string(), e.to_string())), stages);
    }
    let payload = vec![
        ("guest".to_string(), Value::Str(job.guest_spec.clone())),
        ("host".to_string(), Value::Str(job.host_spec.clone())),
        ("steps".to_string(), Value::UInt(job.steps as u64)),
        ("host_steps".to_string(), Value::UInt(run.protocol.host_steps() as u64)),
        ("comm_steps".to_string(), Value::UInt(run.comm_steps as u64)),
        ("compute_steps".to_string(), Value::UInt(run.compute_steps as u64)),
        ("slowdown".to_string(), Value::Float(run.slowdown())),
        ("inefficiency".to_string(), Value::Float(run.inefficiency())),
        ("shared_cache_hit".to_string(), Value::Bool(shared_hit)),
        ("verified".to_string(), Value::Bool(true)),
        ("wall_ms".to_string(), Value::Float(wall_ms)),
    ];
    (Ok(payload), stages)
}

fn handle_analyze(ver: ProtoVersion, trace: &[String], id: Option<u64>) -> (String, bool) {
    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in trace.iter().enumerate() {
        if let Err(e) = analyzer.feed_line(line, i + 1) {
            return (error_line(ver, "bad-trace", &e, id), false);
        }
    }
    let analysis = match analyzer.finish() {
        Ok(a) => a,
        Err(e) => return (error_line(ver, "bad-trace", &e, id), false),
    };
    let exposition = MetricsRegistry::from_analysis(&analysis).expose();
    let line = result_line(
        ver,
        "analyze",
        id,
        vec![
            ("lines".to_string(), Value::UInt(trace.len() as u64)),
            ("exposition".to_string(), Value::Str(exposition)),
        ],
    );
    (line, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: before any request latency lands, the hint used to be
    /// the 100 ms floor *multiplied by the drain rounds* — the very first
    /// rejected clients were told to back off for seconds based on no
    /// measurement at all. The zero-sample window now reports the bare
    /// floor.
    #[test]
    fn retry_after_hint_startup_window_reports_the_bare_floor() {
        let rec = InMemoryRecorder::new();
        assert_eq!(retry_after_hint(&rec, 64, 2), RETRY_AFTER_FLOOR_MS);
        assert_eq!(retry_after_hint(&rec, 1024, 1), RETRY_AFTER_FLOOR_MS);
        assert_eq!(retry_after_hint(&rec, 0, 4), RETRY_AFTER_FLOOR_MS);
    }

    #[test]
    fn retry_after_hint_scales_with_measured_latency_and_depth() {
        let mut rec = InMemoryRecorder::new();
        rec.histogram("serve.request.latency_ms", 10);
        // 8 queued through 2 workers = 4 rounds of ~10 ms each.
        assert_eq!(retry_after_hint(&rec, 8, 2), 40);
        // Depth 0 still suggests one round.
        assert_eq!(retry_after_hint(&rec, 0, 2), 10);
        // Sub-millisecond means still hint at least 1 ms.
        let mut fast = InMemoryRecorder::new();
        fast.histogram("serve.request.latency_ms", 0);
        assert_eq!(retry_after_hint(&fast, 4, 4), 1);
    }
}
