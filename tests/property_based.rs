//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use universal_networks::core::prelude::*;
use universal_networks::pebble::check;
use universal_networks::routing::decompose::{decompose_into_permutations, verify_decomposition};
use universal_networks::routing::packet::route_simple;
use universal_networks::routing::problem::RoutingProblem;
use universal_networks::routing::sortnet::{apply_stages, bitonic_stages};
use universal_networks::topology::euler::eulerian_orientation;
use universal_networks::topology::generators::*;
use universal_networks::topology::util::seeded_rng;
use universal_networks::topology::Node;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random regular guest on any torus host: the simulation certifies
    /// and reproduces the direct run.
    #[test]
    fn simulation_always_correct(
        seed in 0u64..1000,
        guest_scale in 2usize..5,   // n = 16·scale
        host_side in 2usize..4,     // m = side²
        steps in 1u32..4,
    ) {
        let n = 16 * guest_scale;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = torus(host_side, host_side);
        let comp = GuestComputation::random(guest.clone(), seed ^ 0x55);
        let router = presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(n, host.n()))
            .router(&router)
            .steps(steps)
            .run_with_rng(&mut rng)
            .expect("configuration is valid");
        let trace = check(&guest, &host, &run.protocol).expect("certifies");
        prop_assert_eq!(run.final_states, comp.run_final(steps));
        // Custody invariant: Q'_S(i,t) ⊆ Q_S(i,t).
        for i in 0..n as Node {
            for t in 0..steps {
                for &g in trace.generators(i, t) {
                    prop_assert!(trace.representatives(i, t).contains(g));
                }
            }
        }
        // Work bound: Σ q ≤ m·T'.
        prop_assert!(trace.total_weight() <= host.n() * trace.host_steps);
    }

    /// Random h–h problems always deliver under BFS + farthest-first, and
    /// the port discipline is never violated.
    #[test]
    fn routing_always_delivers(
        seed in 0u64..1000,
        side in 3usize..7,
        h in 1usize..5,
    ) {
        let g = torus(side, side);
        let mut rng = seeded_rng(seed);
        let prob = universal_networks::routing::problem::random_h_h(g.n(), h, &mut rng);
        let out = route_simple(&g, &prob.pairs).unwrap();
        prop_assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
        for step in out.transfers_by_step() {
            let mut from = std::collections::HashSet::new();
            let mut to = std::collections::HashSet::new();
            for t in step {
                prop_assert!(from.insert(t.from));
                prop_assert!(to.insert(t.to));
            }
        }
    }

    /// h–h decomposition: always bijections covering all pairs.
    #[test]
    fn decomposition_always_valid(
        seed in 0u64..1000,
        m_exp in 2u32..5,
        h in 1usize..6,
    ) {
        let m = 1usize << m_exp;
        let mut rng = seeded_rng(seed);
        let prob = universal_networks::routing::problem::random_h_h(m, h, &mut rng);
        let perms = decompose_into_permutations(&prob);
        prop_assert!(verify_decomposition(&prob, &perms).is_ok());
        prop_assert!(perms.len() <= h.next_power_of_two());
    }

    /// Waksman realizes arbitrary permutations with verified congestion 1.
    #[test]
    fn waksman_always_verifies(seed in 0u64..1000, d in 1usize..6) {
        use rand::seq::SliceRandom;
        let n = 1usize << d;
        let mut rng = seeded_rng(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let paths = universal_networks::routing::benes::waksman_paths(&perm);
        prop_assert!(universal_networks::routing::benes::verify_waksman(&perm, &paths).is_ok());
    }

    /// Bitonic network sorts arbitrary u64 arrays (beyond the 0-1 principle
    /// exhaustion in unit tests).
    #[test]
    fn bitonic_sorts_anything(values in prop::collection::vec(any::<u64>(), 64..=64)) {
        let stages = bitonic_stages(6);
        let mut v = values.clone();
        apply_stages(&stages, &mut v);
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = values;
        expect.sort_unstable();
        prop_assert_eq!(v, expect);
    }

    /// Eulerian orientation of any random even-regular graph is balanced.
    #[test]
    fn euler_orientation_balanced(seed in 0u64..1000, half_d in 1usize..4, n in 8usize..24) {
        let d = 2 * half_d;
        prop_assume!(d < n);
        let mut rng = seeded_rng(seed);
        let g = random_regular(n, d, &mut rng);
        let o = eulerian_orientation(&g);
        prop_assert!(o.is_balanced_for(&g));
    }

    /// Random regular generator: always simple, always regular.
    #[test]
    fn random_regular_invariants(seed in 0u64..1000, n in 6usize..40, d in 1usize..6) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = seeded_rng(seed);
        let g = random_regular(n, d, &mut rng);
        prop_assert_eq!(g.is_regular(), Some(d));
        prop_assert_eq!(g.n(), n);
    }

    /// Guest-induced routing problems respect the Theorem 2.1 h bound:
    /// h ≤ c·⌈n/m⌉ for a c-regular guest.
    #[test]
    fn induced_problem_h_bounded(seed in 0u64..1000, n_scale in 2usize..6, m in 2usize..9) {
        let n = 8 * n_scale;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let f: Vec<Node> = (0..n).map(|i| ((i * m) / n) as Node).collect();
        let prob = universal_networks::routing::problem::guest_induced(&guest, &f, m);
        prop_assert!(prob.h() <= 4 * n.div_ceil(m));
    }

    /// Fragments of valid traces always capture guest adjacency (Lemma 3.3).
    #[test]
    fn fragments_always_structural(seed in 0u64..200, steps in 2u32..5) {
        use universal_networks::pebble::fragment::{extract_fragment, GeneratorChoice};
        let n = 32;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), seed);
        let router = presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(n, 4))
            .router(&router)
            .steps(steps)
            .run_with_rng(&mut rng)
            .expect("configuration is valid");
        let trace = check(&guest, &host, &run.protocol).unwrap();
        for t0 in 0..steps {
            let frag = extract_fragment(&trace, t0, GeneratorChoice::First).unwrap();
            prop_assert!(frag.verify_against_guest(&guest).is_ok());
        }
    }

    /// Empty-problem and self-loop-free invariants of the problem generators.
    #[test]
    fn problem_generators_within_range(seed in 0u64..1000, m_exp in 2u32..7, h in 1usize..4) {
        let m = 1usize << m_exp;
        let mut rng = seeded_rng(seed);
        let p = RoutingProblem::new(m, universal_networks::routing::problem::random_h_h(m, h, &mut rng).pairs);
        prop_assert_eq!(p.h(), h);
    }

    /// Pruned protocols remain valid and never grow.
    #[test]
    fn pruning_preserves_validity(seed in 0u64..300, steps in 1u32..4) {
        use universal_networks::pebble::optimize::prune;
        let n = 24;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), seed);
        let router = presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(n, 4))
            .router(&router)
            .steps(steps)
            .run_with_rng(&mut rng)
            .expect("configuration is valid");
        let (pruned, stats) = prune(&guest, &run.protocol);
        prop_assert!(check(&guest, &host, &pruned).is_ok());
        prop_assert!(stats.busy_after <= stats.busy_before);
        prop_assert!(stats.steps_after <= stats.steps_before);
        // Pruning is idempotent.
        let (pruned2, stats2) = prune(&guest, &pruned);
        prop_assert_eq!(pruned2, pruned);
        prop_assert_eq!(stats2.busy_after, stats2.busy_before);
    }

    /// The asynchronous simulator certifies and matches direct execution
    /// for every scheduling policy.
    #[test]
    fn async_simulator_always_correct(
        seed in 0u64..200,
        steps in 1u32..4,
        policy_idx in 0usize..3,
    ) {
        use universal_networks::core::async_sim::{AsyncSimulator, SchedulePolicy};
        let policy = [
            SchedulePolicy::Random,
            SchedulePolicy::LowestLevel,
            SchedulePolicy::DeepestFirst,
        ][policy_idx];
        let n = 24;
        let mut rng = seeded_rng(seed);
        let guest = random_regular(n, 4, &mut rng);
        let host = complete(4);
        let comp = GuestComputation::random(guest.clone(), seed ^ 1);
        let sim = AsyncSimulator { embedding: Embedding::block(n, 4), policy };
        let run = sim.simulate(&comp, &host, steps, &mut rng);
        let trace = check(&guest, &host, &run.protocol).expect("certifies");
        prop_assert_eq!(run.final_states, comp.run_final(steps));
        prop_assert!(trace.total_weight() <= 4 * trace.host_steps);
    }

    /// Checker robustness fuzz: arbitrary mutations of a valid protocol
    /// never panic the checker; it cleanly accepts or rejects, and its
    /// verdict is deterministic.
    #[test]
    fn checker_never_panics_on_mutations(
        seed in 0u64..500,
        mutations in prop::collection::vec((0usize..10_000, 0u8..4, 0u32..64, 0u32..8), 1..6),
    ) {
        use universal_networks::pebble::{Op, Pebble};
        let n = 16;
        let guest = ring(n);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), seed);
        let router = presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(n, 4))
            .router(&router)
            .steps(2)
            .seed(seed)
            .run()
            .expect("configuration is valid");
        let mut proto = run.protocol;
        for &(pos, kind, a, b) in &mutations {
            let steps = proto.steps.len();
            let row = pos % steps;
            let q = (pos / steps) % 4;
            proto.steps[row][q] = match kind {
                0 => Op::Idle,
                1 => Op::Generate(Pebble::new(a % 20, b % 4)), // may be out of range
                2 => Op::Send { pebble: Pebble::new(a % 20, b % 4), to: (a % 5) % 4 },
                _ => Op::Recv { from: (b % 4) },
            };
        }
        let v1 = check(&guest, &host, &proto).is_ok();
        let v2 = check(&guest, &host, &proto).is_ok();
        prop_assert_eq!(v1, v2, "checker verdict must be deterministic");
    }
}
