//! Step-by-step protocol replay.
//!
//! The checker ([`crate::check`](fn@crate::check)) validates a protocol wholesale; this
//! module *observes* one: an iterator that walks host steps and yields a
//! [`StepSummary`] per step (what was generated, moved, how custody grew),
//! plus access to the evolving per-host pebble sets. Useful for debugging
//! simulators, for teaching the model, and for rendering progress timelines.
//!
//! Replay does not re-validate; feed it checker-approved protocols.

use crate::protocol::{Op, Pebble, Protocol};
use unet_topology::util::FxHashSet;
use unet_topology::Node;

/// What happened in one host step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepSummary {
    /// Host step index (0-based).
    pub step: usize,
    /// Pebbles generated this step, with their generating host.
    pub generated: Vec<(Node, Pebble)>,
    /// Transfers `(from, to, pebble)` completed this step.
    pub transferred: Vec<(Node, Node, Pebble)>,
    /// Number of idle processors.
    pub idle: usize,
    /// Total distinct `(host, pebble)` custody pairs after this step
    /// (excluding the implicit initial pebbles).
    pub custody: usize,
    /// Highest guest level with any generated pebble so far (0 if none).
    pub frontier_level: u32,
}

/// Replaying iterator over a protocol's host steps.
pub struct Replay<'a> {
    proto: &'a Protocol,
    step: usize,
    held: Vec<FxHashSet<u64>>,
    custody: usize,
    frontier: u32,
}

impl<'a> Replay<'a> {
    /// Start a replay at step 0 (only initial pebbles held).
    pub fn new(proto: &'a Protocol) -> Self {
        Replay {
            proto,
            step: 0,
            held: vec![FxHashSet::default(); proto.host_m],
            custody: 0,
            frontier: 0,
        }
    }

    /// Pebbles (t ≥ 1) currently held by host `q`.
    pub fn held_by(&self, q: Node) -> Vec<Pebble> {
        let mut v: Vec<Pebble> =
            self.held[q as usize].iter().map(|&k| Pebble::from_key(k)).collect();
        v.sort_unstable();
        v
    }

    /// Steps consumed so far.
    pub fn position(&self) -> usize {
        self.step
    }

    /// Run to completion, returning every summary.
    pub fn run(self) -> Vec<StepSummary> {
        self.collect()
    }
}

impl Iterator for Replay<'_> {
    type Item = StepSummary;

    fn next(&mut self) -> Option<StepSummary> {
        let row = self.proto.steps.get(self.step)?;
        let mut generated = Vec::new();
        let mut transferred = Vec::new();
        let mut idle = 0usize;
        for (q, op) in row.iter().enumerate() {
            match *op {
                Op::Idle => idle += 1,
                Op::Generate(p) => generated.push((q as Node, p)),
                Op::Send { pebble, to } => transferred.push((q as Node, to, pebble)),
                Op::Recv { .. } => {}
            }
        }
        // Apply effects.
        for &(q, p) in &generated {
            if self.held[q as usize].insert(p.key()) {
                self.custody += 1;
            }
            self.frontier = self.frontier.max(p.t);
        }
        for &(_, to, p) in &transferred {
            if p.t >= 1 && self.held[to as usize].insert(p.key()) {
                self.custody += 1;
            }
        }
        let summary = StepSummary {
            step: self.step,
            generated,
            transferred,
            idle,
            custody: self.custody,
            frontier_level: self.frontier,
        };
        self.step += 1;
        Some(summary)
    }
}

/// A one-line-per-step timeline rendering (capped at `max_lines`).
pub fn render_timeline(proto: &Protocol, max_lines: usize) -> String {
    let mut out = String::new();
    for s in Replay::new(proto).take(max_lines) {
        out.push_str(&format!(
            "step {:>5}: {:>3} gen, {:>3} xfer, {:>3} idle | custody {:>6} | frontier t={}\n",
            s.step,
            s.generated.len(),
            s.transferred.len(),
            s.idle,
            s.custody,
            s.frontier_level
        ));
    }
    if proto.host_steps() > max_lines {
        out.push_str(&format!("… ({} more steps)\n", proto.host_steps() - max_lines));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolBuilder;

    fn sample() -> Protocol {
        let mut b = ProtocolBuilder::new(3, 1, 2);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        b.transfer(0, 1, Pebble::new(0, 1));
        b.end_step();
        b.set_op(0, Op::Generate(Pebble::new(1, 1)));
        b.set_op(1, Op::Generate(Pebble::new(2, 1)));
        b.end_step();
        b.finish()
    }

    #[test]
    fn replay_tracks_custody_and_frontier() {
        let proto = sample();
        let steps = Replay::new(&proto).run();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].generated, vec![(0, Pebble::new(0, 1))]);
        assert_eq!(steps[0].custody, 1);
        assert_eq!(steps[0].idle, 1);
        assert_eq!(steps[1].transferred, vec![(0, 1, Pebble::new(0, 1))]);
        assert_eq!(steps[1].custody, 2); // host 1 now also holds (0,1)
        assert_eq!(steps[2].custody, 4);
        assert!(steps.iter().all(|s| s.frontier_level == 1));
    }

    #[test]
    fn held_by_reflects_progress() {
        let proto = sample();
        let mut r = Replay::new(&proto);
        assert!(r.held_by(1).is_empty());
        r.next();
        r.next();
        assert_eq!(r.held_by(1), vec![Pebble::new(0, 1)]);
        assert_eq!(r.position(), 2);
    }

    #[test]
    fn regenerating_same_pebble_does_not_double_count() {
        let mut b = ProtocolBuilder::new(1, 1, 1);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        let proto = b.finish();
        let steps = Replay::new(&proto).run();
        assert_eq!(steps[1].custody, 1);
    }

    #[test]
    fn timeline_renders_and_caps() {
        let proto = sample();
        let t = render_timeline(&proto, 2);
        assert_eq!(t.lines().count(), 3); // 2 steps + "… (1 more steps)"
        assert!(t.contains("1 gen"));
        assert!(t.contains("more steps"));
        let full = render_timeline(&proto, 10);
        assert_eq!(full.lines().count(), 3);
    }
}
