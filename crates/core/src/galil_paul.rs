//! Sorting-based universal simulation (Galil & Paul \[6\]).
//!
//! Galil and Paul showed that any network that can sort `n` keys in
//! `sort(n, m)` parallel steps is `n`-universal with slowdown
//! `O(sort(n, m))`. The routing mechanism is *sorting packets by
//! destination*: every comparator exchange moves packets one hop. We realize
//! it with Batcher's bitonic network (documented AKS substitute, depth
//! `O(log² n)`), whose comparators are exactly hypercube edges — so the host
//! is the hypercube (the canonical comparison topology; constant-degree
//! realizations like the shuffle-exchange emulate each stage with `O(1)`
//! overhead, which we account for as a constant).

use crate::routers::Router;
use rand::rngs::StdRng;
use unet_routing::decompose::decompose_into_permutations;
use unet_routing::packet::{route, Discipline, Outcome, Packet};
use unet_routing::problem::RoutingProblem;
use unet_routing::sortnet::{bitonic_stages, odd_even_merge_stages, Comparator};
use unet_topology::{Graph, Node};

/// Which comparator network drives the sort-based routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortNetwork {
    /// Batcher's bitonic sorter (the default; uniform stages).
    #[default]
    Bitonic,
    /// Batcher's odd–even mergesort (fewer comparators, same depth class).
    OddEvenMerge,
}

impl SortNetwork {
    fn stages(self, k: u32) -> Vec<Vec<Comparator>> {
        match self {
            SortNetwork::Bitonic => bitonic_stages(k),
            SortNetwork::OddEvenMerge => odd_even_merge_stages(k),
        }
    }
}

/// The *comparator graph* of a sorting network on `2^k` positions: one edge
/// per comparator pair. This is the natural host for sort-based routing —
/// for the bitonic network it is exactly the hypercube; odd–even mergesort
/// additionally uses stride edges `(i, i+2^j)` that are not hypercube edges,
/// so its host is a hypercube superset (degree `O(log² n)`, a comparison
/// topology like the hypercube itself).
pub fn comparator_host(k: u32, net: SortNetwork) -> Graph {
    let n = 1usize << k;
    let mut b = unet_topology::GraphBuilder::new(n);
    for stage in net.stages(k) {
        for c in &stage {
            b.add_edge(c.lo, c.hi);
        }
    }
    b.build()
}

/// Per-packet hypercube walks induced by bitonic-sorting a permutation by
/// destination: packet starting at position `p` with destination `perm[p]`
/// ends at position `perm[p]`; every move is a hypercube edge.
///
/// Returns `paths[p]` with consecutive duplicates removed.
pub fn sorting_paths(k: u32, perm: &[Node]) -> Vec<Vec<Node>> {
    sorting_paths_with(k, perm, SortNetwork::Bitonic)
}

/// [`sorting_paths`] parameterized by the comparator network (ablation
/// hook: bitonic vs odd–even mergesort).
pub fn sorting_paths_with(k: u32, perm: &[Node], net: SortNetwork) -> Vec<Vec<Node>> {
    let n = 1usize << k;
    assert_eq!(perm.len(), n);
    // items[pos] = (key = destination, original position)
    let mut items: Vec<(Node, usize)> = perm.iter().enumerate().map(|(p, &d)| (d, p)).collect();
    let mut paths: Vec<Vec<Node>> = (0..n).map(|p| vec![p as Node]).collect();
    for stage in net.stages(k) {
        for c in &stage {
            let (lo, hi) = (c.lo as usize, c.hi as usize);
            if items[lo].0 > items[hi].0 {
                items.swap(lo, hi);
                paths[items[lo].1].push(lo as Node);
                paths[items[hi].1].push(hi as Node);
            }
        }
    }
    // Sorted by destination ⇒ position == destination for a permutation.
    for (pos, &(key, orig)) in items.iter().enumerate() {
        debug_assert_eq!(key as usize, pos);
        debug_assert_eq!(*paths[orig].last().unwrap(), key);
    }
    paths
}

/// Router that solves `h–h` problems on the hypercube by decomposing into
/// permutations and bitonic-sorting each by destination.
pub struct GalilPaulRouter {
    /// Hypercube dimension (`2^k` nodes).
    pub k: u32,
}

/// Galil–Paul router with an explicit comparator-network choice.
pub struct GalilPaulRouterWith {
    /// Hypercube dimension.
    pub k: u32,
    /// Comparator network.
    pub net: SortNetwork,
}

impl Router for GalilPaulRouter {
    fn route(&self, host: &Graph, prob: &RoutingProblem, rng: &mut StdRng) -> Outcome {
        GalilPaulRouterWith { k: self.k, net: SortNetwork::Bitonic }.route(host, prob, rng)
    }

    fn name(&self) -> &'static str {
        "galil-paul-bitonic-sort"
    }

    fn validate(&self, host: &Graph) -> Result<(), String> {
        GalilPaulRouterWith { k: self.k, net: SortNetwork::Bitonic }.validate(host)
    }
}

impl Router for GalilPaulRouterWith {
    fn route(&self, host: &Graph, prob: &RoutingProblem, _rng: &mut StdRng) -> Outcome {
        let n = 1usize << self.k;
        assert_eq!(host.n(), n, "host must be the comparator graph on 2^{} positions", self.k);
        if prob.pairs.is_empty() {
            return Outcome { steps: 0, delivered_at: vec![], transfers: vec![], max_queue: 0 };
        }
        let perms = decompose_into_permutations(prob);
        let net = self.net;
        // Match original pairs to (perm, src) slots as in the Beneš router.
        use unet_topology::util::FxHashMap;
        let mut unmatched: FxHashMap<(Node, Node), Vec<usize>> = FxHashMap::default();
        for (i, &p) in prob.pairs.iter().enumerate() {
            unmatched.entry(p).or_default().push(i);
        }
        let mut packets: Vec<Packet> = Vec::new();
        let mut owner: Vec<usize> = Vec::new(); // packet → original pair index
        for perm in &perms {
            let paths = sorting_paths_with(self.k, perm, net);
            for (src, path) in paths.into_iter().enumerate() {
                let dst = perm[src];
                if let Some(list) = unmatched.get_mut(&(src as Node, dst)) {
                    if let Some(pair_idx) = list.pop() {
                        packets.push(Packet {
                            id: packets.len() as u32,
                            src: src as Node,
                            dst,
                            path,
                        });
                        owner.push(pair_idx);
                        continue;
                    }
                }
                // Padding slot: no physical packet.
            }
        }
        let limit: u32 = packets.iter().map(|p| p.path.len() as u32 + 1).sum::<u32>() + 64;
        let out = route(host, &packets, Discipline::FarthestFirst, limit)
            .expect("engine progress under generous limit");
        // Re-index delivered_at and transfers to original pair ids.
        let mut delivered = vec![0u32; prob.pairs.len()];
        for (pkt_idx, &pair_idx) in owner.iter().enumerate() {
            delivered[pair_idx] = out.delivered_at[pkt_idx];
        }
        let transfers = out
            .transfers
            .into_iter()
            .map(|mut t| {
                t.packet_id = owner[t.packet_id as usize] as u32;
                t
            })
            .collect();
        Outcome { steps: out.steps, delivered_at: delivered, transfers, max_queue: out.max_queue }
    }

    fn name(&self) -> &'static str {
        match self.net {
            SortNetwork::Bitonic => "galil-paul-bitonic-sort",
            SortNetwork::OddEvenMerge => "galil-paul-odd-even-merge",
        }
    }

    fn validate(&self, host: &Graph) -> Result<(), String> {
        let n = 1usize << self.k;
        if host.n() == n {
            Ok(())
        } else {
            Err(format!(
                "host has {} nodes but the comparator graph on 2^{} positions has {n}",
                host.n(),
                self.k
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::Embedding;
    use crate::guest::GuestComputation;
    use crate::sim::Simulation;
    use unet_topology::generators::{hypercube, ring};
    use unet_topology::util::seeded_rng;

    #[test]
    fn sorting_paths_are_hypercube_walks() {
        let k = 3;
        let g = hypercube(k as usize);
        let perm: Vec<Node> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        let paths = sorting_paths(k, &perm);
        for (src, path) in paths.iter().enumerate() {
            assert_eq!(path[0], src as Node);
            assert_eq!(*path.last().unwrap(), perm[src]);
            for w in path.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "hop {w:?}");
            }
        }
    }

    #[test]
    fn sorting_paths_random_permutations() {
        use rand::seq::SliceRandom;
        let mut rng = seeded_rng(41);
        for _ in 0..10 {
            let mut perm: Vec<Node> = (0..16).collect();
            perm.shuffle(&mut rng);
            let paths = sorting_paths(4, &perm);
            for (src, path) in paths.iter().enumerate() {
                assert_eq!(*path.last().unwrap(), perm[src]);
                // Path length bounded by network depth + 1.
                assert!(path.len() <= unet_routing::sortnet::bitonic_depth(4) + 1);
            }
        }
    }

    #[test]
    fn galil_paul_router_solves_h_h() {
        let k = 3u32;
        let host = hypercube(3);
        let prob = RoutingProblem::new(8, vec![(0, 7), (0, 3), (5, 5), (7, 0)]);
        let out = GalilPaulRouter { k }.route(&host, &prob, &mut seeded_rng(2));
        assert_eq!(out.delivered_at.len(), 4);
        assert!(out.steps > 0);
    }

    #[test]
    fn bitonic_comparator_host_is_hypercube() {
        let ch = comparator_host(4, SortNetwork::Bitonic);
        assert_eq!(ch, hypercube(4));
    }

    #[test]
    fn odd_even_merge_routes_on_its_comparator_host() {
        let host = comparator_host(4, SortNetwork::OddEvenMerge);
        // Superset of the hypercube, still a comparison topology.
        assert!(
            host.contains_subgraph(&hypercube(4)) || host.num_edges() >= hypercube(4).num_edges()
        );
        let prob = RoutingProblem::new(16, vec![(0, 15), (3, 9), (9, 3)]);
        let out = GalilPaulRouterWith { k: 4, net: SortNetwork::OddEvenMerge }.route(
            &host,
            &prob,
            &mut seeded_rng(6),
        );
        assert_eq!(out.delivered_at.len(), 3);
        use rand::seq::SliceRandom;
        let mut perm: Vec<Node> = (0..16).collect();
        perm.shuffle(&mut seeded_rng(7));
        for (src, path) in
            sorting_paths_with(4, &perm, SortNetwork::OddEvenMerge).iter().enumerate()
        {
            assert_eq!(path[0], src as Node);
            assert_eq!(*path.last().unwrap(), perm[src]);
            for w in path.windows(2) {
                assert!(host.has_edge(w[0], w[1]), "hop {w:?} not a comparator edge");
            }
        }
    }

    #[test]
    fn galil_paul_universal_simulation_end_to_end() {
        // Guest ring(16) on hypercube(8) host via sorting-based routing —
        // the Galil–Paul universal machine in miniature.
        let guest = ring(16);
        let host = hypercube(3);
        let comp = GuestComputation::random(guest.clone(), 77);
        let router = GalilPaulRouter { k: 3 };
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(16, 8))
            .router(&router)
            .steps(2)
            .run_with_rng(&mut seeded_rng(3))
            .expect("valid configuration");
        unet_pebble::check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }
}
