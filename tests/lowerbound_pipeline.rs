//! Integration of the lower-bound machinery against live simulations:
//! the lemmas of Section 3 must hold on every certified protocol our
//! simulators produce.

use universal_networks::core::prelude::*;
use universal_networks::lowerbound::audit::run_audit;
use universal_networks::lowerbound::averaging::analyze;
use universal_networks::lowerbound::wavefront;
use universal_networks::lowerbound::{build_g0, build_g0_for_host, CountingParams};
use universal_networks::pebble::check;
use universal_networks::topology::generators::random_supergraph;
use universal_networks::topology::generators::torus;
use universal_networks::topology::util::seeded_rng;

#[test]
fn audit_passes_across_routers_and_hosts() {
    let mut rng = seeded_rng(41);
    let g0 = build_g0(64, 1, &mut rng);
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    let cases: Vec<(&str, _)> = vec![("torus-2x2", torus(2, 2)), ("torus-4x4", torus(4, 4))];
    for (name, host) in cases {
        let m = host.n();
        let router = presets::bfs();
        let report = run_audit(
            &g0,
            &guest,
            &host,
            Embedding::block(64, m),
            &router,
            8,
            0.05,
            &mut seeded_rng(42),
        );
        assert!(report.passed(), "{name}: {report:#?}");
    }
}

#[test]
fn g0_for_host_sizes_consistently() {
    let mut rng = seeded_rng(43);
    for m in [16usize, 64, 256] {
        let (g0, n) = build_g0_for_host(100, m, &mut rng);
        assert_eq!(g0.n(), n);
        assert!(g0.graph.max_degree() <= 12);
        assert!(g0.gamma > 0.0);
    }
}

#[test]
fn z_s_grows_with_computation_length() {
    // Longer computations give the averaging argument more critical steps.
    let mut rng = seeded_rng(44);
    let g0 = build_g0(36, 1, &mut rng);
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 45);
    let host = torus(2, 2);
    let router = presets::bfs();
    let mut sizes = Vec::new();
    for steps in [4u32, 8, 12] {
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(36, 4))
            .router(&router)
            .steps(steps)
            .seed(46)
            .run()
            .expect("configuration is valid");
        let trace = check(&guest, &host, &run.protocol).unwrap();
        let analysis = analyze(&trace, &g0);
        assert!(analysis.all_bounds_hold());
        sizes.push(analysis.z_s.len());
    }
    assert!(sizes[2] > sizes[0], "Z_S sizes: {sizes:?}");
}

#[test]
fn wavefront_ordering_holds_for_every_simulator() {
    // Level-t majorities must be reached in increasing order of t for any
    // valid protocol — the monotonicity behind Prop. 3.17.
    let mut rng = seeded_rng(47);
    let g0 = build_g0(36, 1, &mut rng);
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 48);
    let host = torus(3, 3);
    let router = presets::torus_xy(3, 3);
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(36, 9))
        .router(&router)
        .steps(6)
        .seed(49)
        .run()
        .expect("configuration is valid");
    let trace = check(&guest, &host, &run.protocol).unwrap();
    let ex = wavefront::existence_times(&trace);
    let mut last = 0u32;
    for t in 1..=6u32 {
        let tau = wavefront::tau_threshold(&ex, t, 18).expect("majority reached");
        assert!(tau > last, "level {t} majority at {tau} not after {last}");
        last = tau;
    }
}

#[test]
fn counting_chain_lower_bound_never_exceeds_measured() {
    // Any *correct* simulation's measured inefficiency must exceed the
    // counting-chain k_min at matching parameters (the bound is a lower
    // bound, after all).
    let mut rng = seeded_rng(50);
    let g0 = build_g0(64, 1, &mut rng);
    let guest = random_supergraph(&g0.graph, 12, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 51);
    let host = torus(4, 4);
    let router = presets::torus_xy(4, 4);
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(64, 16))
        .router(&router)
        .steps(6)
        .seed(52)
        .run()
        .expect("configuration is valid");
    verify_run(&comp, &host, &run, 6).unwrap();
    let params = CountingParams::shape(g0.gamma);
    let k_lower = universal_networks::lowerbound::k_min(16, &params);
    assert!(
        run.inefficiency() >= k_lower,
        "measured k {} below theoretical floor {k_lower}",
        run.inefficiency()
    );
}
