//! Minimal data-parallel helpers on crossbeam scoped threads.
//!
//! The experiment sweeps (simulate the same guest on six host sizes, build
//! `side²` canonical trees, run `trials` routing problems) are embarrassingly
//! parallel; these helpers parallelize them without pulling a full
//! work-stealing runtime into the dependency tree. Order is preserved;
//! panics in workers propagate.

/// Map `f` over `items` on up to `threads` scoped worker threads, preserving
/// input order. With `threads <= 1` (or one item) runs inline.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Contiguous chunks per worker; results concatenated in order.
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(|_| slice.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    out.into_iter().flatten().collect()
}

/// Map `f` over up-to-`threads` contiguous index ranges covering `0..len`,
/// concatenating the per-range outputs in range order.
///
/// This is the shard-shaped sibling of [`par_map`]: instead of one closure
/// call per item, the worker sees a whole `Range<usize>` and returns the
/// vector for that shard. Because shards are contiguous and concatenated in
/// order, any per-item computation that depends only on the item index (and
/// shared read-only state) produces output **identical** to the sequential
/// loop — the property the parallel simulation engine's bit-for-bit claim
/// rests on. With `threads <= 1` the single range `0..len` runs inline.
pub fn par_chunks<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads <= 1 {
        return f(0..len);
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..len).step_by(chunk).map(|lo| lo..(lo + chunk).min(len)).collect();
    let mut out: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    let fr = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                scope.spawn(move |_| fr(r))
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    out.into_iter().flatten().collect()
}

/// Number of worker threads to use by default.
///
/// Resolution order:
/// 1. `UNET_THREADS` environment variable, if set to a positive integer —
///    the explicit override for machines where the default cap is wrong
///    (honoured by the `unet` CLI and `bench-json` alike, so one variable
///    controls every sweep).
/// 2. Otherwise the available parallelism, capped at 8. The cap exists
///    because the experiment sweeps are memory-bandwidth-bound: each worker
///    streams whole CSR graphs and routing queues, so beyond ~8 workers the
///    extra threads mostly contend on the memory bus rather than speeding
///    anything up. `UNET_THREADS` is the escape hatch for hardware where
///    that heuristic is wrong (many-channel servers, or CI boxes that need
///    `UNET_THREADS=2` to stay within a cgroup quota).
///
/// An unset, empty, or unparsable `UNET_THREADS` falls back to the capped
/// default; `UNET_THREADS=0` is treated as unset. An empty or unparsable
/// value additionally gets a one-line stderr warning naming the bad value
/// (once per process), so a typo'd override fails loudly instead of
/// silently running at the default width.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("UNET_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(0) => {} // documented: zero means "unset", no warning
            Ok(n) => return n,
            Err(_) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unparsable UNET_THREADS={raw:?}; \
                         falling back to the default thread count"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, 4, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = par_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(&[7u32], 16, |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        par_map(&[1, 2, 3], 2, |&x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn chunks_match_sequential_order() {
        let out = par_chunks(100, 4, |r| r.map(|i| i * 3).collect());
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_inline_and_empty() {
        let one = par_chunks(5, 1, |r| r.collect());
        assert_eq!(one, vec![0, 1, 2, 3, 4]);
        let none: Vec<usize> = par_chunks(0, 4, |r| r.collect());
        assert!(none.is_empty());
        let more_threads = par_chunks(2, 16, |r| r.collect());
        assert_eq!(more_threads, vec![0, 1]);
    }

    #[test]
    fn unet_threads_env_override() {
        // Set, read, restore — keeps the process env clean for other tests.
        let saved = std::env::var("UNET_THREADS").ok();
        std::env::set_var("UNET_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("UNET_THREADS", " 12 ");
        assert_eq!(default_threads(), 12);
        // Zero and garbage fall back to the capped default.
        for bad in ["0", "", "lots"] {
            std::env::set_var("UNET_THREADS", bad);
            let n = default_threads();
            assert!((1..=8).contains(&n), "fallback out of range: {n}");
        }
        match saved {
            Some(v) => std::env::set_var("UNET_THREADS", v),
            None => std::env::remove_var("UNET_THREADS"),
        }
    }

    #[test]
    fn actually_parallel_speedup_shape() {
        // Not a benchmark — just confirm results match sequential on a
        // non-trivial workload.
        let items: Vec<usize> = (0..64).collect();
        let seq: Vec<usize> = items.iter().map(|&i| (0..1000).fold(i, |a, b| a ^ b)).collect();
        let par = par_map(&items, default_threads(), |&i| (0..1000).fold(i, |a, b| a ^ b));
        assert_eq!(seq, par);
    }
}
