//! `bench-json` — machine-readable benchmark artifacts.
//!
//! Runs the E1 (upper-bound) and E2 (lower-bound trade-off) kernels and
//! writes `BENCH_E1.json` / `BENCH_E2.json`: one JSON object per
//! experiment with per-row slowdown, inefficiency, makespan, sizes, and
//! wall-clock time. The artifacts are the CI/regression-friendly twin of
//! the human tables the criterion benches print.
//!
//! ```text
//! cargo run -p unet-bench --bin bench-json [--release] [OUT_DIR]
//! ```

use std::time::Instant;
use unet_bench::{butterfly_metrics, rng, standard_guest};
use unet_lowerbound::tradeoff_table;
use unet_obs::json::Value;

const E2_GAMMA: f64 = 0.125;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn e1_artifact() -> Value {
    let n = 512usize;
    let steps = 3u32;
    let (guest, comp) = standard_guest(n, 0xE1);
    let mut r = rng();
    let mut rows = Vec::new();
    let total_start = Instant::now();
    for dim in 2..=4usize {
        let wall_start = Instant::now();
        let m = butterfly_metrics(&guest, &comp, dim, steps, &mut r);
        let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
        rows.push(obj(vec![
            ("dim", Value::UInt(dim as u64)),
            ("guest_n", Value::UInt(m.guest_n as u64)),
            ("host_m", Value::UInt(m.host_m as u64)),
            ("guest_steps", Value::UInt(m.guest_t as u64)),
            ("makespan", Value::UInt(m.host_steps as u64)),
            ("slowdown", Value::Float(m.slowdown)),
            ("inefficiency", Value::Float(m.inefficiency)),
            ("avg_weight", Value::Float(m.avg_weight)),
            ("wall_ms", Value::Float(wall_ms)),
        ]));
    }
    obj(vec![
        ("experiment", Value::Str("E1".into())),
        ("title", Value::Str("Theorem 2.1 upper bound: butterfly hosts".into())),
        ("guest", Value::Str(format!("random-regular n={n} d=4"))),
        ("guest_n", Value::UInt(n as u64)),
        ("guest_steps", Value::UInt(steps as u64)),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(total_start.elapsed().as_secs_f64() * 1e3)),
    ])
}

fn e2_artifact() -> Value {
    let n = 1u64 << 14;
    let ms: Vec<u64> = (3..=14).map(|e| 1u64 << e).collect();
    let wall_start = Instant::now();
    let table = tradeoff_table(n, &ms, E2_GAMMA, 4);
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let rows = table
        .iter()
        .map(|row| {
            obj(vec![
                ("host_m", Value::UInt(row.m)),
                ("guest_n", Value::UInt(n)),
                ("inefficiency_ideal", Value::Float(row.k_ideal)),
                ("inefficiency_shape", Value::Float(row.k_shape)),
                ("inefficiency_paper", Value::Float(row.k_paper)),
                ("slowdown_shape", Value::Float(row.s_shape)),
                ("slowdown_upper", Value::Float(row.s_upper)),
                ("ms_product", Value::Float(row.ms_product)),
            ])
        })
        .collect();
    obj(vec![
        ("experiment", Value::Str("E2".into())),
        ("title", Value::Str("Theorem 3.1 lower-bound trade-off".into())),
        ("guest_n", Value::UInt(n)),
        ("gamma", Value::Float(E2_GAMMA)),
        ("rows", Value::Arr(rows)),
        ("wall_ms_total", Value::Float(wall_ms)),
    ])
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    for (name, artifact) in [("BENCH_E1.json", e1_artifact()), ("BENCH_E2.json", e2_artifact())] {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, artifact.to_json() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_obs::json::parse;

    #[test]
    fn artifacts_round_trip_with_required_fields() {
        for artifact in [e1_artifact(), e2_artifact()] {
            let text = artifact.to_json();
            let back = parse(&text).expect("artifact is valid JSON");
            let rows = back.get("rows").and_then(Value::as_arr).expect("rows");
            assert!(!rows.is_empty());
            for row in rows {
                assert!(row.get("host_m").and_then(Value::as_u64).is_some());
                assert!(row.get("guest_n").and_then(Value::as_u64).is_some());
            }
            assert!(back.get("wall_ms_total").and_then(Value::as_f64).unwrap() >= 0.0);
        }
        // E1 rows carry measured slowdown + wall time (the regression signal).
        let e1 = e1_artifact();
        for row in e1.get("rows").and_then(Value::as_arr).unwrap() {
            assert!(row.get("slowdown").and_then(Value::as_f64).unwrap() >= 1.0);
            assert!(row.get("inefficiency").and_then(Value::as_f64).unwrap() > 0.0);
            assert!(row.get("makespan").and_then(Value::as_u64).unwrap() > 0);
            assert!(row.get("wall_ms").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }
}
