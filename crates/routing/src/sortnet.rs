//! Sorting networks: Batcher's bitonic sorter, standing in for the AKS
//! circuit.
//!
//! Galil & Paul's universal machine (and the deterministic `h–h` routing the
//! paper mentions via Leighton's Columnsort over AKS) uses parallel sorting
//! as the routing mechanism. AKS has unimplementable constants, so —
//! documented substitution — we use Batcher's bitonic network: depth
//! `O(log² n)` instead of `O(log n)`, same obliviousness and
//! data-independence, which is what the simulation construction needs.

/// One comparator: compare positions `(lo, hi)`; after the stage
/// `v[lo] ≤ v[hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Position receiving the minimum.
    pub lo: u32,
    /// Position receiving the maximum.
    pub hi: u32,
}

/// The bitonic sorting network for `n = 2^k` elements as a list of stages;
/// comparators within a stage touch disjoint positions (parallel step).
/// Depth = `k·(k+1)/2` stages.
pub fn bitonic_stages(k: u32) -> Vec<Vec<Comparator>> {
    let n = 1usize << k;
    let mut stages = Vec::new();
    for kk in 1..=k {
        let block = 1usize << kk;
        for jj in (0..kk).rev() {
            let dist = 1usize << jj;
            let mut stage = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ dist;
                if l > i {
                    // Ascending block iff bit `kk` of i is 0.
                    let ascending = i & block == 0;
                    stage.push(if ascending {
                        Comparator { lo: i as u32, hi: l as u32 }
                    } else {
                        Comparator { lo: l as u32, hi: i as u32 }
                    });
                }
            }
            stages.push(stage);
        }
    }
    stages
}

/// Apply a staged network to `values` in place.
pub fn apply_stages<T: Ord + Copy>(stages: &[Vec<Comparator>], values: &mut [T]) {
    for stage in stages {
        for c in stage {
            let (lo, hi) = (c.lo as usize, c.hi as usize);
            if values[lo] > values[hi] {
                values.swap(lo, hi);
            }
        }
    }
}

/// Sort via the bitonic network (length must be a power of two).
pub fn bitonic_sort<T: Ord + Copy>(values: &mut [T]) {
    assert!(values.len().is_power_of_two(), "bitonic sort needs 2^k elements");
    if values.len() <= 1 {
        return;
    }
    let k = values.len().trailing_zeros();
    let stages = bitonic_stages(k);
    apply_stages(&stages, values);
}

/// Depth (parallel steps) of the bitonic sorter on `2^k` inputs.
pub fn bitonic_depth(k: u32) -> usize {
    (k * (k + 1) / 2) as usize
}

/// Predicted sorting-based `h–h` routing time on an `n = 2^k`-node host that
/// executes one comparator stage per step: `O(h)` sorts of the packet array,
/// i.e. `≈ h · depth` — the `sort(n, m)`-driven slowdown of Galil–Paul.
pub fn sorting_route_steps(k: u32, h: usize) -> usize {
    h.max(1) * bitonic_depth(k)
}

/// Verify that comparators within each stage are vertex-disjoint (so a stage
/// is executable in one parallel step on a network hosting one element per
/// node).
pub fn stages_are_parallel(stages: &[Vec<Comparator>]) -> bool {
    stages.iter().all(|stage| {
        let mut seen = std::collections::HashSet::new();
        stage.iter().all(|c| seen.insert(c.lo) && seen.insert(c.hi))
    })
}

/// Odd–even transposition sort on `n` elements: `n` stages of adjacent
/// comparators — *the* sorting network for linear-array/ring hosts, where
/// every comparator is a physical link. Depth `n` (vs `O(log² n)` for
/// bitonic on hypercubic hosts): using it as the routing mechanism makes a
/// ring host pay `Θ(m)` per permutation, which is why rings are terrible
/// universal hosts (experiment E8).
pub fn odd_even_transposition_stages(n: usize) -> Vec<Vec<Comparator>> {
    (0..n)
        .map(|round| {
            (round % 2..n.saturating_sub(1))
                .step_by(2)
                .map(|i| Comparator { lo: i as u32, hi: i as u32 + 1 })
                .collect()
        })
        .collect()
}

/// Batcher's odd–even mergesort on `n = 2^k` elements — the other classic
/// `O(log² n)`-depth network; included as an ablation against bitonic
/// (slightly fewer comparators, same depth class).
pub fn odd_even_merge_stages(kk: u32) -> Vec<Vec<Comparator>> {
    let n = 1usize << kk;
    let mut stages: Vec<Vec<Comparator>> = Vec::new();
    // Knuth's iterative formulation: one parallel stage per (p, k) pair.
    let mut p = 1usize;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut stage = Vec::new();
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let a = i + j;
                    let b = i + j + k;
                    if b < n && a / (2 * p) == b / (2 * p) {
                        stage.push(Comparator { lo: a as u32, hi: b as u32 });
                    }
                }
                j += 2 * k;
            }
            if !stage.is_empty() {
                stages.push(stage);
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }
        p *= 2;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use unet_topology::util::seeded_rng;

    #[test]
    fn sorts_small_arrays() {
        for k in 0..6u32 {
            let n = 1usize << k;
            let mut v: Vec<u32> = (0..n as u32).rev().collect();
            bitonic_sort(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "k = {k}");
        }
    }

    #[test]
    fn sorts_random_arrays() {
        let mut rng = seeded_rng(5);
        for _ in 0..50 {
            let mut v: Vec<u64> = (0..64).map(|_| rng.gen_range(0..1000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            bitonic_sort(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn zero_one_principle_exhaustive() {
        // 0-1 principle: a comparator network sorts all inputs iff it sorts
        // all 0-1 inputs. Exhaust all 2^8 binary inputs for k = 3.
        let stages = bitonic_stages(3);
        for mask in 0u32..256 {
            let mut v: Vec<u8> = (0..8).map(|i| ((mask >> i) & 1) as u8).collect();
            apply_stages(&stages, &mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask = {mask}");
        }
    }

    #[test]
    fn stage_structure() {
        let stages = bitonic_stages(4);
        assert_eq!(stages.len(), bitonic_depth(4));
        assert_eq!(bitonic_depth(4), 10);
        assert!(stages_are_parallel(&stages));
        // Every stage has n/2 comparators.
        assert!(stages.iter().all(|s| s.len() == 8));
    }

    #[test]
    fn sorting_route_cost_monotone_in_h() {
        assert!(sorting_route_steps(10, 4) > sorting_route_steps(10, 1));
        assert_eq!(sorting_route_steps(10, 0), bitonic_depth(10));
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        let mut v = vec![3u32, 1, 2];
        bitonic_sort(&mut v);
    }

    #[test]
    fn odd_even_transposition_sorts() {
        for n in [1usize, 2, 5, 8, 17] {
            let stages = odd_even_transposition_stages(n);
            assert_eq!(stages.len(), n);
            assert!(stages_are_parallel(&stages));
            // Comparators only touch adjacent positions (linear-array model).
            for s in &stages {
                for c in s {
                    assert_eq!(c.hi, c.lo + 1);
                }
            }
            let mut v: Vec<u32> = (0..n as u32).rev().collect();
            apply_stages(&stages, &mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n = {n}: {v:?}");
        }
    }

    #[test]
    fn odd_even_transposition_zero_one_principle() {
        let stages = odd_even_transposition_stages(7);
        for mask in 0u32..128 {
            let mut v: Vec<u8> = (0..7).map(|i| ((mask >> i) & 1) as u8).collect();
            apply_stages(&stages, &mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask = {mask}");
        }
    }

    #[test]
    fn odd_even_merge_sorts() {
        let mut rng = seeded_rng(9);
        for k in 1..=6u32 {
            let stages = odd_even_merge_stages(k);
            assert!(stages_are_parallel(&stages), "k = {k}");
            for _ in 0..10 {
                let n = 1usize << k;
                let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                apply_stages(&stages, &mut v);
                assert_eq!(v, expect, "k = {k}");
            }
        }
    }

    #[test]
    fn odd_even_merge_fewer_comparators_than_bitonic() {
        // Batcher's odd-even network uses strictly fewer comparators than
        // bitonic at the same size (the classic comparison).
        for k in 3..=6u32 {
            let oe: usize = odd_even_merge_stages(k).iter().map(|s| s.len()).sum();
            let bi: usize = bitonic_stages(k).iter().map(|s| s.len()).sum();
            assert!(oe < bi, "k = {k}: odd-even {oe} vs bitonic {bi}");
        }
    }
}
