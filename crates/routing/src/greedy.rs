//! Greedy dimension-order routing on meshes and tori.
//!
//! Corrects the x-coordinate first, then the y-coordinate, taking wrap-around
//! shortcuts on tori. With farthest-first queueing this solves `h–h` problems
//! in `O(h·√m)` steps — the `√m` diameter cost that makes meshes *bad*
//! universal hosts compared to the butterfly's `log m` (experiment E8).

use crate::packet::{PathSelector, RouteError};
use rand::Rng;
use unet_topology::{Graph, Node};

/// Dimension-order (X-Y) path selector for a `rows × cols` grid, optionally
/// with torus wrap-around.
#[derive(Debug, Clone, Copy)]
pub struct DimensionOrder {
    /// Grid rows.
    pub rows: usize,
    /// Grid cols.
    pub cols: usize,
    /// Whether wrap-around edges may be used.
    pub torus: bool,
}

impl DimensionOrder {
    /// Selector for a mesh.
    pub fn mesh(rows: usize, cols: usize) -> Self {
        DimensionOrder { rows, cols, torus: false }
    }

    /// Selector for a torus.
    pub fn torus(rows: usize, cols: usize) -> Self {
        DimensionOrder { rows, cols, torus: true }
    }

    /// One-dimensional move sequence from `a` to `b` on a ring/path of
    /// length `len`: list of successive coordinates (excluding `a`).
    fn axis_walk(&self, a: usize, b: usize, len: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if a == b {
            return out;
        }
        let fwd = (b + len - a) % len; // steps going +1 with wraps
        let bwd = (a + len - b) % len;
        let step_up = if self.torus { fwd <= bwd } else { b > a };
        let mut cur = a;
        let dist = if self.torus { fwd.min(bwd) } else { b.abs_diff(a) };
        for _ in 0..dist {
            cur = if step_up { (cur + 1) % len } else { (cur + len - 1) % len };
            out.push(cur);
        }
        out
    }
}

impl PathSelector for DimensionOrder {
    fn path<R: Rng>(
        &self,
        _g: &Graph,
        src: Node,
        dst: Node,
        _rng: &mut R,
    ) -> Result<Vec<Node>, RouteError> {
        let (sx, sy) = (src as usize / self.cols, src as usize % self.cols);
        let (dx, dy) = (dst as usize / self.cols, dst as usize % self.cols);
        let mut path = vec![src];
        for x in self.axis_walk(sx, dx, self.rows) {
            path.push((x * self.cols + sy) as Node);
        }
        for y in self.axis_walk(sy, dy, self.cols) {
            path.push((dx * self.cols + y) as Node);
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{make_packets, route, Discipline};
    use crate::problem::{random_h_h, transpose};
    use unet_topology::generators::{mesh, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn mesh_path_is_xy() {
        let g = mesh(4, 4);
        let sel = DimensionOrder::mesh(4, 4);
        let p = sel.path(&g, 0, 15, &mut seeded_rng(0)).unwrap();
        // X first: 0 → 4 → 8 → 12, then Y: 13 → 14 → 15.
        assert_eq!(p, vec![0, 4, 8, 12, 13, 14, 15]);
    }

    #[test]
    fn torus_path_uses_wraps() {
        let g = torus(4, 4);
        let sel = DimensionOrder::torus(4, 4);
        let p = sel.path(&g, 0, 15, &mut seeded_rng(0)).unwrap();
        // Wrap both dims: 0 → 12 (x−1 mod 4), then 12 → 15 (y−1 mod 4).
        assert_eq!(p, vec![0, 12, 15]);
        // Every hop is an edge.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn transpose_routes_on_mesh() {
        let g = mesh(8, 8);
        let prob = transpose(64);
        let sel = DimensionOrder::mesh(8, 8);
        let packets = make_packets(&g, &prob.pairs, &sel, &mut seeded_rng(1)).unwrap();
        let out = route(&g, &packets, Discipline::FarthestFirst, 10_000).unwrap();
        assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
        // Diameter 14; transpose under X-Y routing finishes within a small
        // multiple of the diameter.
        assert!(out.steps >= 7 && out.steps <= 64, "steps = {}", out.steps);
    }

    #[test]
    fn h_h_on_torus_scales_with_h() {
        let g = torus(8, 8);
        let sel = DimensionOrder::torus(8, 8);
        let mut rng = seeded_rng(2);
        let mut prev = 0;
        for h in [1usize, 4] {
            let prob = random_h_h(64, h, &mut rng);
            let packets = make_packets(&g, &prob.pairs, &sel, &mut rng).unwrap();
            let out = route(&g, &packets, Discipline::FarthestFirst, 100_000).unwrap();
            assert!(out.delivered_at.iter().all(|&d| d != u32::MAX));
            assert!(out.steps > prev, "routing time should grow with h");
            prev = out.steps;
        }
    }

    #[test]
    fn axis_walk_shortest_direction() {
        let sel = DimensionOrder::torus(8, 8);
        assert_eq!(sel.axis_walk(0, 6, 8), vec![7, 6]); // backwards is shorter
        assert_eq!(sel.axis_walk(0, 2, 8), vec![1, 2]);
        assert_eq!(sel.axis_walk(3, 3, 8), Vec::<usize>::new());
        let mesh_sel = DimensionOrder::mesh(8, 8);
        assert_eq!(mesh_sel.axis_walk(0, 6, 8), vec![1, 2, 3, 4, 5, 6]);
    }
}
