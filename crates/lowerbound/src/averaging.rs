//! The averaging argument of Lemma 3.12, executable.
//!
//! Given a verified simulation trace of a guest containing `G₀`, the lemma
//! picks a large set `Z_S` of guest steps and, per `t₀ ∈ Z_S`, one
//! representative root `r_j` per block such that the dependency-tree weights
//! rooted at the `r_j` are small on average:
//!
//! 1. `Σ_j q_{r_j, t₀−D} ≤ (4/side²) · Σ_i q_{i, t₀−D}` — roots are light;
//! 2. `Σ_j w_{r_j, t₀} ≤ (4/side²) · Σ_{j,i} w_{i, t₀}` — trees are light;
//! 3. both per-`t₀` totals are within `4·T/(T−D)` of their time-averages, so
//!    `|Z_S| ≥ (T−D)/2`.
//!
//! (`D` = the exact tree depth of our constructive Lemma 3.10 trees, the
//! analogue of the paper's `a`; `side = 2a` is the block side, `side²` its
//! size — the paper's `4a²`.)

use crate::g0::G0;
use unet_pebble::check::Trace;
use unet_pebble::deptree::{dependency_tree, tree_depth, BlockTorus};
use unet_topology::Node;

/// Precomputed canonical dependency-tree shapes: for each root position `p`
/// in a `side × side` block, the multiset of `(cell, dt)` the tree touches
/// (`dt` = `t_end − time`). Shared across blocks and across `t_end` — this
/// turns the `O(n·T)` tree constructions of a full audit into `side²` of
/// them.
#[derive(Debug, Clone)]
pub struct CanonicalTrees {
    /// Block side.
    pub side: usize,
    /// Tree depth `D` (root sits at `t_end − D`).
    pub depth: u32,
    /// `shapes[p]` = `(cell, dt)` pairs of the tree rooted at local cell `p`.
    pub shapes: Vec<Vec<(u32, u32)>>,
    /// Max tree size (the paper's `48a²` bound, verified ≤ `12·side²`).
    pub max_size: usize,
    /// Max number of trees (over all roots of one block, one `t_end`) that
    /// contain a fixed `Γ`-node — the paper's "at most `48a²`" containment
    /// count from the proof of Lemma 3.12.
    pub max_containment: usize,
}

/// Build the canonical tree shapes for blocks of the given side.
pub fn canonical_trees(side: usize) -> CanonicalTrees {
    let reference = BlockTorus::new(side, (0..(side * side) as Node).collect());
    let depth = tree_depth(side);
    let mut shapes = Vec::with_capacity(side * side);
    let mut max_size = 0usize;
    // containment[cell][dt] counts how many (root, shift) place a tree node
    // at a fixed Γ-node; aggregated below.
    let mut containment = vec![0usize; side * side];
    for p in 0..(side * side) as Node {
        let tree = dependency_tree(&reference, p, depth);
        max_size = max_size.max(tree.size());
        let shape: Vec<(u32, u32)> = tree.gamma_nodes().map(|(v, t)| (v, depth - t)).collect();
        for &(cell, _) in &shape {
            containment[cell as usize] += 1;
        }
        shapes.push(shape);
    }
    let max_containment = containment.into_iter().max().unwrap_or(0);
    CanonicalTrees { side, depth, shapes, max_size, max_containment }
}

impl CanonicalTrees {
    /// Weight `w_{root, t_end}` of the tree rooted (at local position
    /// `root_local`) in `block`, with leaves at `t_end`.
    pub fn weight(
        &self,
        trace: &Trace,
        block: &BlockTorus,
        root_local: usize,
        t_end: u32,
    ) -> usize {
        debug_assert!(t_end >= self.depth);
        let (side, shape) = (self.side, &self.shapes[root_local]);
        shape
            .iter()
            .map(|&(cell, dt)| {
                let (x, y) = ((cell as usize) / side, (cell as usize) % side);
                trace.weight(block.at(x, y), t_end - dt)
            })
            .sum()
    }
}

/// Per-`t₀` certificate: the chosen representatives and the measured sums
/// against their Markov bounds.
#[derive(Debug, Clone)]
pub struct StepCertificate {
    /// The critical step `t₀`.
    pub t0: u32,
    /// Representative root per block (global guest node).
    pub reps: Vec<Node>,
    /// `Σ_j q_{r_j, t₀−D}` (inequality (1) of Lemma 3.12).
    pub sum_root_q: usize,
    /// Its bound `(4/side²)·Σ_i q_{i, t₀−D}`.
    pub bound_root_q: f64,
    /// `Σ_j w_{r_j, t₀}` (inequality (2)).
    pub sum_root_w: usize,
    /// Its bound `(4/side²)·Σ_{j,i} w_{i, t₀}`.
    pub bound_root_w: f64,
}

/// The Lemma 3.12 analysis of one trace.
#[derive(Debug, Clone)]
pub struct AveragingAnalysis {
    /// Tree depth `D` (analogue of the paper's `a`).
    pub depth: u32,
    /// Valid critical steps `Z_S ⊆ {D, …, T}`.
    pub z_s: Vec<u32>,
    /// `|Z_S| ≥ (T − D)/2` — the lemma's size guarantee (paper: `T/4`).
    pub z_s_large_enough: bool,
    /// Certificates, one per `t₀ ∈ Z_S`.
    pub certificates: Vec<StepCertificate>,
    /// Measured total weight `Σ_{i,t} q_{i,t}` vs the work bound `m·T'`.
    pub total_weight: usize,
    /// `m·T' = n·k·T`.
    pub work_bound: usize,
}

/// Run the Lemma 3.12 analysis on a verified trace of a guest containing
/// `g0`. `T` must exceed the tree depth `D` (the lemma's `T ≥ 2a` — in our
/// constants, `T ≥ D + 1`).
pub fn analyze(trace: &Trace, g0: &G0) -> AveragingAnalysis {
    let canon = canonical_trees(g0.block_side);
    let depth = canon.depth;
    let t_max = trace.guest_t;
    assert!(
        t_max > depth,
        "need T > tree depth D = {depth} (got T = {t_max}); the paper requires T ≥ 2√(log m)"
    );
    let side2 = (g0.block_side * g0.block_side) as f64;

    // (w-sum, level weight, per-block (w, q, representative)) for one guest step.
    type StepStats = (u64, u64, Vec<(usize, usize, Node)>);

    // Per-t totals, computed in parallel over guest steps (the dominant
    // cost of an audit: |blocks|·side² tree-weight sums per step).
    let ts: Vec<u32> = (depth..=t_max).collect();
    let per_t: Vec<StepStats> =
        unet_topology::par::par_map(&ts, unet_topology::par::default_threads(), |&t| {
            let mut w_sum = 0u64;
            let mut reps_t = Vec::with_capacity(g0.blocks.len());
            for block in &g0.blocks {
                // Rank nodes by w and q inside the block; pick a node in the
                // bottom 3/4 of both rankings (nonempty since 3/4 + 3/4 > 1).
                let side = g0.block_side;
                let mut stats: Vec<(usize, usize, Node)> = Vec::with_capacity(side * side);
                for p in 0..side * side {
                    let v = block.at(p / side, p % side);
                    let w = canon.weight(trace, block, p, t);
                    let q = trace.weight(v, t - depth);
                    w_sum += w as u64;
                    stats.push((w, q, v));
                }
                let quota = (side * side) / 4; // top quarter excluded
                let mut by_w: Vec<usize> = (0..stats.len()).collect();
                by_w.sort_by_key(|&i| stats[i].0);
                let mut by_q_rank = vec![0usize; stats.len()];
                {
                    let mut by_q: Vec<usize> = (0..stats.len()).collect();
                    by_q.sort_by_key(|&i| stats[i].1);
                    for (rank, &i) in by_q.iter().enumerate() {
                        by_q_rank[i] = rank;
                    }
                }
                let cutoff = stats.len() - quota;
                let pick = by_w
                    .iter()
                    .take(cutoff.max(1))
                    .find(|&&i| by_q_rank[i] < cutoff.max(1))
                    .copied()
                    .unwrap_or(by_w[0]);
                reps_t.push(stats[pick]);
            }
            (w_sum, trace.level_weight(t - depth) as u64, reps_t)
        });
    let total_w: Vec<u64> = per_t.iter().map(|x| x.0).collect();
    let level_q: Vec<u64> = per_t.iter().map(|x| x.1).collect();
    let best: Vec<Vec<(usize, usize, Node)>> = per_t.into_iter().map(|x| x.2).collect();

    // Markov thresholds: 4× the time-average.
    let span = ts.len() as f64;
    let avg_w: f64 = total_w.iter().sum::<u64>() as f64 / span;
    let avg_q: f64 = level_q.iter().sum::<u64>() as f64 / span;
    let thr_w = 4.0 * avg_w;
    let thr_q = 4.0 * avg_q;

    let mut z_s = Vec::new();
    let mut certificates = Vec::new();
    for (idx, &t) in ts.iter().enumerate() {
        if (total_w[idx] as f64) <= thr_w && (level_q[idx] as f64) <= thr_q {
            z_s.push(t);
            let reps_t = &best[idx];
            certificates.push(StepCertificate {
                t0: t,
                reps: reps_t.iter().map(|&(_, _, v)| v).collect(),
                sum_root_q: reps_t.iter().map(|&(_, q, _)| q).sum(),
                bound_root_q: 4.0 * level_q[idx] as f64 / side2,
                sum_root_w: reps_t.iter().map(|&(w, _, _)| w).sum(),
                bound_root_w: 4.0 * total_w[idx] as f64 / side2,
            });
        }
    }
    let z_s_large_enough = z_s.len() * 2 >= ts.len();
    AveragingAnalysis {
        depth,
        z_s,
        z_s_large_enough,
        certificates,
        total_weight: trace.total_weight(),
        work_bound: trace.host_m * trace.host_steps,
    }
}

impl AveragingAnalysis {
    /// Do all certificates satisfy their bounds? (They must, by Markov — a
    /// failure indicates an implementation bug, which is the point of the
    /// audit.)
    pub fn all_bounds_hold(&self) -> bool {
        self.certificates.iter().all(|c| {
            (c.sum_root_q as f64) <= c.bound_root_q + 1e-9
                && (c.sum_root_w as f64) <= c.bound_root_w + 1e-9
        }) && self.total_weight <= self.work_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g0::build_g0;
    use unet_core::{Embedding, GuestComputation, Simulation, SimulationRun};
    use unet_pebble::analysis::tree_weight;
    use unet_pebble::check;
    use unet_topology::generators::{random_supergraph, torus};
    use unet_topology::util::seeded_rng;
    use unet_topology::Graph;

    fn run_block36(comp: &GuestComputation, host: &Graph, steps: u32, seed: u64) -> SimulationRun {
        let router = unet_core::routers::presets::bfs();
        Simulation::builder()
            .guest(comp)
            .host(host)
            .embedding(Embedding::block(36, 4))
            .router(&router)
            .steps(steps)
            .run_with_rng(&mut seeded_rng(seed))
            .expect("valid configuration")
    }

    #[test]
    fn canonical_trees_match_paper_bounds() {
        for side in [2usize, 4, 6, 8] {
            let c = canonical_trees(side);
            assert_eq!(c.shapes.len(), side * side);
            assert!(c.max_size <= 12 * side * side, "side {side}");
            // Containment: each Γ-node in at most max_containment trees of
            // one (block, t) family; the paper's proof uses ≤ 48a².
            assert!(c.max_containment <= 12 * side * side, "side {side}");
        }
    }

    #[test]
    fn canonical_weight_agrees_with_direct() {
        // Cross-check the canonical-weight fast path against direct tree
        // construction on a real trace.
        let mut rng = seeded_rng(3);
        let g0 = build_g0(36, 1, &mut rng); // side-2 blocks on 4×4 grid
        let guest = random_supergraph(&g0.graph, 12, &mut rng);
        let comp = GuestComputation::random(guest.clone(), 1);
        let host = torus(2, 2);
        let t = 4u32;
        let run = run_block36(&comp, &host, t, 4);
        let trace = check(&guest, &host, &run.protocol).unwrap();
        let canon = canonical_trees(g0.block_side);
        for block in &g0.blocks {
            for p in 0..(g0.block_side * g0.block_side) {
                let root = block.at(p / g0.block_side, p % g0.block_side);
                let tree = dependency_tree(block, root, t);
                assert_eq!(canon.weight(&trace, block, p, t), tree_weight(&trace, &tree));
            }
        }
    }

    #[test]
    fn averaging_analysis_on_real_simulation() {
        let mut rng = seeded_rng(5);
        let g0 = build_g0(36, 1, &mut rng);
        let guest = random_supergraph(&g0.graph, 12, &mut rng);
        let comp = GuestComputation::random(guest.clone(), 2);
        let host = torus(2, 2);
        let t = 6u32;
        let run = run_block36(&comp, &host, t, 6);
        let trace = check(&guest, &host, &run.protocol).unwrap();
        let analysis = analyze(&trace, &g0);
        assert!(analysis.z_s_large_enough, "Z_S too small: {:?}", analysis.z_s);
        assert!(analysis.all_bounds_hold());
        assert!(!analysis.certificates.is_empty());
        // Depth of side-2 trees is 2.
        assert_eq!(analysis.depth, 2);
    }

    #[test]
    #[should_panic(expected = "need T > tree depth")]
    fn too_short_computation_rejected() {
        let mut rng = seeded_rng(7);
        let g0 = build_g0(36, 1, &mut rng);
        let guest = random_supergraph(&g0.graph, 12, &mut rng);
        let comp = GuestComputation::random(guest.clone(), 2);
        let host = torus(2, 2);
        let run = run_block36(&comp, &host, 2, 8);
        let trace = check(&guest, &host, &run.protocol).unwrap();
        analyze(&trace, &g0);
    }
}
