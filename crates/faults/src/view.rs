//! A live view of a host graph under a fault plan.
//!
//! [`FaultyView`] wraps a base [`Graph`] and a [`FaultPlan`] and answers
//! "which nodes and edges are up at boundary `t`?". It never invents
//! topology: every edge it yields is an edge of the base graph (a property
//! the crate's proptests pin down), so it composes with any generator —
//! build a butterfly, a torus, or a random regular host and degrade it.

use crate::plan::{FaultEvent, FaultKind, FaultPlan};
use unet_topology::util::FxHashSet;
use unet_topology::{Graph, GraphBuilder, Node};

/// A state change applied by [`FaultyView::advance_to`], with the boundary
/// at which it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedFault {
    /// A node crashed (crash-stop: permanent).
    NodeDown {
        /// Boundary at which it fired.
        at: u32,
        /// The crashed node.
        node: Node,
    },
    /// A link went down (cut or flap).
    LinkDown {
        /// Boundary at which it fired.
        at: u32,
        /// Lower endpoint.
        u: Node,
        /// Upper endpoint.
        v: Node,
        /// Whether the link will come back (flap) or not (cut).
        transient: bool,
    },
    /// A flapped link came back up.
    LinkRepaired {
        /// Boundary at which it fired.
        at: u32,
        /// Lower endpoint.
        u: Node,
        /// Upper endpoint.
        v: Node,
    },
}

/// The base graph as seen through the faults applied so far.
#[derive(Debug, Clone)]
pub struct FaultyView<'g> {
    base: &'g Graph,
    events: Vec<FaultEvent>,
    cursor: usize,
    time: u32,
    node_up: Vec<bool>,
    cut: FxHashSet<(Node, Node)>,
    flap_down: FxHashSet<(Node, Node)>,
    /// Outstanding repairs, sorted by repair time.
    pending_repairs: Vec<(u32, Node, Node)>,
    /// Monotone topology-change counter (see [`FaultyView::epoch`]).
    epoch: u64,
}

impl<'g> FaultyView<'g> {
    /// View `base` under `plan`, at boundary 0 with nothing applied yet
    /// (call [`FaultyView::advance_to`] to fire events, including any at
    /// boundary 0).
    ///
    /// # Panics
    /// Panics if the plan references nodes or edges outside `base`.
    pub fn new(base: &'g Graph, plan: &FaultPlan) -> Self {
        plan.validate(base).expect("fault plan must target the base graph");
        FaultyView {
            base,
            events: plan.events().to_vec(),
            cursor: 0,
            time: 0,
            node_up: vec![true; base.n()],
            cut: FxHashSet::default(),
            flap_down: FxHashSet::default(),
            pending_repairs: Vec::new(),
            epoch: 0,
        }
    }

    /// Topology epoch: bumped once per applied fault or repair, starting at
    /// 0. Two calls observing the same epoch are guaranteed to see the same
    /// live topology, which is exactly the invalidation key the route-plan
    /// caches (`unet_routing::plan::PlanCache`) need: cache a schedule
    /// tagged with the epoch it was computed under, and any fault or repair
    /// firing in between forces a reroute.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying healthy graph.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Current boundary.
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Fire every plan event and pending repair with time `≤ t`, in time
    /// order, and return what changed. Idempotent re-faults (crashing a dead
    /// node, cutting a cut edge) are skipped silently.
    ///
    /// # Panics
    /// Panics if `t` is before the current boundary (time flows forward).
    pub fn advance_to(&mut self, t: u32) -> Vec<AppliedFault> {
        assert!(t >= self.time, "view time flows forward ({} → {t})", self.time);
        let mut applied = Vec::new();
        loop {
            // Next event vs. next repair, merged in time order (repairs at
            // the same boundary fire before new injections — a flap that
            // ends exactly when another starts leaves the link down).
            let next_event = self.events.get(self.cursor).map(|e| e.at);
            let next_repair = self.pending_repairs.first().map(|&(at, ..)| at);
            let take_repair = match (next_event, next_repair) {
                (_, None) => false,
                (None, Some(r)) => r <= t,
                (Some(e), Some(r)) => r <= t && r <= e,
            };
            if take_repair {
                let (at, u, v) = self.pending_repairs.remove(0);
                if self.flap_down.remove(&(u, v)) {
                    applied.push(AppliedFault::LinkRepaired { at, u, v });
                }
                continue;
            }
            match self.events.get(self.cursor) {
                Some(e) if e.at <= t => {
                    let e = *e;
                    self.cursor += 1;
                    match e.kind {
                        FaultKind::NodeCrash { node } => {
                            if std::mem::replace(&mut self.node_up[node as usize], false) {
                                applied.push(AppliedFault::NodeDown { at: e.at, node });
                            }
                        }
                        FaultKind::LinkCut { u, v } => {
                            if self.cut.insert((u, v)) {
                                applied.push(AppliedFault::LinkDown {
                                    at: e.at,
                                    u,
                                    v,
                                    transient: false,
                                });
                            }
                        }
                        FaultKind::LinkFlap { u, v, repair_at } => {
                            if self.flap_down.insert((u, v)) {
                                applied.push(AppliedFault::LinkDown {
                                    at: e.at,
                                    u,
                                    v,
                                    transient: true,
                                });
                            }
                            let pos =
                                self.pending_repairs.partition_point(|&(at, ..)| at <= repair_at);
                            self.pending_repairs.insert(pos, (repair_at, u, v));
                        }
                    }
                }
                _ => break,
            }
        }
        self.time = t;
        self.epoch += applied.len() as u64;
        applied
    }

    /// Whether `v` is up.
    pub fn is_node_up(&self, v: Node) -> bool {
        self.node_up[v as usize]
    }

    /// Whether the edge `{u, v}` exists in the base graph and is currently
    /// up (both endpoints alive, not cut, not flapped down).
    pub fn is_edge_up(&self, u: Node, v: Node) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.node_up[u as usize]
            && self.node_up[v as usize]
            && self.base.has_edge(u, v)
            && !self.cut.contains(&key)
            && !self.flap_down.contains(&key)
    }

    /// Live neighbours of `v` (empty if `v` itself is down), in the base
    /// graph's sorted order — a subset of `base.neighbors(v)` by
    /// construction.
    pub fn neighbors_up(&self, v: Node) -> Vec<Node> {
        if !self.is_node_up(v) {
            return Vec::new();
        }
        self.base.neighbors(v).iter().copied().filter(|&w| self.is_edge_up(v, w)).collect()
    }

    /// The surviving nodes, sorted.
    pub fn surviving(&self) -> Vec<Node> {
        (0..self.base.n() as Node).filter(|&v| self.is_node_up(v)).collect()
    }

    /// Number of surviving nodes (`m'`).
    pub fn m_surviving(&self) -> usize {
        self.node_up.iter().filter(|&&up| up).count()
    }

    /// Materialize the surviving subnetwork as a standalone [`Graph`] over
    /// the live nodes (renamed to `0..m'`), plus the rename table mapping
    /// new ids back to base ids. Composes with everything that takes a
    /// `Graph` — generators, routing measurements, lower-bound audits.
    pub fn alive_graph(&self) -> (Graph, Vec<Node>) {
        let keep = self.surviving();
        let mut rename = vec![u32::MAX; self.base.n()];
        for (new, &old) in keep.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        let mut b = GraphBuilder::new(keep.len());
        for (u, v) in self.base.edges() {
            if self.is_edge_up(u, v) {
                b.add_edge(rename[u as usize], rename[v as usize]);
            }
        }
        (b.build(), keep)
    }

    /// BFS shortest path between live nodes over live edges, if one exists.
    /// Deterministic (neighbours visited in sorted base order).
    pub fn bfs_path(&self, src: Node, dst: Node) -> Option<Vec<Node>> {
        if !self.is_node_up(src) || !self.is_node_up(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev = vec![u32::MAX; self.base.n()];
        let mut queue = std::collections::VecDeque::new();
        prev[src as usize] = src;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in self.base.neighbors(v) {
                if prev[w as usize] == u32::MAX && self.is_edge_up(v, w) {
                    prev[w as usize] = v;
                    if w == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while cur != src {
                            cur = prev[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind};
    use unet_topology::generators::{ring, torus};

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan::new(events)
    }

    #[test]
    fn crash_removes_node_and_incident_edges() {
        let g = torus(3, 3);
        let p = plan(vec![FaultEvent { at: 1, kind: FaultKind::NodeCrash { node: 4 } }]);
        let mut view = FaultyView::new(&g, &p);
        assert!(view.is_node_up(4));
        let applied = view.advance_to(1);
        assert_eq!(applied, vec![AppliedFault::NodeDown { at: 1, node: 4 }]);
        assert!(!view.is_node_up(4));
        assert_eq!(view.m_surviving(), 8);
        for &w in g.neighbors(4) {
            assert!(!view.is_edge_up(4, w));
        }
        assert!(view.neighbors_up(4).is_empty());
        // Idempotent: advancing further applies nothing new.
        assert!(view.advance_to(5).is_empty());
    }

    #[test]
    fn flap_goes_down_and_repairs() {
        let g = ring(6);
        let p = plan(vec![FaultEvent {
            at: 1,
            kind: FaultKind::LinkFlap { u: 0, v: 1, repair_at: 3 },
        }]);
        let mut view = FaultyView::new(&g, &p);
        view.advance_to(1);
        assert!(!view.is_edge_up(0, 1));
        // Path 0→1 must detour the long way round.
        assert_eq!(view.bfs_path(0, 1).unwrap().len(), 6);
        assert!(view.advance_to(2).is_empty());
        let healed = view.advance_to(3);
        assert_eq!(healed, vec![AppliedFault::LinkRepaired { at: 3, u: 0, v: 1 }]);
        assert!(view.is_edge_up(0, 1));
        assert_eq!(view.bfs_path(0, 1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn cut_partitions_ring_and_bfs_reports_none() {
        let g = ring(4);
        let p = plan(vec![
            FaultEvent { at: 1, kind: FaultKind::LinkCut { u: 0, v: 1 } },
            FaultEvent { at: 1, kind: FaultKind::LinkCut { u: 2, v: 3 } },
        ]);
        let mut view = FaultyView::new(&g, &p);
        view.advance_to(1);
        // {0,3} and {1,2} are now separate components.
        assert!(view.bfs_path(0, 1).is_none());
        assert!(view.bfs_path(0, 3).is_some());
        let (alive, rename) = view.alive_graph();
        assert_eq!(alive.n(), 4);
        assert_eq!(alive.num_edges(), 2);
        assert_eq!(rename, vec![0, 1, 2, 3]);
    }

    #[test]
    fn alive_graph_renames_after_crashes() {
        let g = torus(3, 3);
        let p = plan(vec![
            FaultEvent { at: 0, kind: FaultKind::NodeCrash { node: 0 } },
            FaultEvent { at: 0, kind: FaultKind::NodeCrash { node: 5 } },
        ]);
        let mut view = FaultyView::new(&g, &p);
        view.advance_to(0);
        let (alive, rename) = view.alive_graph();
        assert_eq!(alive.n(), 7);
        assert_eq!(rename.len(), 7);
        // Every alive edge maps back to a live base edge.
        for (a, b) in alive.edges() {
            assert!(view.is_edge_up(rename[a as usize], rename[b as usize]));
        }
    }

    #[test]
    fn epoch_counts_applied_changes_only() {
        let g = ring(6);
        let p = plan(vec![
            FaultEvent { at: 1, kind: FaultKind::LinkFlap { u: 0, v: 1, repair_at: 3 } },
            FaultEvent { at: 2, kind: FaultKind::NodeCrash { node: 4 } },
            FaultEvent { at: 2, kind: FaultKind::NodeCrash { node: 4 } }, // idempotent
        ]);
        let mut view = FaultyView::new(&g, &p);
        assert_eq!(view.epoch(), 0);
        view.advance_to(0);
        assert_eq!(view.epoch(), 0, "nothing fired yet");
        view.advance_to(1);
        assert_eq!(view.epoch(), 1, "flap down");
        view.advance_to(2);
        assert_eq!(view.epoch(), 2, "crash applied once, re-crash skipped");
        view.advance_to(3);
        assert_eq!(view.epoch(), 3, "repair bumps too");
        view.advance_to(9);
        assert_eq!(view.epoch(), 3, "quiet advance leaves the epoch alone");
    }

    #[test]
    #[should_panic(expected = "flows forward")]
    fn time_cannot_rewind() {
        let g = ring(4);
        let p = FaultPlan::none();
        let mut view = FaultyView::new(&g, &p);
        view.advance_to(3);
        view.advance_to(2);
    }

    #[test]
    #[should_panic(expected = "must target the base graph")]
    fn foreign_plan_rejected() {
        let g = ring(4);
        let p = plan(vec![FaultEvent { at: 0, kind: FaultKind::NodeCrash { node: 40 } }]);
        FaultyView::new(&g, &p);
    }
}
