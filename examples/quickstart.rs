//! Quickstart: simulate an arbitrary guest network on a smaller universal
//! host, get a machine-checked pebble protocol, and compare the measured
//! slowdown with the paper's bounds.
//!
//! Run with: `cargo run --release --example quickstart`

use universal_networks::core::prelude::*;
use universal_networks::pebble::check;
use universal_networks::topology::generators::{random_regular, torus};
use universal_networks::topology::util::seeded_rng;

fn main() {
    // The guest: a random 4-regular network with n = 256 processors —
    // an arbitrary member of the class U the paper's universal hosts must
    // handle.
    let n = 256;
    let mut rng = seeded_rng(2024);
    let guest = random_regular(n, 4, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 42);

    // The host: a 8×8 torus — m = 64 ≤ n, so Theorem 2.1 predicts slowdown
    // O(route_M(n/m)).
    let host = torus(8, 8);
    let m = host.n();

    // Static embedding + shortest-path routing = the Theorem 2.1 simulation.
    let router = presets::torus_xy(8, 8);
    let sim = EmbeddingSimulator {
        embedding: Embedding::block(n, m),
        router: &router,
    };

    let steps = 8;
    println!("simulating T = {steps} steps of a {n}-node guest on an {m}-node torus…");
    let run = sim.simulate(&comp, &host, steps, &mut rng);

    // 1. The protocol is a *checkable artifact*: every generate/send/receive
    //    is validated against the Section 3.1 pebble-game rules.
    let trace = check(&guest, &host, &run.protocol).expect("protocol certifies");

    // 2. The simulation is *bit-for-bit correct*: the host reproduced the
    //    guest's final configurations exactly.
    assert_eq!(run.final_states, comp.run_final(steps));
    println!("✓ pebble protocol certified ({} host steps)", trace.host_steps);
    println!("✓ final states match direct execution bit-for-bit");

    // 3. Measured numbers vs the paper's bounds.
    let s = run.slowdown();
    let k = run.inefficiency();
    println!("\n               measured   bound");
    println!("slowdown s     {s:8.1}   ≥ n/m = {:.1} (load)", bounds::load_bound(n, m));
    println!(
        "               {s:8.1}   ~ (n/m)·log m = {:.1} (Thm 2.1 upper shape)",
        bounds::upper_bound_butterfly(n, m)
    );
    println!("inefficiency k {k:8.1}   = Ω(log m) = Ω({:.1}) (Thm 3.1 lower)", (m as f64).log2());
    println!(
        "m·s product    {:8.0}   = Ω(n·log m) = Ω({:.0})",
        m as f64 * s,
        n as f64 * (m as f64).log2()
    );
    assert!(bounds::consistent_with_lower_bound(n, m, s, 0.1));
    println!("\n✓ measured point is consistent with the m·s = Ω(n·log m) trade-off");
}
