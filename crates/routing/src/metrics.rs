//! Measuring `route_G(h)` — the routing-time function of Section 2.

use crate::packet::{
    generous_step_limit, make_packets, route_recorded, Discipline, PathSelector, ShortestPath,
};
use crate::problem::random_h_h;
use rand::Rng;
use unet_obs::{Histogram, InMemoryRecorder};
use unet_topology::Graph;

/// Measured routing statistics for a family of problems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteStats {
    /// `h` of the problems routed.
    pub h: usize,
    /// Worst makespan observed.
    pub max_steps: u32,
    /// Mean makespan.
    pub mean_steps: f64,
    /// Worst queue length observed.
    pub max_queue: usize,
    /// Mean occupancy of non-empty queues over all routing rounds and
    /// trials, from the same `route.queue_occupancy` histogram the trace
    /// analyzer reads — the two surfaces agree by construction.
    pub mean_queue: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Empirically estimate `route_G(h)` by routing `trials` random `h–h`
/// problems with the given path selector. This is a lower-bound style
/// estimate of the worst case (random problems are near-worst-case for the
/// topologies we study); offline schedules should be measured with
/// [`crate::benes::pipeline_schedule`] instead.
///
/// # Panics
/// Panics if the selector cannot connect a sampled pair (measurement only
/// makes sense on connected hosts; use [`crate::packet::make_packets`]
/// directly for fallible path selection).
pub fn measure_route_time<S: PathSelector, R: Rng>(
    g: &Graph,
    h: usize,
    selector: &S,
    trials: usize,
    rng: &mut R,
) -> RouteStats {
    let mut max_steps = 0u32;
    let mut sum_steps = 0u64;
    let mut max_queue = 0usize;
    let mut rec = InMemoryRecorder::new();
    for _ in 0..trials {
        let prob = random_h_h(g.n(), h, rng);
        let packets =
            make_packets(g, &prob.pairs, selector, rng).expect("measurement host is connected");
        let out = route_recorded(
            g,
            &packets,
            Discipline::FarthestFirst,
            generous_step_limit(&packets),
            &mut rec,
        )
        .expect("progress guarantee makes the sum-of-paths limit generous");
        max_steps = max_steps.max(out.steps);
        sum_steps += out.steps as u64;
        max_queue = max_queue.max(out.max_queue);
    }
    let queue_hist = rec.histogram_data("route.queue_occupancy");
    debug_assert_eq!(
        queue_hist.map_or(0, |h| h.max),
        max_queue as u64,
        "recorder and Outcome must agree on the worst queue"
    );
    RouteStats {
        h,
        max_steps,
        mean_steps: sum_steps as f64 / trials.max(1) as f64,
        max_queue,
        mean_queue: queue_hist.and_then(Histogram::mean).unwrap_or(0.0),
        trials,
    }
}

/// Shortest-path baseline measurement (works on any connected host).
pub fn measure_route_time_bfs<R: Rng>(
    g: &Graph,
    h: usize,
    trials: usize,
    rng: &mut R,
) -> RouteStats {
    measure_route_time(g, h, &ShortestPath, trials, rng)
}

/// Static congestion of a path set: the maximum number of paths through any
/// single (undirected) edge and through any node. Congestion + dilation
/// lower-bound any schedule's makespan: `steps ≥ max(edge congestion,
/// longest path)` — the classic decomposition of routing cost.
pub fn path_congestion(paths: &[Vec<unet_topology::Node>]) -> (usize, usize) {
    use unet_topology::util::FxHashMap;
    let mut edge: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut node: FxHashMap<u32, usize> = FxHashMap::default();
    for path in paths {
        for &v in path {
            *node.entry(v).or_insert(0) += 1;
        }
        for w in path.windows(2) {
            if w[0] != w[1] {
                let key = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                *edge.entry(key).or_insert(0) += 1;
            }
        }
    }
    (edge.values().copied().max().unwrap_or(0), node.values().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{mesh, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn route_time_grows_with_h() {
        let g = torus(6, 6);
        let mut rng = seeded_rng(23);
        let s1 = measure_route_time_bfs(&g, 1, 3, &mut rng);
        let s4 = measure_route_time_bfs(&g, 4, 3, &mut rng);
        assert!(s4.max_steps > s1.max_steps);
        assert_eq!(s1.h, 1);
        assert!(s1.mean_steps <= s1.max_steps as f64);
    }

    #[test]
    fn mean_queue_bounded_by_max_and_agrees_with_recorder() {
        let g = torus(6, 6);
        let mut rng = seeded_rng(31);
        let s = measure_route_time_bfs(&g, 4, 3, &mut rng);
        // Non-empty queues have length ≥ 1, and the mean cannot exceed the
        // worst queue the router itself reported.
        assert!(s.mean_queue >= 1.0, "{}", s.mean_queue);
        assert!(s.mean_queue <= s.max_queue as f64, "{} > {}", s.mean_queue, s.max_queue);
        // An h=1 problem on a big torus keeps queues near 1.
        let mut rng = seeded_rng(31);
        let s1 = measure_route_time_bfs(&g, 1, 3, &mut rng);
        assert!(s1.mean_queue <= s.mean_queue + 1e-9);
    }

    #[test]
    fn congestion_of_disjoint_and_overlapping_paths() {
        // Two node-disjoint paths: congestion 1/1.
        let disjoint = vec![vec![0u32, 1, 2], vec![3, 4, 5]];
        assert_eq!(path_congestion(&disjoint), (1, 1));
        // Three paths sharing edge (1,2): edge congestion 3.
        let shared = vec![vec![0u32, 1, 2], vec![3, 1, 2], vec![4, 1, 2]];
        assert_eq!(path_congestion(&shared), (3, 3));
        // Lazy segments don't count as edges.
        let lazy = vec![vec![0u32, 0, 1]];
        assert_eq!(path_congestion(&lazy), (1, 2));
        assert_eq!(path_congestion(&[]), (0, 0));
    }

    #[test]
    fn congestion_lower_bounds_makespan() {
        use crate::butterfly::GreedyButterfly;
        use crate::packet::{make_packets, route, Discipline};
        use unet_topology::generators::butterfly;
        let dim = 4;
        let g = butterfly(dim);
        let mut rng = seeded_rng(77);
        let prob = crate::problem::random_h_h(g.n(), 4, &mut rng);
        let pk = make_packets(&g, &prob.pairs, &GreedyButterfly { dim }, &mut rng).unwrap();
        let paths: Vec<_> = pk.iter().map(|p| p.path.clone()).collect();
        let (edge_c, _) = path_congestion(&paths);
        let lim: u32 = pk.iter().map(|p| p.path.len() as u32 + 1).sum::<u32>() + 64;
        let out = route(&g, &pk, Discipline::FarthestFirst, lim).unwrap();
        assert!(
            out.steps as usize >= edge_c,
            "makespan {} below edge congestion {edge_c}",
            out.steps
        );
    }

    #[test]
    fn mesh_slower_than_torus() {
        // Same node count; torus halves distances, so mean routing time
        // should not be worse.
        let gm = mesh(8, 8);
        let gt = torus(8, 8);
        let mut rng = seeded_rng(29);
        let sm = measure_route_time_bfs(&gm, 2, 3, &mut rng);
        let mut rng = seeded_rng(29);
        let st = measure_route_time_bfs(&gt, 2, 3, &mut rng);
        assert!(st.mean_steps <= sm.mean_steps + 1.0);
    }
}
