//! Static embeddings `f : [n] → [m]` of guest processors onto host
//! processors (the mapping of Theorem 2.1's proof: each host gets at most
//! `⌈n/m⌉` guests).

use rand::seq::SliceRandom;
use rand::Rng;
use unet_topology::Node;

/// A static guest→host placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// `f[i]` = host of guest `i`.
    pub f: Vec<Node>,
    /// Host size `m`.
    pub m: usize,
}

impl Embedding {
    /// Validate and wrap an explicit mapping.
    pub fn new(f: Vec<Node>, m: usize) -> Self {
        assert!(f.iter().all(|&q| (q as usize) < m), "host index out of range");
        Embedding { f, m }
    }

    /// Balanced block embedding: guest `i` to host `⌊i·m/n⌋` — consecutive
    /// guests share hosts, every host receives `⌊n/m⌋` or `⌈n/m⌉` guests
    /// (and for `m ≥ n` the mapping is injective).
    pub fn block(n: usize, m: usize) -> Self {
        let f = (0..n).map(|i| ((i * m) / n) as Node).collect();
        Embedding { f, m }
    }

    /// Balanced random embedding: a random permutation of guests, then
    /// block-mapped. Destroys guest locality — the worst reasonable case for
    /// communication, useful as an adversarial placement.
    pub fn random<R: Rng>(n: usize, m: usize, rng: &mut R) -> Self {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut f = vec![0 as Node; n];
        for (slot, &guest) in perm.iter().enumerate() {
            f[guest] = ((slot * m) / n) as Node;
        }
        Embedding { f, m }
    }

    /// Locality-preserving tile embedding of an `G × G` grid guest onto an
    /// `H × H` grid host (`H` divides `G`): guest `(x, y)` maps to host
    /// `(x / t, y / t)` with tile side `t = G/H`. Guest grid edges then only
    /// ever cross to an adjacent host — the embedding that makes mesh-on-
    /// mesh simulations pay only the load, not the diameter.
    pub fn grid_tiles(guest_side: usize, host_side: usize) -> Self {
        assert!(
            host_side > 0 && guest_side.is_multiple_of(host_side),
            "host side must divide guest side"
        );
        let t = guest_side / host_side;
        let f = (0..guest_side * guest_side)
            .map(|v| {
                let (x, y) = (v / guest_side, v % guest_side);
                ((x / t) * host_side + (y / t)) as Node
            })
            .collect();
        Embedding { f, m: host_side * host_side }
    }

    /// Number of guests.
    pub fn n(&self) -> usize {
        self.f.len()
    }

    /// The load: max guests per host (Theorem 2.1 requires `≤ ⌈n/m⌉`).
    pub fn load(&self) -> usize {
        let mut cnt = vec![0usize; self.m];
        for &q in &self.f {
            cnt[q as usize] += 1;
        }
        cnt.into_iter().max().unwrap_or(0)
    }

    /// Guests per host, as lists (index = host).
    pub fn guests_by_host(&self) -> Vec<Vec<Node>> {
        let mut by = vec![Vec::new(); self.m];
        for (i, &q) in self.f.iter().enumerate() {
            by[q as usize].push(i as Node);
        }
        by
    }

    /// Whether the embedding is balanced (`load ≤ ⌈n/m⌉`).
    pub fn is_balanced(&self) -> bool {
        self.load() <= self.n().div_ceil(self.m)
    }

    /// **Dilation**: the maximum host distance spanned by a guest edge —
    /// the classic embedding cost measure (see Monien & Sudborough \[16\]).
    /// An embedding-based simulation cannot have slowdown below its
    /// dilation; this is the quantity the `embedding_bound` counting in
    /// `unet-lowerbound` charges for.
    ///
    /// `O(m·(m + E_host) + E_guest)` via per-host BFS. Panics if some guest
    /// edge maps to disconnected hosts.
    pub fn dilation(&self, guest: &unet_topology::Graph, host: &unet_topology::Graph) -> u32 {
        let dists: Vec<Vec<u32>> = (0..host.n() as Node)
            .map(|q| unet_topology::analysis::bfs_distances(host, q))
            .collect();
        let mut max = 0;
        for (u, v) in guest.edges() {
            let d = dists[self.f[u as usize] as usize][self.f[v as usize] as usize];
            assert_ne!(d, u32::MAX, "guest edge maps across disconnected hosts");
            max = max.max(d);
        }
        max
    }

    /// **Edge congestion**: route every guest edge along a BFS shortest path
    /// in the host; the maximum number of guest edges crossing any single
    /// host edge. Together with dilation this lower-bounds the cost of
    /// *any* embedding-based simulation (each guest step must move one
    /// message per guest edge through the congested link).
    pub fn edge_congestion(
        &self,
        guest: &unet_topology::Graph,
        host: &unet_topology::Graph,
    ) -> usize {
        use unet_topology::util::FxHashMap;
        let mut per_edge: FxHashMap<(Node, Node), usize> = FxHashMap::default();
        for (u, v) in guest.edges() {
            let (a, b) = (self.f[u as usize], self.f[v as usize]);
            if a == b {
                continue;
            }
            let path = unet_routing::packet::bfs_path(host, a, b).expect("host must be connected");
            for w in path.windows(2) {
                let key = if w[0] < w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                *per_edge.entry(key).or_insert(0) += 1;
            }
        }
        per_edge.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::util::seeded_rng;

    #[test]
    fn block_is_balanced() {
        for (n, m) in [(12usize, 4usize), (13, 4), (4, 4), (5, 8), (100, 7)] {
            let e = Embedding::block(n, m);
            assert!(e.is_balanced(), "n={n} m={m} load={}", e.load());
            assert_eq!(e.n(), n);
        }
    }

    #[test]
    fn block_injective_when_m_ge_n() {
        let e = Embedding::block(4, 8);
        let mut hosts = e.f.clone();
        hosts.dedup();
        assert_eq!(hosts.len(), 4);
        assert_eq!(e.load(), 1);
    }

    #[test]
    fn random_is_balanced() {
        let e = Embedding::random(100, 7, &mut seeded_rng(3));
        assert!(e.is_balanced());
    }

    #[test]
    fn guests_by_host_partitions() {
        let e = Embedding::block(10, 3);
        let by = e.guests_by_host();
        let total: usize = by.iter().map(|v| v.len()).sum();
        assert_eq!(total, 10);
        for (q, guests) in by.iter().enumerate() {
            for &g in guests {
                assert_eq!(e.f[g as usize] as usize, q);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Embedding::new(vec![5], 4);
    }

    #[test]
    fn dilation_and_congestion() {
        use unet_topology::generators::{ring, torus};
        // Ring(16) tiled 4-per-host onto ring(4): consecutive blocks land on
        // consecutive hosts ⇒ dilation 1.
        let guest = ring(16);
        let host = ring(4);
        let e = Embedding::block(16, 4);
        assert_eq!(e.dilation(&guest, &host), 1);
        assert!(e.edge_congestion(&guest, &host) >= 1);
        // On the 2×2 torus the host ordering 0,1,2,3 is not a cycle
        // (1 = (0,1) and 2 = (1,0) are antipodal), so the block embedding
        // pays dilation 2.
        let host2 = torus(2, 2);
        assert_eq!(e.dilation(&guest, &host2), 2);
        // Identity embedding of a graph on itself: dilation exactly 1,
        // congestion exactly 1.
        let t = torus(4, 4);
        let id = Embedding::block(16, 16);
        assert_eq!(id.dilation(&t, &t), 1);
        assert_eq!(id.edge_congestion(&t, &t), 1);
    }

    #[test]
    fn grid_tiles_locality() {
        // 6×6 guest on 3×3 host: 2×2 tiles.
        let e = Embedding::grid_tiles(6, 3);
        assert_eq!(e.load(), 4);
        assert!(e.is_balanced());
        // Guest (0,0)..(1,1) all on host 0.
        assert_eq!(e.f[0], 0);
        assert_eq!(e.f[7], 0); // (1,1)
        assert_eq!(e.f[2], 1); // (0,2) → host (0,1)
                               // Grid-adjacent guests map to grid-adjacent (or equal) hosts.
        for x in 0..6usize {
            for y in 0..5usize {
                let a = e.f[x * 6 + y] as usize;
                let b = e.f[x * 6 + y + 1] as usize;
                let (ax, ay) = (a / 3, a % 3);
                let (bx, by) = (b / 3, b % 3);
                assert!(ax.abs_diff(bx) + ay.abs_diff(by) <= 1);
            }
        }
    }
}
