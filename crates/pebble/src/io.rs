//! Protocol serialization: a compact, line-oriented text format.
//!
//! Protocols are the system's exchange artifact — a simulation run can be
//! saved, inspected with standard text tools, diffed, and re-checked later
//! (or by an independent implementation). The format is deliberately
//! trivial:
//!
//! ```text
//! unetproto 1
//! n <guests> t <guest-steps> m <hosts>
//! step
//! g <host> <node> <t>          # Generate((node, t)) at host
//! s <host> <to> <node> <t>     # Send pebble (node, t) to host `to`
//! r <host> <from>              # Recv from host `from`
//! step
//! …
//! ```
//!
//! Idle processors are simply omitted from their step. No external
//! dependencies; round-trips exactly.

use crate::protocol::{Op, Pebble, Protocol};
use std::fmt::Write as _;

/// Serialize to the text format.
pub fn to_text(proto: &Protocol) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "unetproto 1");
    let _ = writeln!(out, "n {} t {} m {}", proto.guest_n, proto.guest_t, proto.host_m);
    for row in &proto.steps {
        let _ = writeln!(out, "step");
        for (q, op) in row.iter().enumerate() {
            match *op {
                Op::Idle => {}
                Op::Generate(p) => {
                    let _ = writeln!(out, "g {q} {} {}", p.node, p.t);
                }
                Op::Send { pebble, to } => {
                    let _ = writeln!(out, "s {q} {to} {} {}", pebble.node, pebble.t);
                }
                Op::Recv { from } => {
                    let _ = writeln!(out, "r {q} {from}");
                }
            }
        }
    }
    out
}

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse the text format back into a [`Protocol`].
pub fn from_text(text: &str) -> Result<Protocol, ParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if header != "unetproto 1" {
        return Err(err(ln, format!("bad header {header:?}")));
    }
    let (ln, dims) = lines.next().ok_or_else(|| err(ln, "missing dimensions"))?;
    let parts: Vec<&str> = dims.split_whitespace().collect();
    let parse_num = |s: &str, ln: usize| -> Result<usize, ParseError> {
        s.parse().map_err(|_| err(ln, format!("bad number {s:?}")))
    };
    if parts.len() != 6 || parts[0] != "n" || parts[2] != "t" || parts[4] != "m" {
        return Err(err(ln, format!("bad dimension line {dims:?}")));
    }
    let n = parse_num(parts[1], ln)?;
    let t = parse_num(parts[3], ln)? as u32;
    let m = parse_num(parts[5], ln)?;
    let mut proto = Protocol::new(n, t, m);
    let mut current: Option<Vec<Op>> = None;
    let set_op = |row: &mut Vec<Op>, q: usize, op: Op, ln: usize| -> Result<(), ParseError> {
        if q >= m {
            return Err(err(ln, format!("host {q} out of range (m = {m})")));
        }
        if !matches!(row[q], Op::Idle) {
            return Err(err(ln, format!("host {q} already has an op this step")));
        }
        row[q] = op;
        Ok(())
    };
    for (ln, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().unwrap();
        if tag == "step" {
            if let Some(row) = current.take() {
                proto.push_step(row);
            }
            current = Some(vec![Op::Idle; m]);
            continue;
        }
        let row = current.as_mut().ok_or_else(|| err(ln, "operation before first `step`"))?;
        let mut next_num = |what: &str| -> Result<usize, ParseError> {
            it.next()
                .ok_or_else(|| err(ln, format!("missing {what}")))
                .and_then(|s| parse_num(s, ln))
        };
        match tag {
            "g" => {
                let q = next_num("host")?;
                let node = next_num("node")? as u32;
                let pt = next_num("t")? as u32;
                set_op(row, q, Op::Generate(Pebble::new(node, pt)), ln)?;
            }
            "s" => {
                let q = next_num("host")?;
                let to = next_num("to")? as u32;
                let node = next_num("node")? as u32;
                let pt = next_num("t")? as u32;
                set_op(row, q, Op::Send { pebble: Pebble::new(node, pt), to }, ln)?;
            }
            "r" => {
                let q = next_num("host")?;
                let from = next_num("from")? as u32;
                set_op(row, q, Op::Recv { from }, ln)?;
            }
            other => return Err(err(ln, format!("unknown tag {other:?}"))),
        }
    }
    if let Some(row) = current.take() {
        proto.push_step(row);
    }
    Ok(proto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolBuilder;

    fn sample() -> Protocol {
        let mut b = ProtocolBuilder::new(3, 2, 2);
        b.set_op(0, Op::Generate(Pebble::new(0, 1)));
        b.end_step();
        b.transfer(0, 1, Pebble::new(0, 1));
        b.end_step();
        b.set_op(1, Op::Generate(Pebble::new(1, 1)));
        b.set_op(0, Op::Generate(Pebble::new(2, 1)));
        b.end_step();
        b.finish()
    }

    #[test]
    fn roundtrip_exact() {
        let p = sample();
        let text = to_text(&p);
        let back = from_text(&text).expect("parses");
        assert_eq!(p, back);
    }

    #[test]
    fn format_is_line_oriented() {
        let text = to_text(&sample());
        assert!(text.starts_with("unetproto 1\nn 3 t 2 m 2\nstep\ng 0 0 1\n"));
        assert_eq!(text.matches("step").count(), 3);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "unetproto 1\nn 1 t 1 m 1\n\n# hi\nstep\ng 0 0 1\n";
        let p = from_text(text).unwrap();
        assert_eq!(p.host_steps(), 1);
        assert_eq!(p.steps[0][0], Op::Generate(Pebble::new(0, 1)));
    }

    #[test]
    fn bad_header_rejected() {
        let e = from_text("nope\n").unwrap_err();
        assert!(e.message.contains("bad header"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn out_of_range_host_rejected() {
        let e = from_text("unetproto 1\nn 1 t 1 m 1\nstep\ng 5 0 1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn double_booking_rejected() {
        let e = from_text("unetproto 1\nn 1 t 1 m 1\nstep\ng 0 0 1\nr 0 0\n").unwrap_err();
        assert!(e.message.contains("already has an op"));
    }

    #[test]
    fn op_before_step_rejected() {
        let e = from_text("unetproto 1\nn 1 t 1 m 1\ng 0 0 1\n").unwrap_err();
        assert!(e.message.contains("before first"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let e = from_text("unetproto 1\nn 1 t 1 m 1\nstep\nx 0\n").unwrap_err();
        assert!(e.message.contains("unknown tag"));
    }

    #[test]
    fn large_roundtrip_via_simulator_format_stability() {
        // A protocol with hundreds of ops survives the round trip.
        let mut b = ProtocolBuilder::new(16, 4, 4);
        for t in 1..=4u32 {
            for i in 0..16u32 {
                b.set_op(i % 4, Op::Generate(Pebble::new(i, t)));
                b.end_step();
            }
        }
        let p = b.finish();
        assert_eq!(from_text(&to_text(&p)).unwrap(), p);
    }
}
