//! # unet-serve — simulation as a service
//!
//! Everything else in this workspace is one-shot: build the topology,
//! compile the route plan, run, exit. This crate is the long-lived
//! counterpart the ROADMAP's "serves heavy traffic" north star asks for — a
//! TCP server that keeps the expensive artifacts (compiled route plans,
//! metric aggregates) alive across requests:
//!
//! * [`protocol`] — the versioned newline-delimited JSON wire format
//!   (`unet-serve/3`, with `/2` and `/1` compatibility readers):
//!   `simulate` / `batch` / `analyze` / `metrics` requests, `result` /
//!   `error` / `overloaded` responses, and a per-request `trace` context
//!   that threads one `trace_id` from client through router to backend;
//! * [`queue`] — the bounded admission queue; a full queue produces a
//!   typed `overloaded` rejection with a `retry_after_ms` hint, never
//!   unbounded buffering;
//! * [`server`] — acceptor + connection workers + batching executors.
//!   Admitted requests are grouped by
//!   [`workload_fingerprint`](unet_core::workload_fingerprint) into
//!   micro-batches; a cold fingerprint builds its route plan exactly once
//!   (single-flight, on the shared
//!   [`SharedPlanCache`](unet_core::SharedPlanCache)) while batchmates and
//!   racing misses reuse it; per-request deadlines ride the engine's
//!   phase-boundary cancellation; every request records stage spans
//!   (`accept` → `queue_wait` → … → `serialize`) into a tail-sampled
//!   trace that [`Server::drain`] flushes alongside the metrics;
//! * [`loadgen`] — a deterministic closed-loop load generator for capacity
//!   experiments (E19/E20) and CI smoke tests;
//! * [`client`] — the typed [`Client`] behind
//!   `unet request`;
//! * [`ring`] — the consistent-hash ring that maps workload fingerprints
//!   to shards (and gives the failover order when one dies);
//! * [`router`] — the sharding front-end behind `unet shard`:
//!   fingerprint-affine forwarding to N backend servers, per-backend
//!   health with ejection and backoff reinstatement, batch
//!   split/re-merge, and `shard`-labelled aggregated metrics;
//! * [`signal`] — SIGTERM/SIGINT-to-flag plumbing for graceful drain.
//!
//! ```
//! use unet_serve::{Server, ServeConfig};
//! use unet_serve::client::Client;
//! use unet_serve::protocol::SimulateReq;
//!
//! let server = Server::start(ServeConfig::default()).expect("bind");
//! let mut client = Client::connect(&server.addr().to_string()).expect("connect");
//! let spec = SimulateReq {
//!     guest: "ring:12".into(), host: "torus:2x2".into(),
//!     steps: 2, seed: 7, deadline_ms: None, id: None,
//! };
//! let result = client.simulate(&spec).expect("round trip");
//! assert!(result.verified);
//! drop(client);
//! let report = server.drain();
//! assert_eq!(report.stats.completed, 1);
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod ring;
pub mod router;
pub mod server;
pub mod signal;

pub use client::{Client, ClientError, ServerError, SimulateResult};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{ProtoVersion, Request, Response, PROTOCOL, PROTOCOL_V1, PROTOCOL_V2};
pub use ring::Ring;
pub use router::{Router, RouterDrainReport, RouterStats, ShardConfig};
pub use server::{DrainReport, ServeConfig, Server, ServerStats};
