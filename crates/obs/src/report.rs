//! Human-readable summaries of a parsed [`TraceDoc`] — the output of
//! `unet report`.

use crate::recorder::Histogram;
use crate::trace::TraceDoc;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn hist_line(name: &str, h: &Histogram) -> String {
    if h.count == 0 {
        return format!("  {name:<28} (empty)");
    }
    format!(
        "  {name:<28} n={:<8} mean={:<10.2} min={:<8} max={}",
        h.count,
        h.mean().unwrap_or(0.0),
        h.min,
        h.max
    )
}

/// ASCII bar chart of a histogram's occupied log₂ buckets.
fn hist_chart(h: &Histogram) -> Vec<String> {
    const WIDTH: usize = 32;
    let peak = h.buckets.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        return Vec::new();
    }
    let (lo, hi) = (
        h.buckets.iter().position(|&c| c > 0).unwrap(),
        h.buckets.iter().rposition(|&c| c > 0).unwrap(),
    );
    (lo..=hi)
        .map(|i| {
            let c = h.buckets[i];
            let bar = "#".repeat(((c as u128 * WIDTH as u128).div_ceil(peak as u128)) as usize);
            let (b_lo, b_hi) = Histogram::bucket_range(i);
            let label = if b_lo == b_hi {
                format!("{b_lo}")
            } else if b_hi == u64::MAX {
                format!("{b_lo}..")
            } else {
                format!("{b_lo}..{b_hi}")
            };
            format!("    {label:>22} | {bar:<WIDTH$} {c}")
        })
        .collect()
}

/// Render the full report for a trace.
pub fn render(doc: &TraceDoc) -> String {
    let mut out = String::new();
    let m = &doc.meta;
    out.push_str(&format!(
        "trace: {} — guest {} (n={}) on host {} (m={}), {} guest steps\n",
        m.command, m.guest, m.n, m.host, m.m, m.guest_steps
    ));

    if let Some(s) = &doc.summary {
        out.push_str("\nsummary\n");
        out.push_str(&format!(
            "  host steps T'={} (comm {}, compute {})\n",
            s.host_steps, s.comm_steps, s.compute_steps
        ));
        out.push_str(&format!("  slowdown      s = T'/T   = {:.3}\n", s.slowdown));
        out.push_str(&format!("  inefficiency  k = s·m/n  = {:.3}\n", s.inefficiency));
        out.push_str(&format!("  wall time     {:.3} ms\n", s.wall_ms));
    }

    let totals = doc.span_totals();
    if !totals.is_empty() {
        let grand: u64 = {
            // Only top-level time is additive; nested spans double-count.
            // For the share column use the largest total as the scale.
            totals.iter().map(|&(_, ns, _)| ns).max().unwrap_or(1).max(1)
        };
        out.push_str("\nphases (wall clock)\n");
        for (name, ns, count) in &totals {
            out.push_str(&format!(
                "  {name:<28} {:>10}  ×{count:<6} {:>5.1}%\n",
                fmt_ns(*ns),
                *ns as f64 * 100.0 / grand as f64
            ));
        }
    }

    if !doc.faults.is_empty() {
        out.push_str("\nfault timeline\n");
        let mut ordered: Vec<_> = doc.faults.iter().collect();
        ordered.sort_by_key(|f| f.at);
        for f in ordered {
            out.push_str(&format!(
                "  t={:<6} {:<7} {:<6} {}\n",
                f.at,
                f.op.as_str(),
                f.kind,
                f.subject
            ));
        }
    }

    if !doc.samples.is_empty() {
        out.push_str("\ncongestion\n");
        // Group by series name preserving file order, summarizing totals
        // and the hottest (step, key) cell per series.
        let mut names: Vec<&str> = Vec::new();
        for s in &doc.samples {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        for name in names {
            let mut total = 0u64;
            let mut cells = 0u64;
            let mut peak: Option<&crate::trace::SampleRecord> = None;
            let mut last_step = 0u64;
            for s in doc.samples_named(name) {
                total += s.value;
                cells += 1;
                last_step = last_step.max(s.step);
                if peak.is_none_or(|p| s.value > p.value) {
                    peak = Some(s);
                }
            }
            let peak = peak.expect("series has at least one sample");
            let key = if name.ends_with("edge_util") {
                let (from, to) = crate::recorder::unpack_edge_key(peak.key);
                format!("edge {from}->{to}")
            } else {
                format!("node {}", peak.key)
            };
            out.push_str(&format!(
                "  {name:<28} total {total:<8} cells {cells:<8} peak {} at step {} ({key}) over {} steps\n",
                peak.value,
                peak.step,
                last_step + 1
            ));
        }
    }

    if !doc.requests.is_empty() {
        out.push_str("\nrequest stages\n");
        // Bounded aggregate over the sampled request records: total time
        // per stage, scaled against summed end-to-end time.
        let mut stages: Vec<(String, f64, u64)> = Vec::new();
        let mut e2e_total = 0.0;
        let mut errors = 0u64;
        for r in &doc.requests {
            e2e_total += r.e2e_ms;
            errors += u64::from(!r.ok);
            for s in &r.stages {
                match stages.iter_mut().find(|(k, ..)| *k == s.stage) {
                    Some(t) => {
                        t.1 += s.ms;
                        t.2 += 1;
                    }
                    None => stages.push((s.stage.clone(), s.ms, 1)),
                }
            }
        }
        stages.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        out.push_str(&format!(
            "  {} sampled requests, {} errors, e2e total {:.2} ms\n",
            doc.requests.len(),
            errors,
            e2e_total
        ));
        for (stage, ms, n) in stages {
            out.push_str(&format!(
                "  {stage:<28} {ms:>10.2} ms  ×{n:<6} {:>5.1}% of e2e\n",
                ms * 100.0 / e2e_total.max(f64::MIN_POSITIVE)
            ));
        }
    }

    if !doc.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (name, v) in &doc.counters {
            out.push_str(&format!("  {name:<28} {v}\n"));
        }
    }

    if !doc.gauges.is_empty() {
        out.push_str("\ngauges\n");
        for (name, v) in &doc.gauges {
            out.push_str(&format!("  {name:<28} {v}\n"));
        }
    }

    if !doc.histograms.is_empty() {
        out.push_str("\nhistograms\n");
        for (name, h) in &doc.histograms {
            out.push_str(&hist_line(name, h));
            out.push('\n');
            for line in hist_chart(h) {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

/// Render per-request waterfalls for the sampled request records of one or
/// more traces, merged by `trace_id` — the body of `unet trace-requests`.
///
/// `sources` pairs a label (usually the trace file path) with its parsed
/// doc; a request that crossed several tiers (router + backend) shows one
/// block per tier under a single `trace` heading, in source order.
/// `only` restricts output to the named trace ids (empty = all, ordered
/// by the slowest tier's `e2e_ms`, descending). `markdown` switches from
/// the scaled ASCII bars to GFM tables.
pub fn render_waterfalls(
    sources: &[(String, TraceDoc)],
    only: &[String],
    markdown: bool,
) -> String {
    use crate::trace::RequestRecord;
    // (tier command, source label, record) — one row per tier a request crossed.
    type TierRow<'a> = (&'a str, &'a str, &'a RequestRecord);
    // trace_id -> tier rows, merged across files.
    let mut groups: Vec<(&str, Vec<TierRow>)> = Vec::new();
    for (label, doc) in sources {
        for r in &doc.requests {
            if !only.is_empty() && !only.contains(&r.trace_id) {
                continue;
            }
            match groups.iter_mut().find(|(id, _)| *id == r.trace_id) {
                Some((_, rows)) => rows.push((&doc.meta.command, label, r)),
                None => groups.push((&r.trace_id, vec![(&doc.meta.command, label, r)])),
            }
        }
    }
    // Slowest requests first: the records a reader is hunting for.
    groups.sort_by(|a, b| {
        let peak = |rows: &[TierRow]| rows.iter().map(|(.., r)| r.e2e_ms).fold(0.0f64, f64::max);
        peak(&b.1).partial_cmp(&peak(&a.1)).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0))
    });
    let mut out = String::new();
    if groups.is_empty() {
        out.push_str(if only.is_empty() {
            "no sampled request records in the given trace(s)\n"
        } else {
            "no sampled request records match the requested trace id(s)\n"
        });
        return out;
    }
    for (trace_id, rows) in groups {
        if markdown {
            out.push_str(&format!("### trace `{trace_id}`\n\n"));
            out.push_str("| tier | kind | outcome | sampled | stage | ms |\n");
            out.push_str("|---|---|---|---|---|---:|\n");
            for (tier, label, r) in rows {
                let outcome = if r.ok { "ok" } else { "error" };
                out.push_str(&format!(
                    "| {tier} ({label}) | {} | {outcome} | {} | e2e | {:.3} |\n",
                    r.kind,
                    r.sampled.as_str(),
                    r.e2e_ms
                ));
                for s in &r.stages {
                    out.push_str(&format!("| | | | | {} | {:.3} |\n", s.stage, s.ms));
                }
            }
            out.push('\n');
        } else {
            const WIDTH: usize = 24;
            out.push_str(&format!("trace {trace_id}\n"));
            let peak = rows
                .iter()
                .flat_map(|(.., r)| r.stages.iter().map(|s| s.ms))
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE);
            for (tier, label, r) in rows {
                let outcome = if r.ok { "ok" } else { "ERROR" };
                out.push_str(&format!(
                    "  {tier:<8} {:<10} {outcome:<5} e2e {:>9.3} ms  [{}]  ({label})\n",
                    r.kind,
                    r.e2e_ms,
                    r.sampled.as_str()
                ));
                for s in &r.stages {
                    let bar = "#".repeat(((s.ms / peak) * WIDTH as f64).ceil() as usize);
                    out.push_str(&format!("    {:<24} {:>9.3} ms  {bar}\n", s.stage, s.ms));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{InMemoryRecorder, Recorder};
    use crate::trace::{export, parse_trace, RunMeta, RunSummary};

    fn sample_doc() -> TraceDoc {
        let mut rec = InMemoryRecorder::new();
        rec.span_start("sim.comm");
        rec.counter("route.transfers", 42);
        rec.histogram("route.hops", 1);
        rec.histogram("route.hops", 5);
        rec.histogram("route.hops", 5);
        rec.gauge("sim.load", 2.5);
        rec.span_end("sim.comm");
        let meta = RunMeta {
            command: "simulate".into(),
            guest: "ring:8".into(),
            host: "mesh:4".into(),
            n: 8,
            m: 4,
            guest_steps: 2,
        };
        let summary = RunSummary {
            host_steps: 20,
            comm_steps: 14,
            compute_steps: 6,
            slowdown: 10.0,
            inefficiency: 5.0,
            wall_ms: 0.5,
        };
        parse_trace(&export(&rec, &meta, Some(&summary))).unwrap()
    }

    #[test]
    fn render_mentions_headline_metrics() {
        let text = render(&sample_doc());
        assert!(text.contains("slowdown"));
        assert!(text.contains("inefficiency"));
        assert!(text.contains("10.000"));
        assert!(text.contains("5.000"));
        assert!(text.contains("route.transfers"));
        assert!(text.contains("sim.comm"));
        assert!(text.contains("route.hops"));
        assert!(text.contains("sim.load"));
    }

    #[test]
    fn congestion_section_rendered_from_samples() {
        use crate::recorder::edge_key;
        let mut rec = InMemoryRecorder::new();
        rec.sample("route.edge_util", 0, edge_key(1, 2), 1);
        rec.sample("route.edge_util", 3, edge_key(4, 5), 7);
        rec.sample("route.queue_depth", 1, 9, 2);
        let meta = RunMeta {
            command: "trace".into(),
            guest: "ring:8".into(),
            host: "mesh:4".into(),
            n: 8,
            m: 4,
            guest_steps: 2,
        };
        let doc = parse_trace(&export(&rec, &meta, None)).unwrap();
        let text = render(&doc);
        assert!(text.contains("congestion"), "{text}");
        assert!(text.contains("route.edge_util"), "{text}");
        assert!(text.contains("peak 7 at step 3 (edge 4->5)"), "{text}");
        assert!(text.contains("node 9"), "{text}");
        // A sample-free doc has no congestion section.
        assert!(!render(&sample_doc()).contains("congestion"));
    }

    #[test]
    fn fault_timeline_rendered_in_time_order() {
        use crate::trace::{export_with_faults, FaultOp, FaultRecord};
        let mut rec = InMemoryRecorder::new();
        rec.counter("faults.dropped", 1);
        let meta = RunMeta {
            command: "faults".into(),
            guest: "ring:8".into(),
            host: "butterfly:3".into(),
            n: 8,
            m: 32,
            guest_steps: 2,
        };
        let faults = vec![
            FaultRecord {
                at: 3,
                op: FaultOp::Repair,
                kind: "flap".into(),
                subject: "link:1-2".into(),
            },
            FaultRecord {
                at: 1,
                op: FaultOp::Inject,
                kind: "crash".into(),
                subject: "node:7".into(),
            },
        ];
        let doc = parse_trace(&export_with_faults(&rec, &meta, &faults, None)).unwrap();
        let text = render(&doc);
        assert!(text.contains("fault timeline"));
        let inject = text.find("inject").unwrap();
        let repair = text.find("repair").unwrap();
        assert!(inject < repair, "timeline must be sorted by time");
        assert!(text.contains("node:7"));
        assert!(text.contains("link:1-2"));
    }

    #[test]
    fn request_stage_section_rendered_from_request_records() {
        use crate::trace::{export_full, RequestRecord, SampleReason, StageSpan};
        let rec = InMemoryRecorder::new();
        let meta = RunMeta {
            command: "serve".into(),
            guest: "-".into(),
            host: "-".into(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        let requests = vec![RequestRecord {
            trace_id: "00000000000000aa".into(),
            kind: "simulate".into(),
            ok: true,
            e2e_ms: 10.0,
            sampled: SampleReason::Head,
            stages: vec![
                StageSpan { stage: "queue_wait".into(), ms: 2.0 },
                StageSpan { stage: "simulate".into(), ms: 7.5 },
            ],
        }];
        let doc = parse_trace(&export_full(&rec, &meta, &[], &requests, None)).unwrap();
        let text = render(&doc);
        assert!(text.contains("request stages"), "{text}");
        assert!(text.contains("1 sampled requests, 0 errors"), "{text}");
        // Ranked by total time: simulate before queue_wait.
        assert!(text.find("simulate ").unwrap() < text.find("queue_wait").unwrap(), "{text}");
        // Request-free docs have no section.
        assert!(!render(&sample_doc()).contains("request stages"));
    }

    #[test]
    fn waterfalls_merge_tiers_by_trace_id_across_files() {
        use crate::trace::{export_full, RequestRecord, SampleReason, StageSpan};
        let rec = InMemoryRecorder::new();
        let meta = |command: &str| RunMeta {
            command: command.into(),
            guest: "-".into(),
            host: "-".into(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        let record = |trace_id: &str, ok: bool, e2e_ms: f64, stage: &str, ms: f64| RequestRecord {
            trace_id: trace_id.into(),
            kind: "simulate".into(),
            ok,
            e2e_ms,
            sampled: if ok { SampleReason::Head } else { SampleReason::Error },
            stages: vec![StageSpan { stage: stage.into(), ms }],
        };
        let router = parse_trace(&export_full(
            &rec,
            &meta("shard"),
            &[],
            &[record("00000000000000aa", true, 12.0, "forward", 11.5)],
            None,
        ))
        .unwrap();
        let backend = parse_trace(&export_full(
            &rec,
            &meta("serve"),
            &[],
            &[
                record("00000000000000aa", true, 11.0, "simulate", 10.0),
                record("00000000000000bb", false, 40.0, "queue_wait", 39.0),
            ],
            None,
        ))
        .unwrap();
        let sources =
            vec![("router.jsonl".to_string(), router), ("backend.jsonl".to_string(), backend)];
        let text = render_waterfalls(&sources, &[], false);
        // Both tiers appear under one heading for the shared id.
        let heading = text.find("trace 00000000000000aa").expect("merged trace heading");
        assert_eq!(text.matches("trace 00000000000000aa").count(), 1, "{text}");
        assert!(text.contains("shard"), "{text}");
        assert!(text.contains("serve"), "{text}");
        assert!(text.contains("forward"), "{text}");
        // Slowest trace first: bb (40 ms, an error) precedes aa (12 ms).
        let slow = text.find("trace 00000000000000bb").expect("slow trace heading");
        assert!(slow < heading, "slowest-first ordering:\n{text}");
        assert!(text.contains("ERROR"), "{text}");
        // The filter keeps only the named id.
        let only = render_waterfalls(&sources, &["00000000000000bb".to_string()], false);
        assert!(!only.contains("00000000000000aa"), "{only}");
        assert!(only.contains("00000000000000bb"), "{only}");
        // Markdown mode emits a table per trace.
        let md = render_waterfalls(&sources, &[], true);
        assert!(md.contains("### trace `00000000000000aa`"), "{md}");
        assert!(md.contains("| tier | kind | outcome | sampled | stage | ms |"), "{md}");
        // Unmatched filters say so instead of printing nothing.
        let none = render_waterfalls(&sources, &["ffffffffffffffff".to_string()], false);
        assert!(none.contains("no sampled request records"), "{none}");
    }

    #[test]
    fn hist_chart_spans_occupied_buckets() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(8);
        h.record(8);
        let lines = hist_chart(&h);
        // Buckets 1 (value 1) through 4 (8..15) inclusive → 4 rows.
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("1 |"));
        assert!(lines[3].contains("8..15"));
    }

    #[test]
    fn empty_histogram_renders_without_panic() {
        let h = Histogram::default();
        assert!(hist_line("empty", &h).contains("(empty)"));
        assert!(hist_chart(&h).is_empty());
    }
}
