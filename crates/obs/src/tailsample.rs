//! Tail sampling for per-request trace records.
//!
//! Recording a [`RequestRecord`] for *every* request would make the trace
//! artifact grow linearly with traffic, which is exactly what keeps most
//! tracing systems turned off in production. The [`TailSampler`] keeps the
//! records that carry information and drops the rest, with three rules
//! applied in order:
//!
//! 1. **errors are always kept** — a failed request is the record you will
//!    be looking for;
//! 2. **a deterministic head sample** of the successes is kept (default
//!    [`DEFAULT_HEAD_PERMILLE`]‰, keyed by an FNV hash of the trace id, so
//!    the same request is kept or dropped on every tier it crosses);
//! 3. **the slowest requests are always kept** — a bounded buffer retains
//!    the top ~1% by end-to-end latency (at least
//!    [`TAIL_KEEP_MIN`]), so the p99 tail survives even at a 0‰ head rate.
//!
//! The decision for rules 1–2 is **stateless and trace-id-deterministic**:
//! every tier that sees the same request makes the same call, which is how
//! one `trace_id` ends up with both router and backend records in the
//! merged waterfall without any cross-process coordination. Rule 3 is
//! per-process (each tier keeps its own slowest), which is what "tail
//! sampling" means here — the decision is made *after* the latency is
//! known.
//!
//! Memory is bounded: at most [`MAX_KEPT`] head/error records plus the
//! slow buffer are retained; overflow increments [`TailSampler::dropped`]
//! rather than growing without bound.

use crate::trace::{RequestRecord, SampleReason};

/// Default head-sampling rate, per mille of successful requests.
pub const DEFAULT_HEAD_PERMILLE: u32 = 100;

/// The slow buffer never shrinks below this many slots, so small runs
/// still keep their slowest request.
pub const TAIL_KEEP_MIN: usize = 4;

/// Hard cap on retained head/error records (the slow buffer is capped
/// separately at 1% of offered requests, itself capped at this).
pub const MAX_KEPT: usize = 4096;

/// FNV-1a of a trace id — the deterministic head-sampling coin.
fn trace_hash(trace_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Would a head sampler at `head_permille`‰ keep this trace id? Exposed so
/// callers can skip building the stage list for requests that can only be
/// kept by the slow rule.
pub fn head_sampled(trace_id: &str, head_permille: u32) -> bool {
    (trace_hash(trace_id) % 1000) < head_permille as u64
}

/// A bounded tail sampler over [`RequestRecord`]s. See the module docs
/// for the three keep rules.
#[derive(Debug)]
pub struct TailSampler {
    head_permille: u32,
    offered: u64,
    dropped: u64,
    kept: Vec<RequestRecord>,
    /// Slow candidates, sorted ascending by `e2e_ms` so index 0 is the
    /// eviction victim.
    slow: Vec<RequestRecord>,
}

impl TailSampler {
    /// A sampler keeping `head_permille`‰ of successes (plus all errors
    /// and the slow tail).
    pub fn new(head_permille: u32) -> TailSampler {
        TailSampler {
            head_permille: head_permille.min(1000),
            offered: 0,
            dropped: 0,
            kept: Vec::new(),
            slow: Vec::new(),
        }
    }

    /// Requests offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Head/error records dropped to the [`MAX_KEPT`] memory cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently retained (head + error + slow buffer).
    pub fn retained(&self) -> usize {
        self.kept.len() + self.slow.len()
    }

    /// Capacity of the slow buffer right now: ~1% of offered, at least
    /// [`TAIL_KEEP_MIN`], at most [`MAX_KEPT`].
    fn tail_cap(&self) -> usize {
        ((self.offered / 100) as usize).clamp(TAIL_KEEP_MIN, MAX_KEPT)
    }

    /// Offer a record; the sampler stamps its `sampled` reason and decides
    /// whether it is retained. Returns `true` when the record is currently
    /// retained (a slow-buffer keep may still be evicted by a later,
    /// slower request).
    pub fn offer(&mut self, mut rec: RequestRecord) -> bool {
        self.offered += 1;
        if !rec.ok || head_sampled(&rec.trace_id, self.head_permille) {
            rec.sampled = if rec.ok { SampleReason::Head } else { SampleReason::Error };
            if self.kept.len() >= MAX_KEPT {
                self.dropped += 1;
                return false;
            }
            self.kept.push(rec);
            return true;
        }
        rec.sampled = SampleReason::Slow;
        let cap = self.tail_cap();
        if self.slow.len() < cap {
            let at = self.slow.partition_point(|r| r.e2e_ms <= rec.e2e_ms);
            self.slow.insert(at, rec);
            return true;
        }
        if self.slow.first().is_some_and(|min| rec.e2e_ms > min.e2e_ms) {
            self.slow.remove(0);
            let at = self.slow.partition_point(|r| r.e2e_ms <= rec.e2e_ms);
            self.slow.insert(at, rec);
            return true;
        }
        false
    }

    /// Take every retained record: head/error keeps in arrival order, then
    /// the slow buffer slowest-first. Resets the sampler.
    pub fn drain(&mut self) -> Vec<RequestRecord> {
        let mut out = std::mem::take(&mut self.kept);
        let mut slow = std::mem::take(&mut self.slow);
        slow.reverse(); // ascending storage → slowest first
        out.extend(slow);
        self.offered = 0;
        self.dropped = 0;
        out
    }
}

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler::new(DEFAULT_HEAD_PERMILLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: &str, ok: bool, e2e_ms: f64) -> RequestRecord {
        RequestRecord {
            trace_id: trace_id.into(),
            kind: "simulate".into(),
            ok,
            e2e_ms,
            sampled: SampleReason::Head,
            stages: Vec::new(),
        }
    }

    #[test]
    fn errors_are_always_kept() {
        let mut s = TailSampler::new(0);
        assert!(s.offer(rec("aaaaaaaaaaaaaaaa", false, 1.0)));
        let kept = s.drain();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].sampled, SampleReason::Error);
    }

    #[test]
    fn head_sampling_is_deterministic_per_trace_id() {
        let mut a = TailSampler::new(500);
        let mut b = TailSampler::new(500);
        let ids: Vec<String> = (0..200).map(|i| format!("{i:016x}")).collect();
        let kept_a: Vec<bool> = ids.iter().map(|id| a.offer(rec(id, true, 1.0))).collect();
        let kept_b: Vec<bool> = ids.iter().map(|id| b.offer(rec(id, true, 1.0))).collect();
        assert_eq!(kept_a, kept_b, "same coin on every tier");
        let heads = kept_a.iter().filter(|&&k| k).count();
        // 500‰ over 200 ids: the FNV coin is not pathological.
        assert!((50..150).contains(&heads), "head keeps way off rate: {heads}");
        for r in a.drain() {
            if r.sampled == SampleReason::Head {
                assert!(head_sampled(&r.trace_id, 500));
            }
        }
    }

    #[test]
    fn slowest_requests_survive_a_zero_head_rate() {
        let mut s = TailSampler::new(0);
        for i in 0..1000u32 {
            // Find ids the head coin would NOT keep even at the default
            // rate — irrelevant at 0‰, but keeps the fixture honest.
            s.offer(rec(&format!("{i:016x}"), true, i as f64));
        }
        let kept = s.drain();
        assert!(!kept.is_empty(), "tail keeps the slow end");
        assert!(kept.len() <= 1000 / 100 + TAIL_KEEP_MIN, "bounded: {}", kept.len());
        assert!(kept.iter().all(|r| r.sampled == SampleReason::Slow));
        assert_eq!(kept[0].e2e_ms, 999.0, "slowest first");
        // Every kept record is slower than every dropped one.
        let min_kept = kept.iter().map(|r| r.e2e_ms).fold(f64::INFINITY, f64::min);
        assert!(min_kept >= (1000 - kept.len()) as f64 - 0.5);
    }

    #[test]
    fn memory_stays_bounded_under_error_floods() {
        let mut s = TailSampler::new(1000);
        for i in 0..(MAX_KEPT as u32 + 100) {
            s.offer(rec(&format!("{i:016x}"), i % 2 == 0, 1.0));
        }
        assert!(s.retained() <= MAX_KEPT + MAX_KEPT / 100 + TAIL_KEEP_MIN);
        assert_eq!(s.dropped(), 100);
        assert_eq!(s.offered(), MAX_KEPT as u64 + 100);
    }
}
