//! Compact, immutable graph representation for processor networks.
//!
//! Networks in this library are finite, undirected, simple graphs whose
//! vertices are processors `P_0, …, P_{n−1}`. The paper's model requires
//! *constant-degree* networks; we represent arbitrary graphs but expose
//! [`Graph::max_degree`] and [`Graph::is_regular`] so callers can enforce the
//! degree discipline where the theory demands it.
//!
//! The representation is CSR (compressed sparse row): one `u32` offset per
//! vertex into a flat, per-vertex-sorted neighbour array. This keeps the hot
//! loops of the simulators (neighbour scans during pebble generation and
//! packet forwarding) allocation-free and cache-friendly.

use std::fmt;

/// Index of a processor in a network. Kept at 32 bits deliberately: every
/// simulation structure stores many of these, and the paper's parameter
/// ranges (n, m ≤ 2³²) never need more.
pub type Node = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Construct via [`GraphBuilder`] or one of the generators in
/// [`crate::generators`].
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<Node>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Largest vertex degree — the paper's "degree of the network".
    pub fn max_degree(&self) -> usize {
        (0..self.n() as Node).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Smallest vertex degree.
    pub fn min_degree(&self) -> usize {
        (0..self.n() as Node).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// `Some(d)` if every vertex has degree exactly `d`.
    pub fn is_regular(&self) -> Option<usize> {
        let n = self.n();
        if n == 0 {
            return Some(0);
        }
        let d = self.degree(0);
        (1..n as Node).all(|v| self.degree(v) == d).then_some(d)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node)> + '_ {
        (0..self.n() as Node).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Union of two graphs on the same vertex set: edge set `E₁ ∪ E₂`.
    ///
    /// This is how the paper assembles `G₀` (Definition 3.9): the edges of a
    /// multitorus united with the edges of an expander. Duplicate edges
    /// collapse (the result is again simple).
    ///
    /// # Panics
    /// Panics if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n(), other.n(), "graph union requires equal vertex sets");
        let mut b = GraphBuilder::new(self.n());
        for (u, v) in self.edges().chain(other.edges()) {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Graph difference `self \ other`: keeps edges of `self` not in `other`,
    /// on the same vertex set. This is the paper's residual graph
    /// `G' = G \ G₀` from the proof of Proposition 3.6(b).
    pub fn difference(&self, other: &Graph) -> Graph {
        assert_eq!(self.n(), other.n());
        let mut b = GraphBuilder::new(self.n());
        for (u, v) in self.edges() {
            if !other.has_edge(u, v) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Whether `other` is a subgraph of `self` (same vertex set, `E' ⊆ E`).
    pub fn contains_subgraph(&self, other: &Graph) -> bool {
        self.n() == other.n() && other.edges().all(|(u, v)| self.has_edge(u, v))
    }

    /// Induced subgraph on `keep` (must be sorted, deduplicated). Returns the
    /// subgraph plus the mapping `new → old`.
    pub fn induced(&self, keep: &[Node]) -> (Graph, Vec<Node>) {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let mut rename = vec![u32::MAX; self.n()];
        for (new, &old) in keep.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        let mut b = GraphBuilder::new(keep.len());
        for &old in keep {
            for &w in self.neighbors(old) {
                let nw = rename[w as usize];
                if nw != u32::MAX && rename[old as usize] < nw {
                    b.add_edge(rename[old as usize], nw);
                }
            }
        }
        (b.build(), keep.to_vec())
    }

    /// Degree histogram: `hist[d]` = number of vertices with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in 0..self.n() as Node {
            hist[self.degree(v)] += 1;
        }
        hist
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ n: {}, edges: {}, max_degree: {} }}",
            self.n(),
            self.num_edges(),
            self.max_degree()
        )
    }
}

/// Incremental builder for [`Graph`].
///
/// Self-loops are rejected (the paper's networks are simple), and duplicate
/// edges collapse silently, which makes generator code that re-derives the
/// same edge from two directions (e.g. torus wrap-around on a 2-cycle)
/// harmless.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Node, Node)>,
}

impl GraphBuilder {
    /// New builder for a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: Node, v: Node) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        assert_ne!(u, v, "self-loops are not allowed in processor networks");
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Finalize into a CSR [`Graph`]. Deduplicates edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut neighbors = vec![0 as Node; acc as usize];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list is already sorted because edges were sorted by
        // (min, max); the `v`-side entries interleave, so sort per vertex.
        for v in 0..self.n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }
        Graph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.is_regular(), Some(2));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn union_collapses_shared_edges() {
        let g = triangle();
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1); // shared with triangle
        let h = b.build();
        let u = g.union(&h);
        assert_eq!(u.num_edges(), 3);
        assert!(u.contains_subgraph(&h));
        assert!(u.contains_subgraph(&g));
    }

    #[test]
    fn difference_is_residual() {
        let g = triangle();
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g0 = b.build();
        let resid = g.difference(&g0);
        assert_eq!(resid.num_edges(), 2);
        assert!(!resid.has_edge(0, 1));
        assert!(resid.has_edge(1, 2));
        // difference ∪ g0 = g
        assert_eq!(resid.union(&g0), g);
    }

    #[test]
    fn induced_subgraph() {
        let g = triangle();
        let (sub, map) = g.induced(&[0, 2]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(map, vec![0, 2]);
    }

    #[test]
    fn edges_iterator_canonical() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn degree_histogram_counts() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        // degrees: 1, 2, 1, 0
        assert_eq!(g.degree_histogram(), vec![1, 2, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.is_regular(), Some(0));
        assert_eq!(g.max_degree(), 0);
    }
}
