//! Textual graph specifications for the CLI, the serve protocol, and
//! experiment scripts.
//!
//! A spec is `family:params`, e.g. `torus:8x8`, `butterfly:4`,
//! `random:64x4:7` (n × degree × seed). [`parse_graph`] covers every
//! generator family in the workspace.

use unet_topology::generators as gen;
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

/// Parse a graph spec. Supported families:
///
/// | spec | graph |
/// |---|---|
/// | `ring:N`, `path:N`, `complete:N` | 1-D classics |
/// | `mesh:RxC`, `torus:RxC` | grids |
/// | `multitorus:AxN` | `(A, N)`-multitorus (Definition 3.8) |
/// | `butterfly:D`, `wbutterfly:D` | (wrapped) butterflies |
/// | `benes:D` | Beneš network on `2^D` rows |
/// | `ccc:D`, `shuffle:D`, `debruijn:D`, `hypercube:D` | hypercubic |
/// | `tree:D`, `xtree:D` | trees of depth `D` |
/// | `meshoftrees:S` | `S×S` mesh of trees (\[1\]) |
/// | `kautz:BxK` | Kautz graph `K(B, K)` |
/// | `multibutterfly:D` or `multibutterfly:D:SEED` | randomized multibutterfly (\[17\]) |
/// | `random:NxD` or `random:NxD:SEED` | random `D`-regular |
/// | `expander:N` or `expander:N:SEED` | random 4-regular expander |
/// | `margulis:S` | Margulis-style expander on `S×S` |
pub fn parse_graph(spec: &str) -> Result<Graph, String> {
    let (family, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("spec {spec:?} must look like family:params"))?;
    let nums = |s: &str| -> Result<Vec<usize>, String> {
        s.split(['x', ':'])
            .map(|p| p.parse::<usize>().map_err(|_| format!("bad number {p:?} in {spec:?}")))
            .collect()
    };
    let one = |s: &str| -> Result<usize, String> {
        let v = nums(s)?;
        (v.len() == 1).then(|| v[0]).ok_or_else(|| format!("{family} takes one parameter"))
    };
    let two = |s: &str| -> Result<(usize, usize), String> {
        let v = nums(s)?;
        (v.len() == 2)
            .then(|| (v[0], v[1]))
            .ok_or_else(|| format!("{family} takes two parameters (use AxB)"))
    };
    Ok(match family {
        "ring" => gen::ring(one(rest)?),
        "path" => gen::path(one(rest)?),
        "complete" => gen::complete(one(rest)?),
        "mesh" => {
            let (r, c) = two(rest)?;
            gen::mesh(r, c)
        }
        "torus" => {
            let (r, c) = two(rest)?;
            gen::torus(r, c)
        }
        "multitorus" => {
            let (a, n) = two(rest)?;
            gen::multitorus(a, n)
        }
        "butterfly" => gen::butterfly(one(rest)?),
        "wbutterfly" => gen::wrapped_butterfly(one(rest)?),
        "benes" => unet_routing::benes::benes_network(one(rest)?),
        "ccc" => gen::cube_connected_cycles(one(rest)?),
        "shuffle" => gen::shuffle_exchange(one(rest)?),
        "debruijn" => gen::de_bruijn(one(rest)?),
        "hypercube" => gen::hypercube(one(rest)?),
        "tree" => gen::binary_tree(one(rest)?),
        "xtree" => gen::x_tree(one(rest)?),
        "margulis" => gen::margulis_expander(one(rest)?),
        "meshoftrees" => gen::mesh_of_trees(one(rest)?),
        "kautz" => {
            let (b, k) = two(rest)?;
            gen::kautz(b, k)
        }
        "multibutterfly" => {
            let v = nums(rest)?;
            match v.as_slice() {
                [d] => gen::multibutterfly(*d, &mut seeded_rng(0)),
                [d, seed] => gen::multibutterfly(*d, &mut seeded_rng(*seed as u64)),
                _ => return Err("multibutterfly takes D or D:SEED".into()),
            }
        }
        "random" => {
            let v = nums(rest)?;
            match v.as_slice() {
                [n, d] => gen::random_regular(*n, *d, &mut seeded_rng(0)),
                [n, d, seed] => gen::random_regular(*n, *d, &mut seeded_rng(*seed as u64)),
                _ => return Err("random takes NxD or NxD:SEED".into()),
            }
        }
        "expander" => {
            let v = nums(rest)?;
            match v.as_slice() {
                [n] => gen::random_hamiltonian_union(*n, 2, &mut seeded_rng(0)),
                [n, seed] => gen::random_hamiltonian_union(*n, 2, &mut seeded_rng(*seed as u64)),
                _ => return Err("expander takes N or N:SEED".into()),
            }
        }
        other => return Err(format!("unknown graph family {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        for (spec, n) in [
            ("ring:8", 8),
            ("path:5", 5),
            ("complete:6", 6),
            ("mesh:3x4", 12),
            ("torus:4x4", 16),
            ("multitorus:2x16", 16),
            ("butterfly:3", 32),
            ("wbutterfly:3", 24),
            ("benes:3", 48),
            ("ccc:3", 24),
            ("shuffle:4", 16),
            ("debruijn:4", 16),
            ("hypercube:4", 16),
            ("tree:3", 15),
            ("xtree:3", 15),
            ("margulis:4", 16),
            ("meshoftrees:4", 16 + 24),
            ("kautz:2x3", 12),
            ("multibutterfly:3", 32),
            ("random:16x4", 16),
            ("random:16x4:9", 16),
            ("expander:10", 10),
        ] {
            let g = parse_graph(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.n(), n, "{spec}");
        }
    }

    #[test]
    fn seeded_specs_reproducible() {
        assert_eq!(parse_graph("random:16x4:9"), parse_graph("random:16x4:9"));
        assert_ne!(parse_graph("random:16x4:9"), parse_graph("random:16x4:10"));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_graph("blah:3").unwrap_err().contains("unknown graph family"));
        assert!(parse_graph("ring").unwrap_err().contains("family:params"));
        assert!(parse_graph("torus:4").unwrap_err().contains("two parameters"));
        assert!(parse_graph("ring:x").unwrap_err().contains("bad number"));
    }
}
