//! Bounded-memory streaming analysis of JSONL traces — the engine behind
//! `unet analyze`.
//!
//! [`TraceAnalyzer`] consumes a trace one line at a time ([`TraceAnalyzer::feed_line`])
//! and keeps only aggregates, never the event stream itself: memory is
//! `O(distinct steps + distinct keys + span nesting depth)`, independent
//! of the number of lines fed. That is what lets `unet analyze` stream a
//! multi-million-event trace from disk without materializing it (the
//! property is pinned down by the `million_line_trace_streams_bounded`
//! test below).
//!
//! The products, collected in [`Analysis`]:
//!
//! * **Congestion time series** — per sample series (`route.edge_util`,
//!   `route.queue_depth`, `sim.edge_util`) and per step: max cell value,
//!   total value, and number of active cells. "Which edges were hot at
//!   step t" becomes a table lookup.
//! * **Top-k hot keys** — edges or nodes ranked by total traffic, with
//!   their peak single-step value. Deterministic: ties break on key id.
//! * **Queue-depth percentiles** — p50/p90/p99 reconstructed from the
//!   log₂ buckets of the `route.queue_occupancy` histogram via
//!   [`Histogram::percentile`].
//! * **Critical path** — from span parent/child timing: the chain of
//!   nested spans (longest child at every level) under the longest
//!   top-level span, i.e. which phase and which route legs bound the
//!   makespan.
//!
//! Malformed input is a hard error with a line number — the analyzer
//! never skips lines silently, per the CLI contract that `unet analyze`
//! exits nonzero on truncated traces.

use std::collections::BTreeMap;

use crate::json::{parse, Value};
use crate::recorder::{unpack_edge_key, Histogram};
use crate::trace::{self, FaultOp, RequestRecord, RunMeta, RunSummary, SampleRecord, SCHEMA};

/// Per-step aggregate of one sample series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepAgg {
    /// Largest single cell value at this step (peak congestion).
    pub max: u64,
    /// Sum over all cells at this step (total traffic).
    pub total: u64,
    /// Number of distinct cells sampled at this step (active edges/nodes).
    pub cells: u64,
}

/// Per-key (edge or node) aggregate of one sample series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyAgg {
    /// Sum over all steps (total traffic through this key).
    pub total: u64,
    /// Largest single-step value (peak load on this key).
    pub peak: u64,
}

/// All aggregates of one named sample series.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesSummary {
    /// Per-step congestion aggregates, keyed by step.
    pub steps: BTreeMap<u64, StepAgg>,
    /// Per-key aggregates, keyed by packed edge / node id.
    pub keys: BTreeMap<u64, KeyAgg>,
    /// Largest single `(step, key)` cell seen anywhere in the series.
    pub max_cell: u64,
    /// Where [`SeriesSummary::max_cell`] occurred.
    pub max_cell_at: (u64, u64),
}

impl SeriesSummary {
    fn add(&mut self, s: &SampleRecord) {
        let st = self.steps.entry(s.step).or_default();
        st.max = st.max.max(s.value);
        st.total += s.value;
        st.cells += 1;
        let k = self.keys.entry(s.key).or_default();
        k.total += s.value;
        k.peak = k.peak.max(s.value);
        if s.value > self.max_cell {
            self.max_cell = s.value;
            self.max_cell_at = (s.step, s.key);
        }
    }

    /// The `k` keys with the largest totals, ties broken by smaller key id
    /// (deterministic for a fixed trace).
    pub fn top_keys(&self, k: usize) -> Vec<(u64, KeyAgg)> {
        let mut v: Vec<(u64, KeyAgg)> = self.keys.iter().map(|(&k, &a)| (k, a)).collect();
        v.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Peak congestion over the whole series: `max_cell`.
    pub fn peak(&self) -> u64 {
        self.max_cell
    }
}

/// Bounded aggregate over the trace's sampled `request` records: where
/// traced requests spent their time, by stage — never the records
/// themselves, so a million-request trace costs `O(distinct stages)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestAgg {
    /// Sampled request records seen.
    pub count: u64,
    /// Of those, how many errored (`ok == false`).
    pub errors: u64,
    /// Sum of end-to-end latencies, milliseconds.
    pub e2e_ms_total: f64,
    /// Slowest sampled request, milliseconds.
    pub e2e_ms_max: f64,
    /// `(total ms, occurrences)` per stage name.
    pub stage_totals: BTreeMap<String, (f64, u64)>,
    /// Kept records per sample reason (`head` / `error` / `slow`).
    pub by_reason: BTreeMap<&'static str, u64>,
}

impl RequestAgg {
    fn add(&mut self, r: &RequestRecord) {
        self.count += 1;
        if !r.ok {
            self.errors += 1;
        }
        self.e2e_ms_total += r.e2e_ms;
        self.e2e_ms_max = self.e2e_ms_max.max(r.e2e_ms);
        for s in &r.stages {
            let t = self.stage_totals.entry(s.stage.clone()).or_insert((0.0, 0));
            t.0 += s.ms;
            t.1 += 1;
        }
        *self.by_reason.entry(r.sampled.as_str()).or_insert(0) += 1;
    }

    /// Stages ranked by total time, ties broken by name (deterministic).
    pub fn stages_ranked(&self) -> Vec<(&str, f64, u64)> {
        let mut v: Vec<(&str, f64, u64)> =
            self.stage_totals.iter().map(|(k, &(ms, n))| (k.as_str(), ms, n)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0))
        });
        v
    }
}

/// One segment of the extracted critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Span name.
    pub name: String,
    /// Duration of this span occurrence in nanoseconds.
    pub ns: u64,
    /// Nesting depth (0 = top level).
    pub depth: usize,
}

/// The finished product of a streaming pass over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Schema the trace declared (current or legacy).
    pub schema: String,
    /// The trace's `meta` record.
    pub meta: RunMeta,
    /// The trace's `summary` record, if present.
    pub summary: Option<RunSummary>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Sample series aggregates by name (empty for `/1`//`2` traces).
    pub series: BTreeMap<String, SeriesSummary>,
    /// `(total ns, completions)` per span name.
    pub span_totals: BTreeMap<String, (u64, u64)>,
    /// Fault events per op name (`inject` / `repair` / `remap`).
    pub fault_counts: BTreeMap<&'static str, u64>,
    /// Per-stage aggregate over sampled request records (empty for
    /// pre-`/4` traces).
    pub requests: RequestAgg,
    /// Critical path: the longest top-level span and, at every level, its
    /// longest direct child. Empty when the trace has no spans.
    pub critical_path: Vec<PathSegment>,
    /// Number of non-empty lines consumed.
    pub lines: u64,
}

impl Analysis {
    /// Queue-depth percentiles `(p50, p90, p99)` reconstructed from the
    /// `route.queue_occupancy` log₂ buckets; `None` if never recorded.
    pub fn queue_percentiles(&self) -> Option<(u64, u64, u64)> {
        let h = self.histograms.get("route.queue_occupancy")?;
        Some((h.percentile(0.5)?, h.percentile(0.9)?, h.percentile(0.99)?))
    }

    /// Aggregate counters — the invariant checked by the schema-migration
    /// test: a `/2` trace and its `/3` re-export must agree on these.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }
}

/// A span currently open during the streaming pass (critical-path state).
struct Frame {
    name: String,
    start_ns: u64,
    /// Longest direct child seen so far: its duration and its own chain
    /// (child first, then grandchild, ...).
    best_child_ns: u64,
    best_child_chain: Vec<(String, u64)>,
}

/// Streaming, bounded-memory trace analyzer. Feed lines in file order
/// with [`TraceAnalyzer::feed_line`], then call [`TraceAnalyzer::finish`].
#[derive(Default)]
pub struct TraceAnalyzer {
    schema: Option<String>,
    meta: Option<RunMeta>,
    summary: Option<RunSummary>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, SeriesSummary>,
    span_totals: BTreeMap<String, (u64, u64)>,
    fault_counts: BTreeMap<&'static str, u64>,
    requests: RequestAgg,
    stack: Vec<Frame>,
    last_ns: u64,
    /// Longest completed top-level span: duration + chain.
    best_top_ns: u64,
    best_top_chain: Vec<(String, u64)>,
    lines: u64,
}

impl TraceAnalyzer {
    /// Fresh analyzer awaiting the `meta` line.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one trace line. `lno` is the 1-based line number used in
    /// error messages. Blank lines are ignored; anything else that fails
    /// to parse or validate is a hard error.
    pub fn feed_line(&mut self, line: &str, lno: usize) -> Result<(), String> {
        if line.trim().is_empty() {
            return Ok(());
        }
        self.lines += 1;
        let v = parse(line).map_err(|e| format!("line {lno}: {e}"))?;
        let ty = v.get("type").and_then(Value::as_str);
        if self.meta.is_none() {
            if ty != Some("meta") {
                return Err(format!("line {lno}: first line must be the meta record"));
            }
            let (schema, meta) = trace::parse_meta(&v, lno)?;
            self.schema = Some(schema);
            self.meta = Some(meta);
            return Ok(());
        }
        match ty {
            Some("meta") => Err(format!("line {lno}: duplicate meta record")),
            Some("span") => self.feed_span(&v, lno),
            Some("counter") => {
                let name = trace::field_str(&v, "name", lno)?;
                let val = trace::field_u64(&v, "value", lno)?;
                *self.counters.entry(name).or_insert(0) += val;
                Ok(())
            }
            Some("gauge") => {
                let name = trace::field_str(&v, "name", lno)?;
                let val = trace::field_f64(&v, "value", lno)?;
                self.gauges.insert(name, val);
                Ok(())
            }
            Some("hist") => {
                let (name, h) = trace::parse_hist(&v, lno)?;
                self.histograms.entry(name).or_default().merge(&h);
                Ok(())
            }
            Some("sample") => {
                let s = trace::parse_sample(&v, lno)?;
                self.series.entry(s.name.clone()).or_default().add(&s);
                Ok(())
            }
            Some("fault") => {
                let op_name = trace::field_str(&v, "op", lno)?;
                let op = FaultOp::parse(&op_name)
                    .ok_or_else(|| format!("line {lno}: bad fault op {op_name:?}"))?;
                *self.fault_counts.entry(op.as_str()).or_insert(0) += 1;
                Ok(())
            }
            Some("request") => {
                let r = trace::parse_request(&v, lno)?;
                self.requests.add(&r);
                Ok(())
            }
            Some("summary") => {
                self.summary = Some(RunSummary {
                    host_steps: trace::field_u64(&v, "host_steps", lno)?,
                    comm_steps: trace::field_u64(&v, "comm_steps", lno)?,
                    compute_steps: trace::field_u64(&v, "compute_steps", lno)?,
                    slowdown: trace::field_f64(&v, "slowdown", lno)?,
                    inefficiency: trace::field_f64(&v, "inefficiency", lno)?,
                    wall_ms: trace::field_f64(&v, "wall_ms", lno)?,
                });
                Ok(())
            }
            other => Err(format!("line {lno}: unknown record type {other:?}")),
        }
    }

    fn feed_span(&mut self, v: &Value, lno: usize) -> Result<(), String> {
        let name = trace::field_str(v, "name", lno)?;
        let ns = trace::field_u64(v, "ns", lno)?;
        if ns < self.last_ns {
            return Err(format!("line {lno}: span time goes backwards ({ns} < {})", self.last_ns));
        }
        self.last_ns = ns;
        match v.get("op").and_then(Value::as_str) {
            Some("start") => {
                self.stack.push(Frame {
                    name,
                    start_ns: ns,
                    best_child_ns: 0,
                    best_child_chain: Vec::new(),
                });
                Ok(())
            }
            Some("end") => {
                let frame = match self.stack.pop() {
                    Some(f) if f.name == name => f,
                    Some(f) => {
                        return Err(format!(
                            "line {lno}: span end {name:?} does not close innermost open span {:?}",
                            f.name
                        ))
                    }
                    None => return Err(format!("line {lno}: span end {name:?} with no open span")),
                };
                let dur = ns - frame.start_ns;
                let t = self.span_totals.entry(frame.name.clone()).or_insert((0, 0));
                t.0 += dur;
                t.1 += 1;
                // This occurrence's chain: itself, then its longest child's
                // chain. Bounded by nesting depth, not event count.
                let mut chain = Vec::with_capacity(1 + frame.best_child_chain.len());
                chain.push((frame.name, dur));
                chain.extend(frame.best_child_chain);
                match self.stack.last_mut() {
                    Some(parent) => {
                        if dur > parent.best_child_ns {
                            parent.best_child_ns = dur;
                            parent.best_child_chain = chain;
                        }
                    }
                    None => {
                        if dur > self.best_top_ns || self.best_top_chain.is_empty() {
                            self.best_top_ns = dur;
                            self.best_top_chain = chain;
                        }
                    }
                }
                Ok(())
            }
            other => Err(format!("line {lno}: bad span op {other:?}")),
        }
    }

    /// Finish the pass: validates that a meta record was seen and every
    /// span was closed (a truncated trace fails here, not silently).
    pub fn finish(self) -> Result<Analysis, String> {
        let meta = self.meta.ok_or("empty trace")?;
        if !self.stack.is_empty() {
            let open: Vec<&str> = self.stack.iter().map(|f| f.name.as_str()).collect();
            return Err(format!("unbalanced trace: spans still open at EOF: {open:?}"));
        }
        let critical_path = self
            .best_top_chain
            .into_iter()
            .enumerate()
            .map(|(depth, (name, ns))| PathSegment { name, ns, depth })
            .collect();
        Ok(Analysis {
            schema: self.schema.unwrap_or_else(|| SCHEMA.to_string()),
            meta,
            summary: self.summary,
            counters: self.counters,
            gauges: self.gauges,
            histograms: self.histograms,
            series: self.series,
            span_totals: self.span_totals,
            fault_counts: self.fault_counts,
            requests: self.requests,
            critical_path,
            lines: self.lines,
        })
    }

    /// Current number of retained aggregate entries — the analyzer's
    /// memory footprint in cells. Used by the bounded-memory test; a
    /// streaming pass over `L` lines must keep this `O(steps + keys)`,
    /// never `O(L)`.
    pub fn retained_cells(&self) -> usize {
        self.counters.len()
            + self.gauges.len()
            + self.histograms.len()
            + self.span_totals.len()
            + self.stack.len()
            + self.requests.stage_totals.len()
            + self.requests.by_reason.len()
            + self.series.values().map(|s| s.steps.len() + s.keys.len()).sum::<usize>()
    }
}

/// Run the analyzer over a full in-memory trace (tests and `unet report`;
/// the CLI streams from disk instead).
pub fn analyze_str(text: &str) -> Result<Analysis, String> {
    let mut a = TraceAnalyzer::new();
    for (i, line) in text.lines().enumerate() {
        a.feed_line(line, i + 1)?;
    }
    a.finish()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render a key of the given series for humans: `edge a->b` for
/// `*edge_util` series (packed edges), `node v` otherwise.
fn fmt_key(series: &str, key: u64) -> String {
    if series.ends_with("edge_util") {
        let (from, to) = unpack_edge_key(key);
        format!("edge {from}->{to}")
    } else {
        format!("node {key}")
    }
}

/// Render an [`Analysis`] for humans (`markdown = false`) or as a
/// GitHub-flavored markdown report (`markdown = true`). `top_k` bounds
/// the hot-key tables. Output is deterministic for a fixed trace.
pub fn render(a: &Analysis, top_k: usize, markdown: bool) -> String {
    let mut out = String::new();
    let h = |out: &mut String, text: &str| {
        if markdown {
            out.push_str(&format!("\n## {text}\n\n"));
        } else {
            out.push_str(&format!("\n=== {text} ===\n"));
        }
    };
    if markdown {
        out.push_str(&format!(
            "# Trace analysis: {} on {}\n\nschema `{}` · command `{}` · n={} m={} T={} · {} lines\n",
            a.meta.guest, a.meta.host, a.schema, a.meta.command, a.meta.n, a.meta.m,
            a.meta.guest_steps, a.lines
        ));
    } else {
        out.push_str(&format!(
            "trace analysis: {} on {}  (schema {}, command {}, n={} m={} T={}, {} lines)\n",
            a.meta.guest,
            a.meta.host,
            a.schema,
            a.meta.command,
            a.meta.n,
            a.meta.m,
            a.meta.guest_steps,
            a.lines
        ));
    }
    if let Some(s) = &a.summary {
        h(&mut out, "Summary");
        out.push_str(&format!(
            "host_steps {} (comm {} + compute {})   slowdown {:.3}   inefficiency {:.3}\n",
            s.host_steps, s.comm_steps, s.compute_steps, s.slowdown, s.inefficiency
        ));
    }

    h(&mut out, "Congestion");
    if a.series.is_empty() {
        out.push_str("no sample series in this trace (pre-/3 schema or no routing phases)\n");
    }
    for (name, s) in &a.series {
        out.push_str(&format!(
            "{name}: {} keys over {} steps, peak cell {} at step {} ({})\n",
            s.keys.len(),
            s.steps.len(),
            s.max_cell,
            s.max_cell_at.0,
            fmt_key(name, s.max_cell_at.1),
        ));
        if markdown {
            out.push_str("\n| rank | key | total | peak/step |\n|---:|---|---:|---:|\n");
            for (i, (key, agg)) in s.top_keys(top_k).into_iter().enumerate() {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    i + 1,
                    fmt_key(name, key),
                    agg.total,
                    agg.peak
                ));
            }
        } else {
            for (i, (key, agg)) in s.top_keys(top_k).into_iter().enumerate() {
                out.push_str(&format!(
                    "  top{:<2} {:<16} total {:<8} peak/step {}\n",
                    i + 1,
                    fmt_key(name, key),
                    agg.total,
                    agg.peak
                ));
            }
        }
    }
    if let Some((p50, p90, p99)) = a.queue_percentiles() {
        h(&mut out, "Queue depth");
        out.push_str(&format!(
            "p50 ≤ {p50}   p90 ≤ {p90}   p99 ≤ {p99}   (reconstructed from log2 buckets)\n"
        ));
    }

    if !a.critical_path.is_empty() {
        h(&mut out, "Critical path");
        let total = a.critical_path[0].ns;
        for seg in &a.critical_path {
            let pct = if total > 0 { 100.0 * seg.ns as f64 / total as f64 } else { 100.0 };
            out.push_str(&format!(
                "{}{} {} ({:.1}% of top span)\n",
                "  ".repeat(seg.depth),
                seg.name,
                fmt_ns(seg.ns),
                pct
            ));
        }
    }

    if a.requests.count > 0 {
        h(&mut out, "Request stages");
        let r = &a.requests;
        let mean = r.e2e_ms_total / r.count as f64;
        out.push_str(&format!(
            "{} sampled requests ({} errors), mean e2e {:.2}ms, max {:.2}ms\n",
            r.count, r.errors, mean, r.e2e_ms_max
        ));
        let reasons: Vec<String> =
            r.by_reason.iter().map(|(why, n)| format!("{why}:{n}")).collect();
        out.push_str(&format!("kept by: {}\n", reasons.join(" ")));
        if markdown {
            out.push_str("\n| stage | total ms | spans | ms/request |\n|---|---:|---:|---:|\n");
            for (stage, ms, n) in r.stages_ranked() {
                out.push_str(&format!(
                    "| {stage} | {ms:.2} | {n} | {:.3} |\n",
                    ms / r.count as f64
                ));
            }
        } else {
            for (stage, ms, n) in r.stages_ranked() {
                out.push_str(&format!(
                    "  {:<18} total {:>10.2}ms   spans {:<6} {:>8.3}ms/req\n",
                    stage,
                    ms,
                    n,
                    ms / r.count as f64
                ));
            }
        }
    }

    if !a.fault_counts.is_empty() {
        h(&mut out, "Faults");
        for (op, n) in &a.fault_counts {
            out.push_str(&format!("{op}: {n}\n"));
        }
    }

    h(&mut out, "Counters");
    for (name, v) in &a.counters {
        out.push_str(&format!("{name} = {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{edge_key, InMemoryRecorder, Recorder};
    use crate::trace::{export, RunMeta, LEGACY_SCHEMAS};

    fn meta_line() -> String {
        format!(
            "{{\"type\":\"meta\",\"schema\":\"{SCHEMA}\",\"command\":\"c\",\"guest\":\"g\",\"host\":\"h\",\"n\":4,\"m\":4,\"guest_steps\":2}}"
        )
    }

    #[test]
    fn analyzer_matches_parse_trace_on_an_exported_run() {
        let mut rec = InMemoryRecorder::new();
        rec.span_start("sim.step");
        rec.span_start("sim.comm");
        rec.counter("route.transfers", 5);
        rec.sample("route.edge_util", 0, edge_key(1, 2), 1);
        rec.sample("route.edge_util", 0, edge_key(1, 2), 1);
        rec.sample("route.edge_util", 1, edge_key(2, 3), 1);
        rec.sample("route.queue_depth", 0, 2, 3);
        rec.histogram("route.queue_occupancy", 3);
        rec.span_end("sim.comm");
        rec.span_end("sim.step");
        let meta = RunMeta {
            command: "test".into(),
            guest: "ring:4".into(),
            host: "torus:2x2".into(),
            n: 4,
            m: 4,
            guest_steps: 1,
        };
        let text = export(&rec, &meta, None);
        let a = analyze_str(&text).expect("analyzes");
        assert_eq!(a.counter("route.transfers"), Some(5));
        let util = &a.series["route.edge_util"];
        assert_eq!(util.steps[&0], StepAgg { max: 2, total: 2, cells: 1 });
        assert_eq!(util.steps[&1], StepAgg { max: 1, total: 1, cells: 1 });
        assert_eq!(util.keys[&edge_key(1, 2)], KeyAgg { total: 2, peak: 2 });
        assert_eq!(util.max_cell, 2);
        assert_eq!(util.max_cell_at, (0, edge_key(1, 2)));
        assert_eq!(a.queue_percentiles(), Some((3, 3, 3)));
        // Critical path: sim.step wraps sim.comm.
        let names: Vec<&str> = a.critical_path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["sim.step", "sim.comm"]);
        assert_eq!(a.critical_path[0].depth, 0);
        assert_eq!(a.critical_path[1].depth, 1);
        assert!(a.critical_path[0].ns >= a.critical_path[1].ns);
    }

    #[test]
    fn critical_path_picks_longest_children() {
        // Hand-written spans with controlled timing: top span A contains a
        // short B and a long C; C contains D. Critical path = A > C > D.
        let lines = [
            meta_line(),
            r#"{"type":"span","op":"start","name":"A","ns":0}"#.into(),
            r#"{"type":"span","op":"start","name":"B","ns":10}"#.into(),
            r#"{"type":"span","op":"end","name":"B","ns":20}"#.into(),
            r#"{"type":"span","op":"start","name":"C","ns":30}"#.into(),
            r#"{"type":"span","op":"start","name":"D","ns":40}"#.into(),
            r#"{"type":"span","op":"end","name":"D","ns":80}"#.into(),
            r#"{"type":"span","op":"end","name":"C","ns":90}"#.into(),
            r#"{"type":"span","op":"end","name":"A","ns":100}"#.into(),
        ];
        let a = analyze_str(&lines.join("\n")).expect("analyzes");
        let chain: Vec<(&str, u64, usize)> =
            a.critical_path.iter().map(|s| (s.name.as_str(), s.ns, s.depth)).collect();
        assert_eq!(chain, vec![("A", 100, 0), ("C", 60, 1), ("D", 40, 2)]);
        // Rendering mentions every segment, in both formats.
        for md in [false, true] {
            let text = render(&a, 5, md);
            assert!(text.contains("Critical path"), "{text}");
            for name in ["A", "C", "D"] {
                assert!(text.contains(name));
            }
        }
    }

    #[test]
    fn top_k_is_deterministic_under_ties() {
        let mut s = SeriesSummary::default();
        for key in [9u64, 3, 7] {
            s.add(&SampleRecord { name: "x".into(), step: 0, key, value: 4 });
        }
        s.add(&SampleRecord { name: "x".into(), step: 1, key: 7, value: 1 });
        let top = s.top_keys(3);
        // 7 leads (total 5); 3 and 9 tie at 4 and order by key id.
        let keys: Vec<u64> = top.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![7, 3, 9]);
        assert_eq!(s.top_keys(1).len(), 1);
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let mut a = TraceAnalyzer::new();
        a.feed_line(&meta_line(), 1).unwrap();
        let err = a.feed_line("{\"type\":\"counter\",\"name\":\"x\"", 7).unwrap_err();
        assert!(err.starts_with("line 7:"), "{err}");

        // Truncated trace: span still open at EOF.
        let mut a = TraceAnalyzer::new();
        a.feed_line(&meta_line(), 1).unwrap();
        a.feed_line(r#"{"type":"span","op":"start","name":"route","ns":5}"#, 2).unwrap();
        assert!(a.finish().unwrap_err().contains("still open"));

        // Missing meta.
        let mut a = TraceAnalyzer::new();
        let err = a.feed_line(r#"{"type":"counter","name":"x","value":1}"#, 1).unwrap_err();
        assert!(err.contains("meta"), "{err}");

        // Unknown schema is rejected up front.
        let mut a = TraceAnalyzer::new();
        let bad = meta_line().replace(SCHEMA, "unet-trace/99");
        assert!(a.feed_line(&bad, 1).unwrap_err().contains("unsupported schema"));

        // Legacy schemas are accepted.
        for legacy in LEGACY_SCHEMAS {
            let mut a = TraceAnalyzer::new();
            a.feed_line(&meta_line().replace(SCHEMA, legacy), 1).unwrap();
            let out = a.finish().unwrap();
            assert_eq!(out.schema, legacy);
            assert!(out.series.is_empty());
        }
    }

    #[test]
    fn million_line_trace_streams_bounded() {
        // ≥1M sample events over 1k steps × 64 edges: retained state must
        // scale with (steps + keys), not with the line count. This is the
        // bounded-memory contract behind `unet analyze` on big traces.
        const STEPS: u64 = 1_000;
        const KEYS: u64 = 64;
        const REPS: u64 = 16; // lines = STEPS * KEYS * REPS ≥ 1M
        let mut a = TraceAnalyzer::new();
        a.feed_line(&meta_line(), 1).unwrap();
        let mut lno = 1usize;
        let mut fed = 0u64;
        for rep in 0..REPS {
            for step in 0..STEPS {
                for k in 0..KEYS {
                    lno += 1;
                    fed += 1;
                    // Reuse one buffer's worth of formatting per line; the
                    // analyzer sees each line exactly as the CLI would.
                    let line = format!(
                        "{{\"type\":\"sample\",\"name\":\"route.edge_util\",\"step\":{step},\"key\":{k},\"value\":{}}}",
                        1 + (rep + step + k) % 3
                    );
                    a.feed_line(&line, lno).unwrap();
                }
            }
            // Memory check after every full sweep: cells retained stay
            // bounded by the grid size, independent of lines fed so far.
            assert!(
                a.retained_cells() <= (STEPS + KEYS) as usize + 16,
                "retained {} cells after {} lines",
                a.retained_cells(),
                fed
            );
        }
        assert!(fed >= 1_000_000, "fed {fed} lines");
        let out = a.finish().unwrap();
        assert_eq!(out.lines, fed + 1);
        let s = &out.series["route.edge_util"];
        assert_eq!(s.steps.len(), STEPS as usize);
        assert_eq!(s.keys.len(), KEYS as usize);
        // Every (step,key) cell was fed REPS times with value in {1,2,3};
        // totals reflect full aggregation, not truncation.
        let total: u64 = s.keys.values().map(|k| k.total).sum();
        assert!(total >= STEPS * KEYS * REPS);
    }

    #[test]
    fn request_records_aggregate_by_stage() {
        let req = |id: &str, ok: bool, e2e: f64, q: f64, sim: f64| {
            format!(
                "{{\"type\":\"request\",\"trace_id\":\"{id}\",\"kind\":\"simulate\",\"ok\":{ok},\"e2e_ms\":{e2e},\"sampled\":\"{}\",\"stages\":[[\"queue_wait\",{q}],[\"simulate\",{sim}]]}}",
                if ok { "head" } else { "error" }
            )
        };
        let text = [
            meta_line(),
            req("0000000000000001", true, 10.0, 2.0, 8.0),
            req("0000000000000002", true, 20.0, 12.0, 8.0),
            req("0000000000000003", false, 5.0, 1.0, 4.0),
        ]
        .join("\n");
        let a = analyze_str(&text).expect("analyzes");
        assert_eq!(a.requests.count, 3);
        assert_eq!(a.requests.errors, 1);
        assert_eq!(a.requests.e2e_ms_max, 20.0);
        assert_eq!(a.requests.stage_totals["queue_wait"], (15.0, 3));
        assert_eq!(a.requests.stage_totals["simulate"], (20.0, 3));
        assert_eq!(a.requests.by_reason["head"], 2);
        assert_eq!(a.requests.by_reason["error"], 1);
        // Ranked: simulate (20ms) before queue_wait (15ms).
        let ranked: Vec<&str> = a.requests.stages_ranked().iter().map(|&(s, ..)| s).collect();
        assert_eq!(ranked, vec!["simulate", "queue_wait"]);
        for md in [false, true] {
            let out = render(&a, 5, md);
            assert!(out.contains("Request stages"), "{out}");
            assert!(out.contains("queue_wait"), "{out}");
        }
        // A malformed request record still fails with its line number.
        let mut bad = TraceAnalyzer::new();
        bad.feed_line(&meta_line(), 1).unwrap();
        let err = bad
            .feed_line("{\"type\":\"request\",\"trace_id\":\"x\",\"kind\":\"k\",\"ok\":true,\"e2e_ms\":1.0,\"sampled\":\"nope\",\"stages\":[]}", 2)
            .unwrap_err();
        assert!(err.contains("line 2") && err.contains("bad sample reason"), "{err}");
    }

    #[test]
    fn render_reports_empty_congestion_for_legacy_traces() {
        let a = analyze_str(&meta_line().replace(SCHEMA, "unet-trace/1")).unwrap();
        let text = render(&a, 5, false);
        assert!(text.contains("no sample series"), "{text}");
        let md = render(&a, 5, true);
        assert!(md.contains("## Congestion"), "{md}");
    }
}
