//! Decomposing `h–h` relations into permutations.
//!
//! Theorem 2.1's butterfly corollary routes the guest-induced
//! `⌈n/m⌉–⌈n/m⌉` problem "by routing `O(n/m)` permutations". The classical
//! device is: pad the bipartite (sources × destinations) multigraph to
//! `h`-regular, then split it into `h` perfect matchings. For `h` a power of
//! two this is a clean recursive **Euler split** (halve the degree along an
//! Eulerian circuit); we pad `h` up to the next power of two with identity
//! dummy packets, so an `h–h` relation becomes at most `2h` permutations.

use crate::problem::RoutingProblem;
use unet_topology::Node;

/// Decompose an `h–h` problem into full permutations of `[m]` such that
/// every original packet `(src, dst)` appears in exactly one permutation
/// (`perm[src] = dst`). Padding entries are identity-ish placements that an
/// engine can route at no cost or skip.
///
/// Returns at most `next_power_of_two(h)` permutations.
pub fn decompose_into_permutations(prob: &RoutingProblem) -> Vec<Vec<Node>> {
    let m = prob.m;
    let h = prob.h().max(1).next_power_of_two();
    // Edge list of the bipartite multigraph, padded to exactly h-regular.
    let mut edges: Vec<(Node, Node)> = prob.pairs.clone();
    let mut out_deg = vec![0usize; m];
    let mut in_deg = vec![0usize; m];
    for &(s, d) in &edges {
        out_deg[s as usize] += 1;
        in_deg[d as usize] += 1;
    }
    // Pair up out-deficits with in-deficits arbitrarily.
    let mut need_out: Vec<Node> = Vec::new();
    let mut need_in: Vec<Node> = Vec::new();
    for v in 0..m {
        for _ in out_deg[v]..h {
            need_out.push(v as Node);
        }
        for _ in in_deg[v]..h {
            need_in.push(v as Node);
        }
    }
    debug_assert_eq!(need_out.len(), need_in.len());
    for (s, d) in need_out.into_iter().zip(need_in) {
        edges.push((s, d));
    }
    // Recursively Euler-split down to matchings.
    let mut stack = vec![(edges, h)];
    let mut perms = Vec::new();
    while let Some((edges, deg)) = stack.pop() {
        if deg == 1 {
            // Perfect matching ⇒ permutation.
            let mut perm = vec![Node::MAX; m];
            for (s, d) in edges {
                debug_assert_eq!(perm[s as usize], Node::MAX);
                perm[s as usize] = d;
            }
            debug_assert!(perm.iter().all(|&d| d != Node::MAX));
            perms.push(perm);
        } else {
            let (a, b) = euler_split(m, &edges);
            stack.push((a, deg / 2));
            stack.push((b, deg / 2));
        }
    }
    perms
}

/// Half of an edge split: `(left, right)` pairs over `[m] × [m]`.
type EdgeList = Vec<(Node, Node)>;

/// Split a `2k`-regular bipartite multigraph (given as `(left, right)` edge
/// pairs over `[m] × [m]`) into two `k`-regular halves along Eulerian
/// circuits.
fn euler_split(m: usize, edges: &[(Node, Node)]) -> (EdgeList, EdgeList) {
    // Bipartite incidence: vertex ids 0..m = left, m..2m = right.
    let nv = 2 * m;
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (e, &(s, d)) in edges.iter().enumerate() {
        incident[s as usize].push(e as u32);
        incident[(d as usize) + m].push(e as u32);
    }
    let mut used = vec![false; edges.len()];
    let mut cursor = vec![0usize; nv];
    let mut a = Vec::with_capacity(edges.len() / 2);
    let mut b = Vec::with_capacity(edges.len() / 2);
    for start in 0..nv {
        loop {
            // Find an unused incident edge of `start`.
            while cursor[start] < incident[start].len()
                && used[incident[start][cursor[start]] as usize]
            {
                cursor[start] += 1;
            }
            if cursor[start] >= incident[start].len() {
                break;
            }
            // Walk a closed circuit; alternate sides determine direction.
            let mut v = start;
            loop {
                while cursor[v] < incident[v].len() && used[incident[v][cursor[v]] as usize] {
                    cursor[v] += 1;
                }
                if cursor[v] >= incident[v].len() {
                    break;
                }
                let e = incident[v][cursor[v]] as usize;
                used[e] = true;
                let (s, d) = edges[e];
                // Traversal direction: from left→right goes to half A,
                // right→left to half B (Euler alternation balances degrees).
                if v < m {
                    a.push((s, d));
                    v = (d as usize) + m;
                } else {
                    b.push((s, d));
                    v = s as usize;
                }
                if v == start {
                    break;
                }
            }
        }
    }
    debug_assert_eq!(a.len(), b.len(), "Euler split must halve the multigraph");
    (a, b)
}

/// Check the decomposition: every permutation is a bijection on `[m]`, and
/// the multiset of original pairs is covered exactly once.
pub fn verify_decomposition(prob: &RoutingProblem, perms: &[Vec<Node>]) -> Result<(), String> {
    let m = prob.m;
    for (i, perm) in perms.iter().enumerate() {
        if perm.len() != m {
            return Err(format!("perm {i} has wrong length"));
        }
        let mut seen = vec![false; m];
        for &d in perm {
            if (d as usize) >= m || seen[d as usize] {
                return Err(format!("perm {i} is not a bijection"));
            }
            seen[d as usize] = true;
        }
    }
    // Multiset containment: count (s,d) pairs.
    use unet_topology::util::FxHashMap;
    let mut want: FxHashMap<(Node, Node), i64> = FxHashMap::default();
    for &p in &prob.pairs {
        *want.entry(p).or_insert(0) += 1;
    }
    for perm in perms {
        for (s, &d) in perm.iter().enumerate() {
            if let Some(c) = want.get_mut(&(s as Node, d)) {
                *c -= 1;
            }
        }
    }
    if want.values().any(|&c| c > 0) {
        return Err("some original packet is not covered by any permutation".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{random_h_h, RoutingProblem};
    use unet_topology::util::seeded_rng;

    #[test]
    fn permutation_decomposes_to_itself() {
        let prob = crate::problem::random_permutation(8, &mut seeded_rng(1));
        let perms = decompose_into_permutations(&prob);
        assert_eq!(perms.len(), 1);
        verify_decomposition(&prob, &perms).unwrap();
    }

    #[test]
    fn h_h_decomposes_into_h_perms() {
        let mut rng = seeded_rng(2);
        for h in [2usize, 4, 8] {
            let prob = random_h_h(16, h, &mut rng);
            let perms = decompose_into_permutations(&prob);
            assert_eq!(perms.len(), h, "h = {h}"); // h already a power of two
            verify_decomposition(&prob, &perms).unwrap();
        }
    }

    #[test]
    fn odd_h_pads_to_power_of_two() {
        let mut rng = seeded_rng(3);
        let prob = random_h_h(8, 3, &mut rng);
        let perms = decompose_into_permutations(&prob);
        assert_eq!(perms.len(), 4);
        verify_decomposition(&prob, &perms).unwrap();
    }

    #[test]
    fn irregular_problem_padded() {
        // A lopsided problem: node 0 sends 3 packets, others idle.
        let prob = RoutingProblem::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        let perms = decompose_into_permutations(&prob);
        assert_eq!(perms.len(), 4);
        verify_decomposition(&prob, &perms).unwrap();
    }

    #[test]
    fn empty_problem() {
        let prob = RoutingProblem::new(4, vec![]);
        let perms = decompose_into_permutations(&prob);
        assert_eq!(perms.len(), 1); // one identity-ish padding perm
        verify_decomposition(&prob, &perms).unwrap();
    }

    #[test]
    fn duplicate_pairs_handled() {
        // The same (src, dst) twice must land in two different permutations.
        let prob = RoutingProblem::new(4, vec![(1, 2), (1, 2)]);
        let perms = decompose_into_permutations(&prob);
        verify_decomposition(&prob, &perms).unwrap();
        let count = perms.iter().filter(|p| p[1] == 2).count();
        assert_eq!(count, 2);
    }
}
