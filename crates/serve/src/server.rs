//! The long-running simulation server.
//!
//! Architecture, front to back:
//!
//! * **Acceptor thread** — polls a non-blocking [`TcpListener`]. Every
//!   accepted connection goes through [`BoundedQueue::try_push`]; a full
//!   queue turns into an immediate typed `overloaded` response (explicit
//!   backpressure — the server never buffers unboundedly). Queue depth at
//!   each admission flows through the same [`Recorder::sample`] hook the
//!   routing loop uses for congestion series.
//! * **Worker pool** — `workers` plain threads popping connections and
//!   serving requests line-by-line. All workers share one process-wide
//!   [`SharedPlanCache`], so repeated guest/host workloads skip route-plan
//!   compilation entirely, and one [`InMemoryRecorder`] (behind a mutex)
//!   accumulating server-level series: admissions/rejections/completions,
//!   request-latency log₂-histograms, and every `sim.*` counter the engine
//!   emitted on behalf of requests.
//! * **Deadlines** — each `simulate` request runs under a
//!   [`CancelToken::with_deadline`]; the engine checks it at phase
//!   boundaries and the worker maps [`SimError::Cancelled`] to a
//!   `deadline-exceeded` error response.
//! * **Graceful drain** — [`Server::drain`] stops the acceptor, lets the
//!   queue empty, answers every request already in flight (workers close
//!   idle connections via a short read timeout once shutdown is flagged),
//!   joins all threads, and returns the final metrics exposition plus a
//!   JSONL trace of the server recorder. No admitted request is dropped.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    error_line, overloaded_line, parse_request, result_line, Request, SimulateReq,
};
use crate::queue::BoundedQueue;
use unet_core::cancel::CancelToken;
use unet_core::spec::parse_graph;
use unet_core::{CachePolicy, Embedding, GuestComputation, SharedPlanCache, SimError, Simulation};
use unet_obs::json::Value;
use unet_obs::trace::{export, RunMeta};
use unet_obs::{InMemoryRecorder, MetricsRegistry, Recorder, TraceAnalyzer};
use unet_topology::par::default_threads;

/// Server configuration (all fields have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the default).
    pub addr: String,
    /// Worker threads serving requests (default: [`default_threads`]).
    pub workers: usize,
    /// Admission queue bound; 0 rejects every connection (default 64).
    pub queue_cap: usize,
    /// Deadline applied to `simulate` requests that do not carry their own
    /// `deadline_ms` (default 10 000 ms).
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: default_threads(),
            queue_cap: 64,
            default_deadline_ms: 10_000,
        }
    }
}

/// Counter snapshot of a running (or drained) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections admitted to the queue.
    pub admitted: u64,
    /// Connections rejected with `overloaded`.
    pub rejected: u64,
    /// Requests answered (any response kind except `overloaded`).
    pub completed: u64,
    /// Shared route-plan cache hits (process totals).
    pub shared_hits: u64,
    /// Shared route-plan cache misses.
    pub shared_misses: u64,
}

impl ServerStats {
    /// Shared-cache hit ratio (`None` before the first simulate request).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            None
        } else {
            Some(self.shared_hits as f64 / total as f64)
        }
    }
}

/// What a graceful drain hands back.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Final counter snapshot.
    pub stats: ServerStats,
    /// Final Prometheus text exposition of the server registry.
    pub exposition: String,
    /// JSONL trace of the server recorder (the `unet trace` format — feeds
    /// the streaming analyzer).
    pub trace: String,
}

struct Shared {
    cache: SharedPlanCache,
    recorder: Mutex<InMemoryRecorder>,
    queue: BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    depth_seq: AtomicU64,
    default_deadline_ms: u64,
}

/// A running server; construct with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and worker pool, and return immediately.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: SharedPlanCache::new(),
            recorder: Mutex::new(InMemoryRecorder::new()),
            queue: BoundedQueue::new(cfg.queue_cap),
            shutdown: AtomicBool::new(false),
            depth_seq: AtomicU64::new(0),
            default_deadline_ms: cfg.default_deadline_ms,
        });
        {
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.gauge("serve.workers", workers as f64);
            rec.gauge("serve.queue.cap", cfg.queue_cap as f64);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        serve_connection(&shared, stream);
                    }
                })
            })
            .collect();
        Ok(Server { addr, shared, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address (resolve port 0 through this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        stats_of(&rec, &self.shared.cache)
    }

    /// Graceful drain: stop accepting, answer everything admitted or in
    /// flight, join all threads, and return the final metrics.
    pub fn drain(mut self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let rec = self.shared.recorder.lock().expect("recorder poisoned");
        let stats = stats_of(&rec, &self.shared.cache);
        let meta = RunMeta {
            command: "serve".to_string(),
            guest: "-".to_string(),
            host: "-".to_string(),
            n: 0,
            m: 0,
            guest_steps: 0,
        };
        DrainReport {
            stats,
            exposition: exposition_of(&rec, &self.shared.cache),
            trace: export(&rec, &meta, None),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Not drained: still stop the threads so tests that merely start a
        // server cannot leak a spinning acceptor.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn stats_of(rec: &InMemoryRecorder, cache: &SharedPlanCache) -> ServerStats {
    ServerStats {
        admitted: rec.counter_value("serve.conns.admitted"),
        rejected: rec.counter_value("serve.conns.rejected"),
        completed: rec.counter_value("serve.requests.completed"),
        shared_hits: cache.hits(),
        shared_misses: cache.misses(),
    }
}

fn exposition_of(rec: &InMemoryRecorder, cache: &SharedPlanCache) -> String {
    let mut reg = MetricsRegistry::from_recorder(rec);
    // The cache atomics are authoritative process totals (per-request
    // recorder merges could lag mid-flight).
    reg.set_counter("serve.cache.shared.hits", cache.hits());
    reg.set_counter("serve.cache.shared.misses", cache.misses());
    if let Some(ratio) = cache.hit_ratio() {
        reg.set_gauge("serve.cache.hit_ratio", ratio);
    }
    reg.expose()
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                admit(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    shared.queue.close();
}

fn admit(shared: &Shared, stream: TcpStream) {
    match shared.queue.try_push(stream) {
        Ok(depth) => {
            let seq = shared.depth_seq.fetch_add(1, Ordering::Relaxed);
            let mut rec = shared.recorder.lock().expect("recorder poisoned");
            rec.counter("serve.conns.admitted", 1);
            rec.sample("serve.queue.depth", seq, 0, depth as u64);
        }
        Err(mut stream) => {
            {
                let mut rec = shared.recorder.lock().expect("recorder poisoned");
                rec.counter("serve.conns.rejected", 1);
            }
            let _ = writeln!(stream, "{}", overloaded_line(shared.queue.cap()));
            let _ = stream.flush();
        }
    }
}

/// How long a worker waits on an idle connection before re-checking the
/// shutdown flag. Bounds drain latency for open-but-quiet clients.
const IDLE_POLL: Duration = Duration::from_millis(50);

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_line_patient(&mut reader, &mut line, shared) {
            LineRead::Line => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let started = Instant::now();
                    let response = handle_request(shared, trimmed);
                    if writeln!(writer, "{response}").and_then(|_| writer.flush()).is_err() {
                        return;
                    }
                    let ms = started.elapsed().as_millis() as u64;
                    let mut rec = shared.recorder.lock().expect("recorder poisoned");
                    rec.counter("serve.requests.completed", 1);
                    rec.histogram("serve.request.latency_ms", ms);
                }
                line.clear();
            }
            LineRead::Closed => return,
        }
    }
}

enum LineRead {
    Line,
    Closed,
}

/// Read one line, treating read timeouts as "check shutdown, keep waiting".
/// A timeout mid-line keeps the partial data in `buf`, so slow writers are
/// never corrupted; an EOF (or a drain while idle) closes the connection.
fn read_line_patient<R: Read>(
    reader: &mut BufReader<R>,
    buf: &mut String,
    shared: &Shared,
) -> LineRead {
    loop {
        match reader.read_line(buf) {
            Ok(0) => return LineRead::Closed,
            Ok(_) => {
                if buf.ends_with('\n') {
                    return LineRead::Line;
                }
                // EOF after a partial line: serve it, next read sees EOF.
                return if buf.is_empty() { LineRead::Closed } else { LineRead::Line };
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
                    // Idle connection during drain: close it. A partial
                    // line means a request is mid-send; keep waiting so
                    // drain never drops an in-flight request.
                    return LineRead::Closed;
                }
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

fn handle_request(shared: &Shared, line: &str) -> String {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(msg) => return error_line("bad-request", &msg, None),
    };
    let id = req.id();
    match req {
        Request::Simulate(req) => handle_simulate(shared, &req),
        Request::Analyze { trace, id } => handle_analyze(&trace, id),
        Request::Metrics { .. } => {
            let rec = shared.recorder.lock().expect("recorder poisoned");
            let exposition = exposition_of(&rec, &shared.cache);
            drop(rec);
            result_line("metrics", id, vec![("exposition".to_string(), Value::Str(exposition))])
        }
    }
}

fn handle_simulate(shared: &Shared, req: &SimulateReq) -> String {
    let guest = match parse_graph(&req.guest) {
        Ok(g) => g,
        Err(e) => return error_line("bad-spec", &format!("guest: {e}"), req.id),
    };
    let host = match parse_graph(&req.host) {
        Ok(g) => g,
        Err(e) => return error_line("bad-spec", &format!("host: {e}"), req.id),
    };
    let comp = GuestComputation::random(guest, req.seed);
    let router = unet_core::routers::presets::bfs();
    let deadline = req.deadline_ms.unwrap_or(shared.default_deadline_ms);
    let token = CancelToken::with_deadline(Duration::from_millis(deadline));
    let started = Instant::now();
    let mut local = InMemoryRecorder::new();
    let run = Simulation::builder()
        .guest(&comp)
        .host(&host)
        .embedding(Embedding::block(comp.n(), host.n()))
        .router(&router)
        .steps(req.steps)
        .seed(req.seed)
        .threads(1)
        .cache_policy(CachePolicy::Enabled)
        .shared_cache(&shared.cache)
        .cancel_token(token)
        .recorder(&mut local)
        .run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let shared_hit = local.counter_value("sim.cache.shared.hits") > 0;
    // Fold the request's engine counters into the server-level registry
    // (recorder counters accumulate, so sim.* become process totals).
    {
        let mut rec = shared.recorder.lock().expect("recorder poisoned");
        for (name, v) in local.counters() {
            rec.counter(name, v);
        }
    }
    let run = match run {
        Ok(run) => run,
        Err(SimError::Cancelled) => {
            return error_line(
                "deadline-exceeded",
                &format!("deadline of {deadline} ms passed at a phase boundary"),
                req.id,
            )
        }
        Err(e) => return error_line("sim-error", &e.to_string(), req.id),
    };
    if let Err(e) = run.verify(&comp, &host, req.steps) {
        return error_line("verify-failed", &e.to_string(), req.id);
    }
    result_line(
        "simulate",
        req.id,
        vec![
            ("guest".to_string(), Value::Str(req.guest.clone())),
            ("host".to_string(), Value::Str(req.host.clone())),
            ("steps".to_string(), Value::UInt(req.steps as u64)),
            ("host_steps".to_string(), Value::UInt(run.protocol.host_steps() as u64)),
            ("comm_steps".to_string(), Value::UInt(run.comm_steps as u64)),
            ("compute_steps".to_string(), Value::UInt(run.compute_steps as u64)),
            ("slowdown".to_string(), Value::Float(run.slowdown())),
            ("inefficiency".to_string(), Value::Float(run.inefficiency())),
            ("shared_cache_hit".to_string(), Value::Bool(shared_hit)),
            ("verified".to_string(), Value::Bool(true)),
            ("wall_ms".to_string(), Value::Float(wall_ms)),
        ],
    )
}

fn handle_analyze(trace: &[String], id: Option<u64>) -> String {
    let mut analyzer = TraceAnalyzer::new();
    for (i, line) in trace.iter().enumerate() {
        if let Err(e) = analyzer.feed_line(line, i + 1) {
            return error_line("bad-trace", &e, id);
        }
    }
    let analysis = match analyzer.finish() {
        Ok(a) => a,
        Err(e) => return error_line("bad-trace", &e, id),
    };
    let exposition = MetricsRegistry::from_analysis(&analysis).expose();
    result_line(
        "analyze",
        id,
        vec![
            ("lines".to_string(), Value::UInt(trace.len() as u64)),
            ("exposition".to_string(), Value::Str(exposition)),
        ],
    )
}
