//! E13 — bandwidth-based lower bounds ([10], related-work reproduction).
//!
//! Expander guests on grid hosts: the bandwidth (cut) argument gives
//! `s = Ω(n/√m)`, exceeding the load bound `n/m` by `√m` — the result the
//! paper quotes from [9]/[10] ("meshes of size m are not able to simulate a
//! variety of networks with the load-induced slowdown only"). The table
//! shows load vs cut bound vs measured, and the measured run never violates
//! the bound.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::rng;
use unet_core::prelude::*;
use unet_lowerbound::bandwidth::{best_bandwidth_bound, consistent};
use unet_topology::generators::{random_hamiltonian_union, torus};

fn regenerate_table() {
    let n = 256;
    let mut r = rng();
    let guest = random_hamiltonian_union(n, 2, &mut r); // 4-regular expander
    let comp = GuestComputation::random(guest.clone(), 0xE13);
    println!("\n=== E13: bandwidth bound — expander guest (n = {n}) on torus hosts ===");
    println!(
        "{:>5} {:>8} {:>11} {:>10} {:>12}",
        "m", "load", "cut bound", "measured", "consistent"
    );
    for side in [3usize, 4, 6, 8] {
        let m = side * side;
        let host = torus(side, side);
        let e = Embedding::block(n, m);
        let (bound, _) = best_bandwidth_bound(&guest, &host, &e, 3, &mut r);
        let router = presets::torus_xy(side, side);
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(e)
            .router(&router)
            .steps(2)
            .run_with_rng(&mut r)
            .expect("torus configuration is valid");
        verify_run(&comp, &host, &run, 2).expect("certifies");
        println!(
            "{m:>5} {:>8.1} {bound:>11.1} {:>10.1} {:>12}",
            bounds::load_bound(n, m),
            run.slowdown(),
            consistent(run.slowdown(), bound)
        );
    }
    println!("cut bound / load ≈ √m/4: the [10]-style excess over the load-induced");
    println!("slowdown — a technique that works for grids but (the paper's point)");
    println!("cannot give non-trivial universal-network bounds on expander hosts.");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e13_bandwidth");
    group.sample_size(10);
    let mut r = rng();
    let guest = random_hamiltonian_union(256, 2, &mut r);
    let host = torus(6, 6);
    let e = Embedding::block(256, 36);
    group.bench_function("best_bandwidth_bound", |b| {
        b.iter(|| best_bandwidth_bound(&guest, &host, &e, 2, &mut r).0)
    });
    group.bench_function("kl_bisection_torus8x8", |b| {
        let g = torus(8, 8);
        b.iter(|| unet_topology::partition::kl_bisection(&g, 2, &mut r))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
