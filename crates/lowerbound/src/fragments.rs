//! Fragment accounting on real protocols (Lemma 3.13, Proposition 3.14).
//!
//! Lemma 3.13 bounds, for every `t₀ ∈ Z_S`, the information content of a
//! fragment: `B ∈ A` with `|A| ≤ 2^{r·n·k}`. This module *measures* the bit
//! cost of describing a concrete protocol's representative sets following
//! the proof's encoding — root sets cost `log₂ C(m, q)` bits, non-root
//! forest nodes cost `q_parent + 2·q + q·log₂ d` bits — so experiment E7 can
//! compare the measured description length against `r·n·k`.

use crate::averaging::{AveragingAnalysis, CanonicalTrees};
use crate::g0::G0;
use unet_pebble::check::Trace;
use unet_pebble::deptree::dependency_tree;
use unet_topology::util::log2_binomial;

/// The measured encoding cost (in bits) of one critical step's fragment,
/// following Proposition 3.14's scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentCost {
    /// Critical step.
    pub t0: u32,
    /// Bits for the root representative sets (`Σ log₂ C(m, q_{r_j})`).
    pub root_bits: f64,
    /// Bits for the non-root forest nodes
    /// (`Σ q_{f(i),t−1} + 2·q_{i,t} + q_{i,t}·log₂ d`).
    pub forest_bits: f64,
    /// The paper's budget `r·n·k` for comparison.
    pub budget_bits: f64,
}

impl FragmentCost {
    /// Total measured bits.
    pub fn total(&self) -> f64 {
        self.root_bits + self.forest_bits
    }

    /// Within budget?
    pub fn within_budget(&self) -> bool {
        self.total() <= self.budget_bits + 1e-6
    }
}

/// Measure the Prop. 3.14 encoding cost of the fragments at every
/// `t₀ ∈ Z_S` chosen by an [`AveragingAnalysis`].
///
/// `host_degree` is `d` (the paper's `r` constant is
/// `3472 + 384·log₂ d`; we use the same structure with the measured
/// quantities).
pub fn fragment_costs(
    trace: &Trace,
    g0: &G0,
    analysis: &AveragingAnalysis,
    host_degree: usize,
) -> Vec<FragmentCost> {
    let canon = CanonicalTrees::precompute(g0.block_side);
    let m = trace.host_m as u64;
    let n = trace.guest_n as f64;
    let k = trace.host_steps as f64 * trace.host_m as f64
        / (trace.guest_t as f64 * trace.guest_n as f64);
    let log_d = (host_degree.max(2) as f64).log2();
    let r_paper = 3472.0 + 384.0 * log_d;
    analysis
        .certificates
        .iter()
        .map(|cert| {
            let t0 = cert.t0;
            let mut root_bits = 0.0;
            let mut forest_bits = 0.0;
            for (j, block) in g0.blocks.iter().enumerate() {
                let root = cert.reps[j];
                let tree = dependency_tree(block, root, t0);
                for (idx, node) in tree.nodes.iter().enumerate() {
                    let q_here = trace.weight(node.vertex, node.time) as f64;
                    if idx == 0 {
                        root_bits += log2_binomial(m, q_here as u64).max(0.0);
                    } else {
                        let parent = &tree.nodes[node.parent as usize];
                        let q_parent = trace.weight(parent.vertex, parent.time) as f64;
                        forest_bits += q_parent + 2.0 * q_here + q_here * log_d;
                    }
                }
            }
            let _ = &canon; // canonical shapes reserved for the fast path
            FragmentCost { t0, root_bits, forest_bits, budget_bits: r_paper * n * k }
        })
        .collect()
}

impl CanonicalTrees {
    /// Alias used by this module (precompute once, reuse).
    pub fn precompute(side: usize) -> Self {
        crate::averaging::canonical_trees(side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::averaging::analyze;
    use crate::g0::build_g0;
    use unet_core::{Embedding, GuestComputation, Simulation};
    use unet_pebble::check;
    use unet_topology::generators::{random_supergraph, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn fragment_costs_within_paper_budget() {
        let mut rng = seeded_rng(21);
        let g0 = build_g0(36, 1, &mut rng);
        let guest = random_supergraph(&g0.graph, 12, &mut rng);
        let comp = GuestComputation::random(guest.clone(), 4);
        let host = torus(2, 2);
        let router = unet_core::routers::presets::bfs();
        let run = Simulation::builder()
            .guest(&comp)
            .host(&host)
            .embedding(Embedding::block(36, 4))
            .router(&router)
            .steps(6)
            .run_with_rng(&mut seeded_rng(22))
            .expect("valid configuration");
        let trace = check(&guest, &host, &run.protocol).unwrap();
        let analysis = analyze(&trace, &g0);
        let costs = fragment_costs(&trace, &g0, &analysis, host.max_degree());
        assert!(!costs.is_empty());
        for c in &costs {
            assert!(c.root_bits >= 0.0);
            assert!(c.forest_bits > 0.0);
            // The paper's budget is enormous; measured costs must sit far
            // below it (the proof is generous by design).
            assert!(c.within_budget(), "t0 = {}: {} > {}", c.t0, c.total(), c.budget_bits);
        }
    }
}
