//! The Theorem 2.1 universal simulation engine.
//!
//! Simulates `T` steps of an arbitrary guest on an arbitrary host: guests are
//! statically embedded (`f : [n] → [m]`, load `≤ ⌈n/m⌉`); each guest step is
//! (a) a **communication phase** — the guest's cross-host edges induce an
//! `O(n/m)–O(n/m)` routing problem, solved by a pluggable [`Router`] — and
//! (b) a **computation phase** — each host generates its guests' next
//! configurations sequentially.
//!
//! The engine emits a full pebble-game [`Protocol`] (so the Section 3.1
//! checker can certify the run) plus the host-computed final states (so the
//! simulation can be verified bit-for-bit against direct execution).

use crate::embedding::Embedding;
use crate::guest::{transition, GuestComputation};
use crate::routers::Router;
use rand::rngs::StdRng;
use unet_obs::{NoopRecorder, Recorder};
use unet_pebble::protocol::{Op, Pebble, Protocol, ProtocolBuilder};
use unet_routing::packet::Transfer;
use unet_routing::problem::RoutingProblem;
use unet_topology::util::FxHashSet;
use unet_topology::{Graph, Node};

/// Result of a universal simulation run.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    /// The emitted pebble protocol (feed to [`unet_pebble::check`]).
    pub protocol: Protocol,
    /// Host-computed final guest states (compare against
    /// [`GuestComputation::run_final`]).
    pub final_states: Vec<u64>,
    /// Host steps spent in communication phases.
    pub comm_steps: usize,
    /// Host steps spent in computation phases.
    pub compute_steps: usize,
}

impl SimulationRun {
    /// Measured slowdown `T'/T`.
    pub fn slowdown(&self) -> f64 {
        self.protocol.slowdown()
    }

    /// Measured inefficiency `k = s·m/n`.
    pub fn inefficiency(&self) -> f64 {
        self.protocol.inefficiency()
    }
}

/// The static-embedding universal simulator of Theorem 2.1.
pub struct EmbeddingSimulator<'r> {
    /// The guest→host placement.
    pub embedding: Embedding,
    /// The host's routing strategy.
    pub router: &'r dyn Router,
}

impl EmbeddingSimulator<'_> {
    /// Simulate `steps` guest steps of `comp` on `host`.
    ///
    /// # Panics
    /// Panics if sizes disagree (`embedding.n() == comp.n()`,
    /// `embedding.m == host.n()`).
    pub fn simulate(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        rng: &mut StdRng,
    ) -> SimulationRun {
        self.simulate_recorded(comp, host, steps, rng, &mut NoopRecorder)
    }

    /// [`EmbeddingSimulator::simulate`] with instrumentation. Per guest
    /// step it brackets the two phases with `sim.comm` / `sim.compute`
    /// spans and samples the induced routing-problem size; the router's own
    /// `route` span and metrics nest under `sim.comm`. Run totals land in
    /// `sim.*` counters and the `sim.load` gauge.
    ///
    /// `simulate` is exactly this with [`NoopRecorder`], so the
    /// uninstrumented path monomorphizes all of it away.
    pub fn simulate_recorded<REC: Recorder>(
        &self,
        comp: &GuestComputation,
        host: &Graph,
        steps: u32,
        rng: &mut StdRng,
        rec: &mut REC,
    ) -> SimulationRun {
        let n = comp.n();
        let m = host.n();
        assert_eq!(self.embedding.n(), n, "embedding covers every guest");
        assert_eq!(self.embedding.m, m, "embedding targets this host");
        assert!(steps >= 1, "simulate at least one guest step");

        let f = &self.embedding.f;
        let guests_by_host = self.embedding.guests_by_host();
        let load = self.embedding.load();

        let mut builder = ProtocolBuilder::new(n, steps, m);
        let mut comm_steps = 0usize;
        let mut compute_steps = 0usize;

        let mut prev_states: Vec<u64> = comp.init.clone();
        let mut nb_buf: Vec<u64> = Vec::new();

        for gt in 1..=steps {
            // ---- Communication phase -------------------------------------
            // One packet per (guest u, remote host of a neighbour of u).
            // Level-0 pebbles are initial and held by every host, so the
            // first guest step needs no communication at all.
            rec.span_start("sim.comm");
            let mut seen: FxHashSet<(Node, Node)> = FxHashSet::default();
            let mut pairs: Vec<(Node, Node)> = Vec::new();
            let mut payloads: Vec<Pebble> = Vec::new();
            if gt > 1 {
                for u in 0..n as Node {
                    let fu = f[u as usize];
                    for &v in comp.graph.neighbors(u) {
                        let fv = f[v as usize];
                        if fu != fv && seen.insert((u, fv)) {
                            pairs.push((fu, fv));
                            payloads.push(Pebble::new(u, gt - 1));
                        }
                    }
                }
            }
            rec.histogram("sim.routing_problem_size", pairs.len() as u64);
            if !pairs.is_empty() {
                let prob = RoutingProblem::new(m, pairs);
                let out = self.router.route_recorded(host, &prob, rng, &mut *rec);
                comm_steps += emit_transfers(&mut builder, &out.transfers, &payloads);
            }
            rec.span_end("sim.comm");
            // ---- Computation phase ---------------------------------------
            rec.span_start("sim.compute");
            for round in 0..load {
                for (q, guests) in guests_by_host.iter().enumerate() {
                    if let Some(&v) = guests.get(round) {
                        builder.set_op(q as Node, Op::Generate(Pebble::new(v, gt)));
                    }
                }
                builder.end_step();
                compute_steps += 1;
            }
            // ---- Host-side state computation -----------------------------
            // (data availability is certified separately by the pebble
            // checker; values are copies, so computing from the global table
            // is equivalent to computing from the delivered copies)
            let mut next_states = Vec::with_capacity(n);
            for i in 0..n as Node {
                nb_buf.clear();
                nb_buf.extend(comp.graph.neighbors(i).iter().map(|&j| prev_states[j as usize]));
                next_states.push(transition(prev_states[i as usize], &nb_buf));
            }
            prev_states = next_states;
            rec.span_end("sim.compute");
        }
        rec.counter("sim.guest_steps", steps as u64);
        rec.counter("sim.comm_steps", comm_steps as u64);
        rec.counter("sim.compute_steps", compute_steps as u64);
        rec.gauge("sim.load", load as f64);

        SimulationRun {
            protocol: builder.finish(),
            final_states: prev_states,
            comm_steps,
            compute_steps,
        }
    }
}

/// Convert an engine transfer schedule into pebble send/receive steps.
///
/// The engine's port model allows a node to send *and* receive in the same
/// synchronous step; the pebble game allows only one operation per processor
/// per step. Each engine step's transfers form a multigraph of maximum
/// degree 2 (≤ 1 out, ≤ 1 in per node), so a greedy matching decomposition
/// needs at most 3 pebble steps per engine step (Vizing/Shannon bound for
/// Δ = 2). Self-transfers (lazy path segments) are dropped — custody already
/// covers them.
///
/// Returns the number of pebble steps emitted.
///
/// Public so that degraded-mode simulators (`unet-faults`) can reuse the
/// exact decomposition when converting fault-aware routing runs into
/// certified pebble steps.
pub fn emit_transfers(
    builder: &mut ProtocolBuilder,
    transfers: &[Transfer],
    payloads: &[Pebble],
) -> usize {
    let mut emitted = 0usize;
    let mut idx = 0usize;
    while idx < transfers.len() {
        // Slice out one engine step.
        let step = transfers[idx].step;
        let mut hi = idx;
        while hi < transfers.len() && transfers[hi].step == step {
            hi += 1;
        }
        let mut remaining: Vec<&Transfer> =
            transfers[idx..hi].iter().filter(|t| t.from != t.to).collect();
        while !remaining.is_empty() {
            let mut used: FxHashSet<Node> = FxHashSet::default();
            let mut next_round = Vec::new();
            for t in remaining {
                if used.contains(&t.from) || used.contains(&t.to) {
                    next_round.push(t);
                    continue;
                }
                used.insert(t.from);
                used.insert(t.to);
                builder.transfer(t.from, t.to, payloads[t.packet_id as usize]);
            }
            builder.end_step();
            emitted += 1;
            remaining = next_round;
        }
        idx = hi;
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routers::presets;
    use unet_pebble::check;
    use unet_topology::generators::{mesh, random_regular, ring, torus};
    use unet_topology::util::seeded_rng;

    /// End-to-end: guest ring(12) on torus(2,2) host via BFS routing;
    /// protocol must check and states must match direct execution.
    #[test]
    fn ring_on_tiny_torus_end_to_end() {
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 99);
        let router = presets::bfs();
        let sim = EmbeddingSimulator { embedding: Embedding::block(12, 4), router: &router };
        let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(1));
        // Pebble-game certification.
        let trace = check(&guest, &host, &run.protocol).expect("protocol must verify");
        assert_eq!(trace.host_steps, run.protocol.host_steps());
        // Bit-for-bit correctness.
        assert_eq!(run.final_states, comp.run_final(3));
        // Slowdown ≥ load.
        assert!(run.slowdown() >= 3.0);
        assert_eq!(run.comm_steps + run.compute_steps, run.protocol.host_steps());
    }

    #[test]
    fn random_regular_guest_on_mesh() {
        let guest = random_regular(24, 4, &mut seeded_rng(7));
        let host = mesh(3, 3);
        let comp = GuestComputation::random(guest.clone(), 5);
        let router = presets::mesh_xy(3, 3);
        let sim = EmbeddingSimulator { embedding: Embedding::block(24, 9), router: &router };
        let run = sim.simulate(&comp, &host, 2, &mut seeded_rng(2));
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn injective_embedding_when_m_exceeds_n() {
        // m > n: every guest on its own host; slowdown dominated by routing.
        let guest = ring(8);
        let host = torus(4, 4);
        let comp = GuestComputation::random(guest.clone(), 1);
        let router = presets::torus_xy(4, 4);
        let sim = EmbeddingSimulator { embedding: Embedding::block(8, 16), router: &router };
        let run = sim.simulate(&comp, &host, 2, &mut seeded_rng(3));
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn guest_equal_host_identity_embedding() {
        // Simulating a torus on itself: communication only with neighbours'
        // hosts; still must verify.
        let guest = torus(3, 3);
        let host = torus(3, 3);
        let comp = GuestComputation::random(guest.clone(), 2);
        let router = presets::bfs();
        let sim = EmbeddingSimulator { embedding: Embedding::block(9, 9), router: &router };
        let run = sim.simulate(&comp, &host, 2, &mut seeded_rng(4));
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn random_embedding_still_correct() {
        let guest = ring(16);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 3);
        let router = presets::bfs();
        let sim = EmbeddingSimulator {
            embedding: Embedding::random(16, 4, &mut seeded_rng(5)),
            router: &router,
        };
        let run = sim.simulate(&comp, &host, 2, &mut seeded_rng(6));
        check(&guest, &host, &run.protocol).expect("verify");
        assert_eq!(run.final_states, comp.run_final(2));
    }

    #[test]
    fn recorded_simulation_matches_and_nests() {
        use unet_obs::InMemoryRecorder;
        let guest = ring(12);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest.clone(), 99);
        let router = presets::bfs();
        let sim = EmbeddingSimulator { embedding: Embedding::block(12, 4), router: &router };
        let plain = sim.simulate(&comp, &host, 3, &mut seeded_rng(1));
        let mut rec = InMemoryRecorder::new();
        let recorded = sim.simulate_recorded(&comp, &host, 3, &mut seeded_rng(1), &mut rec);
        // Instrumentation must not perturb the run (same RNG stream).
        assert_eq!(plain.final_states, recorded.final_states);
        assert_eq!(plain.comm_steps, recorded.comm_steps);
        assert_eq!(plain.compute_steps, recorded.compute_steps);
        assert_eq!(plain.protocol.host_steps(), recorded.protocol.host_steps());
        // Spans balanced; phase totals present for both phases.
        assert!(rec.open_spans().is_empty());
        let totals: Vec<_> = rec.span_totals().collect();
        assert!(totals.iter().any(|&(n, ns, _)| n == "sim.comm" && ns > 0));
        assert!(totals.iter().any(|&(n, ..)| n == "sim.compute"));
        // Router metrics nested under the simulation via the dyn boundary.
        assert!(totals.iter().any(|&(n, ..)| n == "route"));
        assert!(rec.counter_value("route.steps") > 0);
        // Run totals agree with the result.
        assert_eq!(rec.counter_value("sim.guest_steps"), 3);
        assert_eq!(rec.counter_value("sim.comm_steps"), recorded.comm_steps as u64);
        assert_eq!(rec.counter_value("sim.compute_steps"), recorded.compute_steps as u64);
        // One routing-problem-size sample per guest step.
        assert_eq!(rec.histogram_data("sim.routing_problem_size").unwrap().count, 3);
    }

    #[test]
    fn simulation_run_carries_no_instrumentation_state() {
        // The zero-cost claim in struct form: a run is exactly its four
        // payload fields; recording state lives in the Recorder, never here.
        use std::mem::size_of;
        assert_eq!(
            size_of::<SimulationRun>(),
            size_of::<Protocol>() + size_of::<Vec<u64>>() + 2 * size_of::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_steps_rejected() {
        let guest = ring(4);
        let host = torus(2, 2);
        let comp = GuestComputation::random(guest, 1);
        let router = presets::bfs();
        let sim = EmbeddingSimulator { embedding: Embedding::block(4, 4), router: &router };
        sim.simulate(&comp, &host, 0, &mut seeded_rng(0));
    }
}
