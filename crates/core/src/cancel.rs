//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap cloneable handle carrying a shared cancel
//! flag and an optional wall-clock deadline. The engine checks it at
//! **phase boundaries** (the top of each guest step and between the
//! communication and computation phases), so a cancelled run stops within
//! one phase and returns [`SimError::Cancelled`](crate::SimError::Cancelled)
//! instead of a partial result. That granularity is deliberate: phases are
//! the engine's units of progress, and checking inside them would put a
//! branch in the hot loops the zero-cost instrumentation layer keeps clean.
//!
//! The token exists for callers that run simulations on behalf of someone
//! else — the `unet-serve` request workers hand every simulation a token
//! derived from the request's deadline, so one slow request cannot hold a
//! worker past its budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle: manual [`cancel`](CancelToken::cancel)
/// plus an optional deadline. All clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](CancelToken::cancel) is
    /// called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally reports cancelled once `budget` wall time
    /// has elapsed (measured from this call).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + budget),
        }
    }

    /// Request cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has this token been cancelled (explicitly, or by its deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_visible_through_clones() {
        let tok = CancelToken::new();
        let other = tok.clone();
        assert!(!other.is_cancelled());
        tok.cancel();
        assert!(other.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_already_cancelled() {
        let tok = CancelToken::with_deadline(Duration::ZERO);
        assert!(tok.is_cancelled());
    }

    #[test]
    fn generous_deadline_not_cancelled_yet() {
        let tok = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!tok.is_cancelled());
        tok.cancel();
        assert!(tok.is_cancelled(), "manual cancel still wins before the deadline");
    }
}
