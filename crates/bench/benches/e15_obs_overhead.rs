//! E15 — instrumentation overhead of the routing engine.
//!
//! The zero-cost claim, measured: `route()` (which monomorphizes
//! `route_recorded` over `NoopRecorder`) must cost the same as calling
//! `route_recorded` with an explicit `NoopRecorder`, and the live
//! `InMemoryRecorder` shows what full recording costs on the same problem.
//! A paired-measurement check asserts the noop overhead stays below 2%.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use unet_obs::{InMemoryRecorder, NoopRecorder};
use unet_routing::packet::{make_packets, route, route_recorded, Discipline, Packet, ShortestPath};
use unet_topology::generators::torus;
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

fn problem() -> (Graph, Vec<Packet>) {
    let g = torus(16, 16);
    let n = g.n() as u32;
    let mut rng = seeded_rng(0xE15);
    let pairs: Vec<(u32, u32)> =
        (0..2 * n).map(|i| ((i * 37 + 5) % n, (i * 101 + 13) % n)).collect();
    let packets = make_packets(&g, &pairs, &ShortestPath, &mut rng).unwrap();
    (g, packets)
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn overhead_report() {
    let (g, packets) = problem();
    // Warm up caches and page in both code paths.
    for _ in 0..3 {
        route(&g, &packets, Discipline::FarthestFirst, u32::MAX).unwrap();
        route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut NoopRecorder)
            .unwrap();
    }
    let reps = 31;
    let plain = median_ns(reps, || {
        route(&g, &packets, Discipline::FarthestFirst, u32::MAX).unwrap();
    });
    let noop = median_ns(reps, || {
        route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut NoopRecorder)
            .unwrap();
    });
    let live = median_ns(reps, || {
        let mut rec = InMemoryRecorder::new();
        route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut rec).unwrap();
    });
    let overhead = (noop as f64 - plain as f64) / plain as f64 * 100.0;
    println!("\n=== E15: recorder overhead on route(), 512 packets on torus 16x16 ===");
    println!("route() plain:                 {:>10} ns (median of {reps})", plain);
    println!("route_recorded(Noop):          {:>10} ns  ({overhead:+.2}% vs plain)", noop);
    println!(
        "route_recorded(InMemory):      {:>10} ns  ({:+.2}% vs plain)",
        live,
        (live as f64 - plain as f64) / plain as f64 * 100.0
    );
    assert!(overhead < 2.0, "NoopRecorder must be free: measured {overhead:.2}% overhead");
    println!("zero-cost check PASSED: noop overhead {overhead:.2}% < 2%");
}

fn bench(c: &mut Criterion) {
    overhead_report();
    let (g, packets) = problem();
    let mut group = c.benchmark_group("e15_obs_overhead");
    group.bench_function("route_plain", |b| {
        b.iter(|| route(&g, &packets, Discipline::FarthestFirst, u32::MAX).unwrap())
    });
    group.bench_function("route_noop_recorder", |b| {
        b.iter(|| {
            route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut NoopRecorder)
                .unwrap()
        })
    });
    group.bench_function("route_inmemory_recorder", |b| {
        b.iter(|| {
            let mut rec = InMemoryRecorder::new();
            route_recorded(&g, &packets, Discipline::FarthestFirst, u32::MAX, &mut rec).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
