//! The fully redundant baseline simulator.
//!
//! Every host generates every pebble: no communication ever happens (all
//! predecessors are always local), at the price of slowdown `≈ n` regardless
//! of `m` — inefficiency `k ≈ m`. This is the degenerate extreme of dynamic
//! simulation (*maximal* redundancy) and the natural baseline for
//! experiment E9: the paper's conclusion is that for `m ≤ n` no amount of
//! dynamic redundancy beats the plain embedding by more than a constant.

use crate::error::SimError;
use crate::guest::GuestComputation;
use crate::simulate::SimulationRun;
use unet_pebble::protocol::{Op, Pebble, Protocol, ProtocolBuilder};

/// Simulate `steps` guest steps with full redundancy on `m` hosts:
/// per guest step, `n` host steps in which **all** hosts generate pebble
/// `(P_1, t), …, (P_n, t)` in lockstep.
pub fn flooding_protocol(comp: &GuestComputation, m: usize, steps: u32) -> Protocol {
    let n = comp.n();
    let mut b = ProtocolBuilder::new(n, steps, m);
    for t in 1..=steps {
        for i in 0..n as u32 {
            for q in 0..m as u32 {
                b.set_op(q, Op::Generate(Pebble::new(i, t)));
            }
            b.end_step();
        }
    }
    b.finish()
}

/// The flooding slowdown is exactly `n` per guest step.
pub fn flooding_slowdown(n: usize) -> f64 {
    n as f64
}

/// Fallible flooding run in the builder API's vocabulary: validates the
/// configuration (`steps ≥ 1`, `m ≥ 1`), emits the protocol, and computes
/// the final states, packaged as a [`SimulationRun`] so the standard
/// verification/metrics pipeline (`run.verify(…)`) applies unchanged.
pub fn flooding_run(
    comp: &GuestComputation,
    m: usize,
    steps: u32,
) -> Result<SimulationRun, SimError> {
    if steps == 0 {
        return Err(SimError::ZeroSteps);
    }
    if m == 0 {
        return Err(SimError::EmptyHost);
    }
    let protocol = flooding_protocol(comp, m, steps);
    let compute_steps = protocol.host_steps();
    Ok(SimulationRun {
        protocol,
        final_states: comp.run_final(steps),
        comm_steps: 0,
        compute_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_pebble::check;
    use unet_topology::generators::{complete, ring};

    #[test]
    fn flooding_verifies_and_has_slowdown_n() {
        let guest = ring(6);
        let host = complete(3);
        let comp = GuestComputation::random(guest.clone(), 4);
        let proto = flooding_protocol(&comp, 3, 2);
        let trace = check(&guest, &host, &proto).expect("flooding is always valid");
        assert_eq!(proto.slowdown(), 6.0);
        assert_eq!(proto.inefficiency(), 3.0); // = m
                                               // Every host holds every pebble.
        for i in 0..6u32 {
            for t in 1..=2u32 {
                assert_eq!(trace.weight(i, t), 3);
            }
        }
    }

    #[test]
    fn flooding_on_single_host() {
        let guest = ring(4);
        let host = unet_topology::GraphBuilder::new(1).build();
        let comp = GuestComputation::random(guest.clone(), 1);
        let proto = flooding_protocol(&comp, 1, 3);
        check(&guest, &host, &proto).expect("single host floods fine");
        assert_eq!(proto.inefficiency(), 1.0);
    }

    #[test]
    fn flooding_run_verifies_and_validates() {
        let guest = ring(6);
        let host = complete(3);
        let comp = GuestComputation::random(guest.clone(), 4);
        let run = flooding_run(&comp, 3, 2).expect("valid");
        run.verify(&comp, &host, 2).expect("certified");
        assert_eq!(run.comm_steps, 0);
        assert_eq!(run.compute_steps, run.protocol.host_steps());
        assert!(matches!(flooding_run(&comp, 3, 0), Err(SimError::ZeroSteps)));
        assert!(matches!(flooding_run(&comp, 0, 2), Err(SimError::EmptyHost)));
    }

    #[test]
    fn flooding_never_communicates() {
        let comp = GuestComputation::random(ring(5), 2);
        let proto = flooding_protocol(&comp, 4, 2);
        let (generates, sends, recvs, _) = proto.op_histogram();
        assert_eq!(sends, 0);
        assert_eq!(recvs, 0);
        assert_eq!(generates, 5 * 2 * 4);
    }
}
