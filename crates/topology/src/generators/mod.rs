//! Generators for every network family the paper mentions.
//!
//! All generators return [`crate::graph::Graph`]s and are deterministic given
//! their parameters (and RNG seed, where randomized).

pub mod advanced;
pub mod butterfly;
pub mod classic;
pub mod mesh;
pub mod random;

pub use advanced::{kautz, mesh_of_trees, multibutterfly};
pub use butterfly::{butterfly, butterfly_dim_for_size, wrapped_butterfly};
pub use classic::{
    binary_tree, complete, cube_connected_cycles, de_bruijn, hypercube, path, ring,
    shuffle_exchange, x_tree,
};
pub use mesh::{blocks, grid_coords, grid_index, mesh, multitorus, torus, torus_side};
pub use random::{
    margulis_expander, random_hamiltonian_union, random_regular, random_regular_containing,
    random_supergraph,
};
