//! Spectral expansion certification.
//!
//! Definition 3.9 requires `G₀` to contain a 4-regular `(α, β)`-expander with
//! `0 < α < 1`, `β > 1`, and the lower-bound constant
//! `γ = ½·α·(1 − 1/β)` (Lemma 3.15) depends on those parameters. Rather than
//! assuming expansion of a random graph, we *certify* it:
//!
//! 1. estimate the second-largest adjacency eigenvalue `λ` by power iteration
//!    orthogonal to the all-ones vector (exact enough for certification
//!    because we only need an upper bound with slack), then
//! 2. convert `λ` into vertex expansion via **Tanner's bound**: for a
//!    `d`-regular graph and any `A` with `|A| = αn`,
//!    `|N(A)| ≥ |A| · d² / (λ² + (d² − λ²)·α)`.
//!
//! The certified `(α, β)` pair feeds straight into
//! `unet_lowerbound::counting`.

use crate::graph::Graph;
use rand::Rng;

/// Result of spectral analysis of a `d`-regular graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spectrum {
    /// Degree `d` (largest adjacency eigenvalue of a connected regular graph).
    pub degree: usize,
    /// Estimated second-largest eigenvalue **in absolute value** of the
    /// adjacency matrix.
    pub lambda: f64,
}

impl Spectrum {
    /// Tanner's vertex-expansion bound at set-size fraction `alpha`:
    /// every `A` with `|A| ≤ α·n` satisfies `|N(A)| ≥ β·|A|` for the returned
    /// `β = d² / (λ² + (d² − λ²)·α)`.
    pub fn tanner_beta(&self, alpha: f64) -> f64 {
        let d2 = (self.degree * self.degree) as f64;
        let l2 = self.lambda * self.lambda;
        d2 / (l2 + (d2 - l2) * alpha)
    }

    /// The paper's γ constant (Lemma 3.15): `γ = ½·α·(1 − 1/β)` using the
    /// Tanner-certified β at `alpha`. Positive iff β > 1.
    pub fn gamma(&self, alpha: f64) -> f64 {
        let beta = self.tanner_beta(alpha);
        0.5 * alpha * (1.0 - 1.0 / beta)
    }
}

/// Estimate the second adjacency eigenvalue of a connected `d`-regular graph
/// by power iteration with deflation of the top eigenvector (the all-ones
/// vector, exact for regular graphs). Returns the full [`Spectrum`].
///
/// `iters` of 200–500 gives 2–3 significant digits — enough, since the bound
/// consumer only needs `λ` bounded away from `d`.
///
/// # Panics
/// Panics unless `g` is regular and non-empty.
pub fn estimate_spectrum<R: Rng>(g: &Graph, iters: usize, rng: &mut R) -> Spectrum {
    let d = g.is_regular().expect("spectral certification requires a regular graph");
    let n = g.n();
    assert!(n > 0);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    deflate_and_normalize(&mut v);
    let mut w = vec![0.0f64; n];
    let mut lambda = 0.0f64;
    for _ in 0..iters {
        // w = A v
        for (u, wu) in w.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &x in g.neighbors(u as u32) {
                acc += v[x as usize];
            }
            *wu = acc;
        }
        deflate_and_normalize(&mut w);
        std::mem::swap(&mut v, &mut w);
    }
    // Rayleigh quotient for the converged direction.
    let mut num = 0.0;
    for (u, &vu) in v.iter().enumerate() {
        let mut acc = 0.0;
        for &x in g.neighbors(u as u32) {
            acc += v[x as usize];
        }
        num += vu * acc;
    }
    lambda += num; // v is unit-norm
    Spectrum { degree: d, lambda: lambda.abs() }
}

/// Remove the all-ones component and scale to unit norm. If the vector
/// collapses (numerically zero), reseed it deterministically.
fn deflate_and_normalize(v: &mut [f64]) {
    let n = v.len() as f64;
    let mean: f64 = v.iter().sum::<f64>() / n;
    for x in v.iter_mut() {
        *x -= mean;
    }
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 1e-300 {
        for (i, x) in v.iter_mut().enumerate() {
            *x = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let norm2: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in v.iter_mut() {
            *x /= norm2;
        }
        return;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
}

/// Certify an `(α, β)`-expander per Definition 3.8 from the spectrum:
/// returns `Some((alpha, beta, gamma))` with `β > 1` if certification
/// succeeds at the requested `alpha`, else `None`.
pub fn certify_expander<R: Rng>(
    g: &Graph,
    alpha: f64,
    iters: usize,
    rng: &mut R,
) -> Option<(f64, f64, f64)> {
    let spec = estimate_spectrum(g, iters, rng);
    // Guard: power iteration can only under-estimate λ if unconverged, which
    // would over-certify. Add 5% safety margin, capped at d.
    let safe =
        Spectrum { degree: spec.degree, lambda: (spec.lambda * 1.05).min(spec.degree as f64) };
    let beta = safe.tanner_beta(alpha);
    (beta > 1.0).then(|| (alpha, beta, 0.5 * alpha * (1.0 - 1.0 / beta)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{complete, ring};
    use crate::generators::random::{margulis_expander, random_hamiltonian_union};
    use crate::util::seeded_rng;

    #[test]
    fn complete_graph_lambda_is_one() {
        // K_n adjacency spectrum: n−1 once, −1 with multiplicity n−1.
        let g = complete(12);
        let spec = estimate_spectrum(&g, 300, &mut seeded_rng(1));
        assert_eq!(spec.degree, 11);
        assert!((spec.lambda - 1.0).abs() < 0.05, "λ = {}", spec.lambda);
    }

    #[test]
    fn ring_lambda_near_two() {
        // Cycle C_n: λ₂ = 2·cos(2π/n) → 2; rings do not expand.
        // λ₂(C₆₄) = 2·cos(2π/64) ≈ 1.995; power iteration converges slowly
        // because the gap to λ₃ is tiny, so accept anything clearly above the
        // expansion-certification threshold.
        let g = ring(64);
        let spec = estimate_spectrum(&g, 2000, &mut seeded_rng(2));
        assert!(spec.lambda > 1.9, "λ = {}", spec.lambda);
        assert!(certify_expander(&g, 0.5, 2000, &mut seeded_rng(3)).is_none());
    }

    #[test]
    fn random_4_regular_certifies() {
        let g = random_hamiltonian_union(256, 2, &mut seeded_rng(4));
        let cert = certify_expander(&g, 0.5, 400, &mut seeded_rng(5));
        let (alpha, beta, gamma) = cert.expect("random 4-regular should certify");
        assert_eq!(alpha, 0.5);
        assert!(beta > 1.0);
        assert!(gamma > 0.0 && gamma < 0.25);
    }

    #[test]
    fn margulis_certifies() {
        let g = margulis_expander(16);
        // Margulis graphs may be slightly irregular after dedup at small
        // side; only run the spectral path when regular.
        if g.is_regular().is_some() {
            let cert = certify_expander(&g, 0.5, 400, &mut seeded_rng(6));
            assert!(cert.is_some());
        }
    }

    #[test]
    fn tanner_monotone_in_alpha() {
        let spec = Spectrum { degree: 4, lambda: 2.5 };
        let b1 = spec.tanner_beta(0.1);
        let b2 = spec.tanner_beta(0.5);
        assert!(b1 > b2, "{b1} vs {b2}");
    }

    #[test]
    fn gamma_formula() {
        let spec = Spectrum { degree: 4, lambda: 0.0 };
        // β = d²/(d²·α) = 1/α = 2 at α = 0.5 ⇒ γ = 0.5·0.5·(1−0.5) = 0.125.
        assert!((spec.gamma(0.5) - 0.125).abs() < 1e-12);
    }
}
