//! The `unet-serve/3` wire protocol (with `unet-serve/2` and
//! `unet-serve/1` compatibility readers).
//!
//! Newline-delimited JSON over TCP, one request and one response per line,
//! versioned by a mandatory `proto` field. Four request kinds:
//!
//! ```text
//! {"proto":"unet-serve/3","kind":"simulate","guest":"ring:24","host":"torus:3x3",
//!  "steps":3,"seed":7,"deadline_ms":5000,"id":1,"trace":{"id":"00000000c0ffee42"}}
//! {"proto":"unet-serve/3","kind":"batch","items":[{"guest":"ring:24",
//!  "host":"torus:3x3","steps":3,"seed":7}, ...],"deadline_ms":5000,"id":2}
//! {"proto":"unet-serve/3","kind":"analyze","trace_lines":["<jsonl line>", ...],"id":3}
//! {"proto":"unet-serve/3","kind":"metrics","id":4}
//! ```
//!
//! and three response kinds:
//!
//! * `result` — the request succeeded; carries `req` (the request kind),
//!   the echoed `id` if one was sent, and kind-specific payload fields
//!   (`slowdown`, `exposition`, …). A `batch` result carries an `items`
//!   array with one entry per submitted spec, **positionally aligned**:
//!   `{"ok":true, ...payload}` for members that ran, `{"ok":false,
//!   "code":..,"message":..}` for members that failed — one bad spec never
//!   poisons its batchmates;
//! * `error` — carries a machine-readable `code` (`bad-request`,
//!   `bad-spec`, `bad-trace`, `deadline-exceeded`, `sim-error`,
//!   `verify-failed`, `unsupported-protocol`) and a human `message`;
//! * `overloaded` — the admission queue was full; the server rejected the
//!   connection *before* queueing it (explicit backpressure, never
//!   unbounded buffering). Carries the configured `queue_cap` and a
//!   `retry_after_ms` hint derived from queue depth and drain rate.
//!
//! ## Version negotiation
//!
//! The server reads `unet-serve/1`, `/2`, and `/3` requests and stamps
//! each response with the version the request spoke, so a `/1` client
//! keeps seeing well-formed `/1` lines. The `batch` kind is `/2`+. `/3`
//! adds the **trace context**: an optional `"trace":{"id":"<16 hex>"}`
//! object on any request, carrying the distributed trace id assigned at
//! first ingress (client, router, or server — whoever sees the request
//! first calls [`gen_trace_id`]). Because `/1` and `/2` used the `trace`
//! key for the analyze payload, `/3` renames that payload to
//! `trace_lines`; the reader still accepts an *array* under `trace` from
//! older clients (the context is always an object, so the two never
//! collide). Unknown versions get a typed `unsupported-protocol` error,
//! not a hangup. The one asymmetry: `overloaded` is emitted before the
//! request line is read, so it is always stamped with the server-native
//! version — clients of every version parse it (the fields are
//! identical).
//!
//! Graph specifications are the same `family:params` strings the CLI takes
//! everywhere else ([`unet_core::spec::parse_graph`]).

use unet_obs::json::Value;

/// The server-native protocol version every request and response carries.
pub const PROTOCOL: &str = "unet-serve/3";

/// The `/2` protocol version, still accepted by the compatibility reader
/// and echoed back to `/2` clients.
pub const PROTOCOL_V2: &str = "unet-serve/2";

/// The original protocol version, still accepted by the compatibility
/// reader and echoed back to `/1` clients.
pub const PROTOCOL_V1: &str = "unet-serve/1";

/// A protocol version spoken by a request (and echoed by its responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoVersion {
    /// `unet-serve/1` — no `batch` kind, no `retry_after_ms`.
    V1,
    /// `unet-serve/2` — adds `batch` and `retry_after_ms`.
    V2,
    /// `unet-serve/3` — adds the `trace` context and per-stage timings.
    V3,
}

impl ProtoVersion {
    /// The wire string for this version.
    pub fn as_str(self) -> &'static str {
        match self {
            ProtoVersion::V1 => PROTOCOL_V1,
            ProtoVersion::V2 => PROTOCOL_V2,
            ProtoVersion::V3 => PROTOCOL,
        }
    }
}

/// Mint a fresh 16-hex-digit trace id: a process-global counter FNV-mixed
/// with the wall clock, so ids are unique within a process and almost
/// surely unique across the tier without any coordination.
pub fn gen_trace_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in n.to_le_bytes().into_iter().chain(nanos.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The wire form of the trace context: `"trace":{"id":"<trace_id>"}`.
pub fn trace_field(trace_id: &str) -> (String, Value) {
    ("trace".to_string(), Value::Obj(vec![("id".to_string(), Value::Str(trace_id.to_string()))]))
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The `proto` field named a version this server does not speak.
    /// Becomes a typed `unsupported-protocol` error response.
    UnsupportedProto(String),
    /// The line was malformed (bad JSON, missing fields, unknown kind).
    /// Becomes a `bad-request` error response.
    Malformed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnsupportedProto(m) | ParseError::Malformed(m) => write!(f, "{m}"),
        }
    }
}

/// A `simulate` request: run a guest spec on a host spec and certify it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateReq {
    /// Guest graph spec (`family:params`).
    pub guest: String,
    /// Host graph spec (`family:params`).
    pub host: String,
    /// Guest steps to simulate (≥ 1).
    pub steps: u32,
    /// Seed for guest states and route-seed derivation.
    pub seed: u64,
    /// Per-request deadline override in milliseconds (server default
    /// applies when absent).
    pub deadline_ms: Option<u64>,
    /// Client correlation id, echoed in the response.
    pub id: Option<u64>,
}

/// A `batch` request: many simulate specs under one deadline, answered by
/// one positionally-aligned result line.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReq {
    /// Per-item parse outcome: `Ok` specs run, `Err` items become
    /// positional `{"ok":false,...}` entries without touching the rest.
    pub items: Vec<Result<SimulateReq, String>>,
    /// One deadline for the whole batch (server default when absent).
    pub deadline_ms: Option<u64>,
    /// Client correlation id, echoed in the response.
    pub id: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run and certify one simulation.
    Simulate(SimulateReq),
    /// Run many simulations under one deadline (`/2` only).
    Batch(BatchReq),
    /// Aggregate trace lines with the streaming analyzer.
    Analyze {
        /// JSONL trace lines (the `unet trace` format).
        trace: Vec<String>,
        /// Client correlation id.
        id: Option<u64>,
    },
    /// Return the server's live metrics exposition.
    Metrics {
        /// Client correlation id.
        id: Option<u64>,
    },
}

impl Request {
    /// The request kind as it appears on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Simulate(_) => "simulate",
            Request::Batch(_) => "batch",
            Request::Analyze { .. } => "analyze",
            Request::Metrics { .. } => "metrics",
        }
    }

    /// The client correlation id, if one was sent.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Simulate(r) => r.id,
            Request::Batch(b) => b.id,
            Request::Analyze { id, .. } | Request::Metrics { id } => *id,
        }
    }
}

fn parse_simulate_fields(v: &Value, id: Option<u64>) -> Result<SimulateReq, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("simulate needs a string `{name}` field"))
    };
    let steps =
        v.get("steps").and_then(Value::as_u64).ok_or("simulate needs an integer `steps` field")?;
    let steps = u32::try_from(steps).map_err(|_| format!("steps {steps} exceeds u32::MAX"))?;
    Ok(SimulateReq {
        guest: field("guest")?,
        host: field("host")?,
        steps,
        seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
        deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
        id,
    })
}

/// Parse one request line, returning the protocol version it spoke (so
/// the response can be stamped to match) and the trace context's id when
/// the client sent one. [`ParseError::UnsupportedProto`] deserves a typed
/// `unsupported-protocol` response, never a hangup.
pub fn parse_request(line: &str) -> Result<(ProtoVersion, Option<String>, Request), ParseError> {
    let v = unet_obs::json::parse(line).map_err(ParseError::Malformed)?;
    let ver = match v.get("proto").and_then(Value::as_str) {
        Some(PROTOCOL) => ProtoVersion::V3,
        Some(PROTOCOL_V2) => ProtoVersion::V2,
        Some(PROTOCOL_V1) => ProtoVersion::V1,
        Some(other) => {
            return Err(ParseError::UnsupportedProto(format!(
                "unsupported protocol {other:?} (this server speaks {PROTOCOL:?}, \
                 {PROTOCOL_V2:?}, and {PROTOCOL_V1:?})"
            )))
        }
        None => {
            return Err(ParseError::Malformed(format!("missing `proto` field (want {PROTOCOL:?})")))
        }
    };
    // The trace context is always an object; /1 and /2 analyze requests
    // put their JSONL payload under the same key as an *array*, which
    // `Value::get` on a non-object simply misses.
    let trace_id = match v.get("trace") {
        Some(t) if t.as_arr().is_none() => {
            Some(t.get("id").and_then(Value::as_str).map(str::to_string).ok_or_else(|| {
                ParseError::Malformed("`trace` context needs a string `id` field".into())
            })?)
        }
        _ => None,
    };
    let id = v.get("id").and_then(Value::as_u64);
    let req = match v.get("kind").and_then(Value::as_str) {
        Some("simulate") => {
            Request::Simulate(parse_simulate_fields(&v, id).map_err(ParseError::Malformed)?)
        }
        Some("batch") => {
            if ver == ProtoVersion::V1 {
                return Err(ParseError::Malformed(format!(
                    "the `batch` kind needs {PROTOCOL_V2:?} or newer (got {PROTOCOL_V1:?})"
                )));
            }
            let arr = v
                .get("items")
                .and_then(Value::as_arr)
                .ok_or_else(|| ParseError::Malformed("batch needs an `items` array".into()))?;
            if arr.is_empty() {
                return Err(ParseError::Malformed("batch `items` must be non-empty".into()));
            }
            let items = arr
                .iter()
                .map(|item| {
                    let item_id = item.get("id").and_then(Value::as_u64);
                    parse_simulate_fields(item, item_id)
                })
                .collect();
            Request::Batch(BatchReq {
                items,
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                id,
            })
        }
        Some("analyze") => {
            let arr = v
                .get("trace_lines")
                .and_then(Value::as_arr)
                .or_else(|| v.get("trace").and_then(Value::as_arr))
                .ok_or_else(|| {
                    ParseError::Malformed(
                        "analyze needs a `trace_lines` array of JSONL lines \
                         (`trace` in /1 and /2)"
                            .into(),
                    )
                })?;
            let trace = arr
                .iter()
                .map(|l| {
                    l.as_str().map(str::to_string).ok_or_else(|| {
                        ParseError::Malformed(
                            "analyze `trace_lines` entries must all be strings".into(),
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Request::Analyze { trace, id }
        }
        Some("metrics") => Request::Metrics { id },
        Some(other) => {
            return Err(ParseError::Malformed(format!("unknown request kind {other:?}")))
        }
        None => return Err(ParseError::Malformed("missing `kind` field".into())),
    };
    Ok((ver, trace_id, req))
}

fn envelope(ver: ProtoVersion, kind: &str, id: Option<u64>) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("proto".to_string(), Value::Str(ver.as_str().to_string())),
        ("kind".to_string(), Value::Str(kind.to_string())),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    fields
}

/// Build a `result` response line for request kind `req` with the given
/// payload fields, stamped with the version the request spoke.
pub fn result_line(
    ver: ProtoVersion,
    req: &str,
    id: Option<u64>,
    payload: Vec<(String, Value)>,
) -> String {
    let mut fields = envelope(ver, "result", id);
    fields.push(("req".to_string(), Value::Str(req.to_string())));
    fields.extend(payload);
    Value::Obj(fields).to_json()
}

/// Build an `error` response line with a machine-readable `code`, stamped
/// with the version the request spoke.
pub fn error_line(ver: ProtoVersion, code: &str, message: &str, id: Option<u64>) -> String {
    let mut fields = envelope(ver, "error", id);
    fields.push(("code".to_string(), Value::Str(code.to_string())));
    fields.push(("message".to_string(), Value::Str(message.to_string())));
    Value::Obj(fields).to_json()
}

/// One entry of a batch `result`'s `items` array: the member ran and its
/// payload follows, or it failed with a typed code and message.
pub fn batch_item_value(outcome: Result<Vec<(String, Value)>, (String, String)>) -> Value {
    match outcome {
        Ok(payload) => {
            let mut fields = vec![("ok".to_string(), Value::Bool(true))];
            fields.extend(payload);
            Value::Obj(fields)
        }
        Err((code, message)) => Value::Obj(vec![
            ("ok".to_string(), Value::Bool(false)),
            ("code".to_string(), Value::Str(code)),
            ("message".to_string(), Value::Str(message)),
        ]),
    }
}

/// Build the typed backpressure rejection the acceptor sends when the
/// admission queue is full. Emitted before the request line is read, so it
/// is stamped with the server-native version; the fields parse identically
/// under every protocol version.
pub fn overloaded_line(queue_cap: usize, retry_after_ms: u64) -> String {
    let mut fields = envelope(ProtoVersion::V3, "overloaded", None);
    fields.push(("queue_cap".to_string(), Value::UInt(queue_cap as u64)));
    fields.push(("retry_after_ms".to_string(), Value::UInt(retry_after_ms)));
    Value::Obj(fields).to_json()
}

fn simulate_fields(req: &SimulateReq) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("guest".to_string(), Value::Str(req.guest.clone())),
        ("host".to_string(), Value::Str(req.host.clone())),
        ("steps".to_string(), Value::UInt(req.steps as u64)),
        ("seed".to_string(), Value::UInt(req.seed)),
    ];
    if let Some(d) = req.deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::UInt(d)));
    }
    if let Some(id) = req.id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    fields
}

fn request_envelope(kind: &str, trace_id: Option<&str>) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("proto".to_string(), Value::Str(PROTOCOL.to_string())),
        ("kind".to_string(), Value::Str(kind.to_string())),
    ];
    if let Some(t) = trace_id {
        fields.push(trace_field(t));
    }
    fields
}

/// Build a `simulate` request line (the client/loadgen side of
/// [`parse_request`]). Pass a trace id to propagate an existing trace
/// context; `None` lets the server assign one at ingress.
pub fn simulate_request_line(req: &SimulateReq, trace_id: Option<&str>) -> String {
    let mut fields = request_envelope("simulate", trace_id);
    fields.extend(simulate_fields(req));
    Value::Obj(fields).to_json()
}

/// Build a `batch` request line: every spec's fields are inlined as one
/// `items` entry; `deadline_ms`, `id`, and the trace context live on the
/// envelope.
pub fn batch_request_line(
    items: &[SimulateReq],
    deadline_ms: Option<u64>,
    id: Option<u64>,
    trace_id: Option<&str>,
) -> String {
    let mut fields = request_envelope("batch", trace_id);
    fields.push((
        "items".to_string(),
        Value::Arr(items.iter().map(|r| Value::Obj(simulate_fields(r))).collect()),
    ));
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::UInt(d)));
    }
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// Build an `analyze` request line.
pub fn analyze_request_line(trace: &[String], id: Option<u64>, trace_id: Option<&str>) -> String {
    let mut fields = request_envelope("analyze", trace_id);
    fields.push((
        "trace_lines".to_string(),
        Value::Arr(trace.iter().map(|l| Value::Str(l.clone())).collect()),
    ));
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// Build a `metrics` request line.
pub fn metrics_request_line(id: Option<u64>, trace_id: Option<&str>) -> String {
    let mut fields = request_envelope("metrics", trace_id);
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::UInt(id)));
    }
    Value::Obj(fields).to_json()
}

/// A parsed response line, classified by its `kind`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded; payload fields live in the carried object.
    Result(Value),
    /// The request failed with a typed code and message.
    Error {
        /// Machine-readable failure code.
        code: String,
        /// Human-readable description.
        message: String,
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// The admission queue was full; the request was never queued.
    Overloaded {
        /// The server's configured queue bound.
        queue_cap: u64,
        /// Suggested wait before retrying, derived from queue depth and
        /// drain rate (absent in `/1` responses).
        retry_after_ms: Option<u64>,
    },
}

/// Parse one response line. Accepts responses of every protocol version
/// (a retrying client may see a server-native `/3` `overloaded` even when
/// it spoke `/1` or `/2`).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = unet_obs::json::parse(line)?;
    match v.get("proto").and_then(Value::as_str) {
        Some(PROTOCOL) | Some(PROTOCOL_V2) | Some(PROTOCOL_V1) => {}
        _ => {
            return Err(format!(
                "response is not {PROTOCOL:?}, {PROTOCOL_V2:?}, or {PROTOCOL_V1:?}: {line}"
            ))
        }
    }
    match v.get("kind").and_then(Value::as_str) {
        Some("result") => Ok(Response::Result(v)),
        Some("error") => Ok(Response::Error {
            code: v.get("code").and_then(Value::as_str).unwrap_or("unknown").to_string(),
            message: v.get("message").and_then(Value::as_str).unwrap_or("").to_string(),
            id: v.get("id").and_then(Value::as_u64),
        }),
        Some("overloaded") => Ok(Response::Overloaded {
            queue_cap: v.get("queue_cap").and_then(Value::as_u64).unwrap_or(0),
            retry_after_ms: v.get("retry_after_ms").and_then(Value::as_u64),
        }),
        other => Err(format!("unknown response kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_round_trips() {
        let req = SimulateReq {
            guest: "ring:24".into(),
            host: "torus:3x3".into(),
            steps: 3,
            seed: 7,
            deadline_ms: Some(5000),
            id: Some(41),
        };
        let line = simulate_request_line(&req, None);
        assert_eq!(
            parse_request(&line).unwrap(),
            (ProtoVersion::V3, None, Request::Simulate(req.clone()))
        );
        // With a trace context the id comes back alongside the request.
        let traced = simulate_request_line(&req, Some("00000000c0ffee42"));
        assert_eq!(
            parse_request(&traced).unwrap(),
            (ProtoVersion::V3, Some("00000000c0ffee42".into()), Request::Simulate(req))
        );
    }

    #[test]
    fn trace_ids_are_sixteen_hex_and_unique() {
        let a = gen_trace_id();
        let b = gen_trace_id();
        assert_ne!(a, b);
        for t in [&a, &b] {
            assert_eq!(t.len(), 16, "trace id {t:?} is not 16 chars");
            assert!(t.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn malformed_trace_context_is_rejected() {
        let line =
            format!("{{\"proto\":{PROTOCOL:?},\"kind\":\"metrics\",\"trace\":{{\"nope\":1}}}}");
        assert!(
            matches!(parse_request(&line), Err(ParseError::Malformed(m)) if m.contains("trace"))
        );
    }

    #[test]
    fn batch_round_trips_and_isolates_bad_items() {
        let good = SimulateReq {
            guest: "ring:24".into(),
            host: "torus:3x3".into(),
            steps: 3,
            seed: 7,
            deadline_ms: None,
            id: None,
        };
        let line = batch_request_line(&[good.clone(), good.clone()], Some(5000), Some(9), None);
        match parse_request(&line).unwrap() {
            (ProtoVersion::V3, None, Request::Batch(b)) => {
                assert_eq!(b.items, vec![Ok(good.clone()), Ok(good)]);
                assert_eq!(b.deadline_ms, Some(5000));
                assert_eq!(b.id, Some(9));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        // A missing field in one item keeps its batchmates parseable.
        let mixed = format!(
            "{{\"proto\":{PROTOCOL:?},\"kind\":\"batch\",\"items\":[\
             {{\"guest\":\"ring:8\",\"host\":\"torus:2x2\",\"steps\":2}},\
             {{\"guest\":\"ring:8\",\"host\":\"torus:2x2\"}}]}}"
        );
        match parse_request(&mixed).unwrap() {
            (_, _, Request::Batch(b)) => {
                assert!(b.items[0].is_ok());
                assert!(b.items[1].as_ref().unwrap_err().contains("steps"));
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn batch_needs_v2_and_items() {
        let v1 = format!(
            "{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"batch\",\"items\":[\
             {{\"guest\":\"ring:8\",\"host\":\"torus:2x2\",\"steps\":2}}]}}"
        );
        match parse_request(&v1) {
            Err(ParseError::Malformed(m)) => assert!(m.contains("batch")),
            other => panic!("expected malformed, got {other:?}"),
        }
        let empty = format!("{{\"proto\":{PROTOCOL:?},\"kind\":\"batch\",\"items\":[]}}");
        assert!(matches!(parse_request(&empty), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn analyze_and_metrics_round_trip() {
        let trace = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        let line = analyze_request_line(&trace, Some(9), None);
        assert_eq!(
            parse_request(&line).unwrap(),
            (ProtoVersion::V3, None, Request::Analyze { trace, id: Some(9) })
        );
        let line = metrics_request_line(None, None);
        assert_eq!(
            parse_request(&line).unwrap(),
            (ProtoVersion::V3, None, Request::Metrics { id: None })
        );
    }

    #[test]
    fn v2_requests_still_parse_and_echo_v2() {
        // Golden /2 lines, written out verbatim: the compatibility reader
        // must keep accepting yesterday's wire format byte-for-byte.
        let sim = "{\"proto\":\"unet-serve/2\",\"kind\":\"simulate\",\"guest\":\"ring:8\",\
                   \"host\":\"torus:2x2\",\"steps\":2,\"seed\":3,\"id\":11}";
        match parse_request(sim).unwrap() {
            (ProtoVersion::V2, None, Request::Simulate(r)) => {
                assert_eq!(r.guest, "ring:8");
                assert_eq!(r.id, Some(11));
            }
            other => panic!("expected /2 simulate, got {other:?}"),
        }
        // /2 analyze still carries its JSONL payload under `trace` (an
        // array — never mistaken for the /3 trace context object).
        let ana = "{\"proto\":\"unet-serve/2\",\"kind\":\"analyze\",\
                   \"trace\":[\"{\\\"a\\\":1}\"],\"id\":5}";
        match parse_request(ana).unwrap() {
            (ProtoVersion::V2, None, Request::Analyze { trace, id }) => {
                assert_eq!(trace, vec!["{\"a\":1}".to_string()]);
                assert_eq!(id, Some(5));
            }
            other => panic!("expected /2 analyze, got {other:?}"),
        }
        let batch = "{\"proto\":\"unet-serve/2\",\"kind\":\"batch\",\"items\":[\
                     {\"guest\":\"ring:8\",\"host\":\"torus:2x2\",\"steps\":2}]}";
        assert!(matches!(
            parse_request(batch).unwrap(),
            (ProtoVersion::V2, None, Request::Batch(_))
        ));
        let resp = result_line(ProtoVersion::V2, "metrics", Some(5), vec![]);
        assert!(resp.contains(PROTOCOL_V2));
        assert!(parse_response(&resp).is_ok());
    }

    #[test]
    fn v1_requests_still_parse_and_echo_v1() {
        let line = format!("{{\"proto\":{PROTOCOL_V1:?},\"kind\":\"metrics\",\"id\":4}}");
        assert_eq!(
            parse_request(&line).unwrap(),
            (ProtoVersion::V1, None, Request::Metrics { id: Some(4) })
        );
        let resp = result_line(ProtoVersion::V1, "metrics", Some(4), vec![]);
        assert!(resp.contains(PROTOCOL_V1));
        assert!(parse_response(&resp).is_ok());
    }

    #[test]
    fn version_gate_and_errors_are_descriptive() {
        assert!(
            matches!(parse_request("{}"), Err(ParseError::Malformed(m)) if m.contains("proto"))
        );
        match parse_request("{\"proto\":\"unet-serve/0\",\"kind\":\"metrics\"}") {
            Err(ParseError::UnsupportedProto(m)) => assert!(m.contains("unsupported protocol")),
            other => panic!("expected UnsupportedProto, got {other:?}"),
        }
        let nokind = format!("{{\"proto\":{PROTOCOL:?}}}");
        assert!(
            matches!(parse_request(&nokind), Err(ParseError::Malformed(m)) if m.contains("kind"))
        );
        let badkind = format!("{{\"proto\":{PROTOCOL:?},\"kind\":\"frobnicate\"}}");
        assert!(
            matches!(parse_request(&badkind), Err(ParseError::Malformed(m)) if m.contains("frobnicate"))
        );
        let nosteps = format!(
            "{{\"proto\":{PROTOCOL:?},\"kind\":\"simulate\",\"guest\":\"ring:4\",\"host\":\"ring:4\"}}"
        );
        assert!(
            matches!(parse_request(&nosteps), Err(ParseError::Malformed(m)) if m.contains("steps"))
        );
    }

    #[test]
    fn response_lines_classify() {
        let ok = result_line(
            ProtoVersion::V2,
            "simulate",
            Some(3),
            vec![("slowdown".into(), Value::Float(4.5))],
        );
        match parse_response(&ok).unwrap() {
            Response::Result(v) => {
                assert_eq!(v.get("req").and_then(Value::as_str), Some("simulate"));
                assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
                assert_eq!(v.get("slowdown").and_then(Value::as_f64), Some(4.5));
            }
            other => panic!("expected result, got {other:?}"),
        }
        let err = error_line(ProtoVersion::V2, "bad-spec", "unknown graph family \"blah\"", None);
        match parse_response(&err).unwrap() {
            Response::Error { code, message, id } => {
                assert_eq!(code, "bad-spec");
                assert!(message.contains("blah"));
                assert_eq!(id, None);
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(
            parse_response(&overloaded_line(8, 120)).unwrap(),
            Response::Overloaded { queue_cap: 8, retry_after_ms: Some(120) }
        );
    }

    #[test]
    fn batch_items_serialize_both_outcomes() {
        let ok = batch_item_value(Ok(vec![("slowdown".into(), Value::Float(2.0))]));
        assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(ok.get("slowdown").and_then(Value::as_f64), Some(2.0));
        let err = batch_item_value(Err(("bad-spec".into(), "nope".into())));
        assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Value::as_str), Some("bad-spec"));
    }
}
