//! The versioned `BENCH.json` artifact (schema `unet-bench/2`).
//!
//! Schema v1 was four ad-hoc `BENCH_E*.json` files, one unversioned object
//! per experiment, written by copy-pasted code in `bench-json`. Schema v2
//! is one document holding every experiment the registry ran, stamped with
//! the schema id, the git revision, and the registry's base seed, so a
//! committed `BENCH.json` is a *baseline*: `unet bench diff` can parse it
//! back and re-check every claim's expected shape against it (see
//! [`crate::shape`] and [`crate::diff`]). The v1 files had their one
//! deprecation cycle; `BENCH.json` is now the only artifact.
//!
//! Layout:
//!
//! ```json
//! {
//!   "schema": "unet-bench/2",
//!   "git_rev": "d6c9528…",
//!   "seed": 24301,
//!   "quick": false,
//!   "experiments": [
//!     { "id": "E1", "title": "…", "claim": "Thm 2.1: …",
//!       "meta": { "guest": "random-regular n=512 d=4", … },
//!       "rows": [ { "dim": 2, "host_m": 12, "slowdown": 299.6, … }, … ],
//!       "wall_ms_total": 153.2 },
//!     …
//!   ]
//! }
//! ```
//!
//! Every row carries its grid parameters *and* its measurements (slowdown,
//! inefficiency, makespan, sizes, wall time), so a partial file can be
//! resumed: a row whose grid-parameter projection matches is already done.

use unet_obs::json::{parse, Value};

/// The current artifact schema identifier.
pub const SCHEMA: &str = "unet-bench/2";

/// The measured result of one registry experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Experiment id (`E1`, `E2`, `E16`, `E17`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this experiment instantiates (`Thm 2.1: …`).
    pub claim: String,
    /// Experiment-level constants (guest description, grid sizes, …).
    pub meta: Vec<(String, Value)>,
    /// One object per grid point: grid parameters + measurements.
    pub rows: Vec<Value>,
    /// Total wall-clock time of the sweep for this experiment.
    pub wall_ms_total: f64,
}

/// A full `BENCH.json` document: header + per-experiment results.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Schema id; must equal [`SCHEMA`] to be accepted as a baseline.
    pub schema: String,
    /// `git rev-parse --short HEAD` at measurement time (or `unknown`).
    pub git_rev: String,
    /// The registry's base seed (every row derives its own from it).
    pub seed: u64,
    /// Whether the quick (CI-smoke) grid was used.
    pub quick: bool,
    /// Results, in registry order.
    pub experiments: Vec<ExperimentResult>,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl ExperimentResult {
    fn to_value(&self) -> Value {
        obj(vec![
            ("id", Value::Str(self.id.clone())),
            ("title", Value::Str(self.title.clone())),
            ("claim", Value::Str(self.claim.clone())),
            ("meta", Value::Obj(self.meta.clone())),
            ("rows", Value::Arr(self.rows.clone())),
            ("wall_ms_total", Value::Float(self.wall_ms_total)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("experiment missing string field {k:?}"))
        };
        let meta = match v.get("meta") {
            Some(Value::Obj(fields)) => fields.clone(),
            _ => return Err("experiment missing object field \"meta\"".into()),
        };
        let rows = v
            .get("rows")
            .and_then(Value::as_arr)
            .ok_or("experiment missing array field \"rows\"")?
            .to_vec();
        Ok(ExperimentResult {
            id: str_field("id")?,
            title: str_field("title")?,
            claim: str_field("claim")?,
            meta,
            rows,
            wall_ms_total: v.get("wall_ms_total").and_then(Value::as_f64).unwrap_or(0.0),
        })
    }

    /// Find a meta field by name.
    pub fn meta_get(&self, key: &str) -> Option<&Value> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl BenchDoc {
    /// Serialize to the canonical JSON form (one trailing newline).
    pub fn to_json(&self) -> String {
        obj(vec![
            ("schema", Value::Str(self.schema.clone())),
            ("git_rev", Value::Str(self.git_rev.clone())),
            ("seed", Value::UInt(self.seed)),
            ("quick", Value::Bool(self.quick)),
            ("experiments", Value::Arr(self.experiments.iter().map(|e| e.to_value()).collect())),
        ])
        .to_json()
            + "\n"
    }

    /// Parse a `BENCH.json` document, rejecting wrong schema ids with a
    /// pointed message (v1 artifacts have no `schema` field at all).
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("no \"schema\" field — not a v2 artifact (regenerate with `unet bench run`)")?
            .to_owned();
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (this build reads {SCHEMA:?})"));
        }
        let experiments = v
            .get("experiments")
            .and_then(Value::as_arr)
            .ok_or("missing \"experiments\" array")?
            .iter()
            .map(ExperimentResult::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchDoc {
            schema,
            git_rev: v.get("git_rev").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
            seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
            quick: matches!(v.get("quick"), Some(Value::Bool(true))),
            experiments,
        })
    }

    /// Look up an experiment by id.
    pub fn experiment(&self, id: &str) -> Option<&ExperimentResult> {
        self.experiments.iter().find(|e| e.id == id)
    }
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (artifacts must still be writable from an exported tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchDoc {
        BenchDoc {
            schema: SCHEMA.into(),
            git_rev: "abc1234".into(),
            seed: 0x5EED,
            quick: true,
            experiments: vec![ExperimentResult {
                id: "E1".into(),
                title: "Theorem 2.1 upper bound".into(),
                claim: "Thm 2.1: k = Theta(log m)".into(),
                meta: vec![("guest".into(), Value::Str("random-regular n=96 d=4".into()))],
                rows: vec![obj(vec![
                    ("dim", Value::UInt(2)),
                    ("host_m", Value::UInt(12)),
                    ("slowdown", Value::Float(42.5)),
                ])],
                wall_ms_total: 12.5,
            }],
        }
    }

    #[test]
    fn round_trips() {
        let doc = sample();
        let text = doc.to_json();
        let back = BenchDoc::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.experiment("E1").unwrap().rows.len(), 1);
        assert!(back.experiment("E9").is_none());
    }

    #[test]
    fn rejects_v1_and_wrong_schema() {
        // v1 artifacts have no schema field.
        let v1 = r#"{"experiment":"E1","rows":[]}"#;
        let err = BenchDoc::parse(v1).unwrap_err();
        assert!(err.contains("not a v2 artifact"), "{err}");
        let v3 = r#"{"schema":"unet-bench/3","experiments":[]}"#;
        let err = BenchDoc::parse(v3).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
