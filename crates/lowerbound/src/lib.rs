//! # unet-lowerbound — Theorem 3.1, executable
//!
//! The paper's main result — every `n`-universal network of size `m` with
//! slowdown `s` satisfies `m·s = Ω(n·log m)` — is a counting argument over
//! simulation protocols. This crate turns each ingredient into code that
//! runs against *real, certified protocols*:
//!
//! * [`g0`] — the fixed subgraph `G₀` (Definition 3.9): multitorus ∪
//!   certified expander, degree ≤ 12, with its block partition;
//! * [`averaging`] — Lemma 3.12: the large set `Z_S` of critical steps and
//!   light representative roots, verified on traces;
//! * [`wavefront`] — Definition 3.16 / Proposition 3.17: the `e_t(τ)`
//!   wavefront and the expander step inequality;
//! * [`fragments`] — Lemma 3.13 / Proposition 3.14: measured fragment
//!   description lengths against the `r·n·k` budget;
//! * [`counting`] — the numeric Theorem 3.1 chain: `|U[G₀]|` vs `D(k)`,
//!   the solved `k_min(m) = Ω(log m)`, and the full trade-off table;
//! * [`embedding_bound`] — the embeddings-vs-dynamics separation the paper
//!   draws with \[13\]/\[14\], as a counting bound;
//! * [`audit`] — one-call pipeline: simulate a `U[G₀]` guest, certify,
//!   check every lemma on the run.
//!
//! ```
//! use unet_lowerbound::{k_min, CountingParams};
//!
//! // The Theorem 3.1 floor with idealized constants: k + log₂k = log₂ m,
//! // i.e. the inefficiency of any universal host grows like log m.
//! let p = CountingParams::idealized();
//! let k20 = k_min(1 << 20, &p);
//! let k40 = k_min(1 << 40, &p);
//! assert!(k20 > 14.0 && k20 < 20.0);
//! assert!(k40 > k20 + 15.0); // doubling log m nearly doubles k
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod averaging;
pub mod bandwidth;
pub mod counting;
pub mod embedding_bound;
pub mod fragments;
pub mod g0;
pub mod wavefront;

pub use audit::{run_audit, AuditReport};
pub use counting::{k_min, s_min, tradeoff_table, CountingParams, TradeoffRow};
pub use g0::{build_g0, build_g0_for_host, G0};
