//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and `black_box`.
//!
//! It is a plain wall-clock harness, not a statistical one: each benchmark
//! is warmed up, then timed over an adaptively chosen iteration count, and
//! the mean time per iteration is printed. `-- --test` (the mode
//! EXPERIMENTS.md uses to regenerate tables quickly) runs every closure
//! exactly once and skips timing. If `CRITERION_JSON` names a file, one
//! JSON line per benchmark (`{"id": ..., "mean_ns": ..., "iters": ...}`)
//! is appended — the hook `unet-bench`'s artifact runner builds on.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; everything after a
        // bare `--` on the cargo command line is appended verbatim.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, json_path: std::env::var("CRITERION_JSON").ok() }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        run_one(self, &id, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's adaptive timing ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim's adaptive timing ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.c, &full, &mut f);
        self
    }

    /// Benchmark a closure with an explicit input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.c, &full, &mut |b| f(b, input));
        self
    }

    /// End the group (upstream finalizes reports here; the shim prints as
    /// it goes, so this is a no-op that consumes the group).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Identifier distinguished only by `parameter`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    test_mode: bool,
    /// (total elapsed, iterations) of the measured phase.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        // Warm up and estimate a single-shot time.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~200 ms of measurement, between 1 and 10_000 iterations.
        let iters =
            (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((t1.elapsed(), iters));
    }
}

fn run_one(c: &mut Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { test_mode: c.test_mode, measured: None };
    f(&mut b);
    let Some((total, iters)) = b.measured else {
        println!("{id}: benchmark closure never called Bencher::iter");
        return;
    };
    if c.test_mode {
        println!("{id}: ok (test mode, 1 iteration)");
        return;
    }
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!("{id}: mean {} over {iters} iterations", fmt_ns(mean_ns));
    if let Some(path) = &c.json_path {
        let line = format!(
            "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}}}\n",
            id.replace('\\', "\\\\").replace('"', "\\\""),
            mean_ns,
            iters
        );
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()))
        {
            eprintln!("warning: CRITERION_JSON append to {path} failed: {e}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runner callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion { test_mode: false, json_path: None };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { test_mode: true, json_path: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
