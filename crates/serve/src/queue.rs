//! The bounded admission queue behind the server's backpressure.
//!
//! A [`BoundedQueue`] holds at most `cap` items;
//! [`try_push`](BoundedQueue::try_push) never blocks and hands the item back when the
//! queue is full, which is exactly what explicit backpressure needs — the
//! acceptor turns that returned connection into a typed `overloaded`
//! response instead of buffering unboundedly. [`pop`](BoundedQueue::pop)
//! blocks until an item arrives or the queue is closed *and* empty: closing
//! drains, it never discards, so graceful shutdown finishes every admitted
//! item.
//!
//! Built on `Mutex` + `Condvar` only (the vendored crossbeam shim provides
//! scoped threads, not channels).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking multi-producer multi-consumer queue with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` items (`cap == 0` rejects
    /// everything — useful for forcing the overloaded path in tests).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: `Ok(depth_after)` when admitted, `Err(item)` when
    /// the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.closed || st.items.len() >= self.cap {
            return Err(item);
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocking pop: `Some(item)` in admission order, or `None` once the
    /// queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue poisoned");
        }
    }

    /// Stop admitting; wake every blocked consumer. Already queued items
    /// are still handed out (drain semantics).
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn respects_capacity_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "full queue hands the item back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(7), Err(7));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1), "queued items survive the close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![10, 11]);
    }
}
