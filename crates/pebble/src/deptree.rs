//! Constructive dependency trees (Lemma 3.10, Figure 1).
//!
//! For every block torus `T_j` of the multitorus in `G₀` and every root
//! vertex `P_i ∈ T_j`, the dependency graph `Γ_{G₀}` contains a **binary**
//! tree rooted at `(P_i, t − depth)` whose leaves are exactly
//! `T_j × {t}`, of size `O(a²)` where `a` is the block side. The paper
//! sketches the construction ("recursively partition the torus into 4
//! submeshes, connect the centres by paths") and elides the proof; here it is
//! executable and machine-verified.
//!
//! Implementation notes. We root at an arbitrary cell (the block torus is
//! vertex-transitive, so we translate coordinates to put the root at the
//! local origin) and recursively **bisect** rectangles along their longer
//! dimension: the root keeps covering the half it sits in via a lazy edge
//! while a path walks to the far half's corner. Uniform leaf time is achieved
//! by computing each rectangle's exact time requirement [`tree_depth_rect`]
//! and absorbing slack in lazy chains. The resulting depth for an `s × s`
//! block is ≈ `2s` (the paper's prose says "diameter `a`" for its `2a × 2a`
//! blocks, which is off by the usual constant; only `Θ(a)` matters), and the
//! verified size bound is the paper's `48a² = 12·s²`.

use unet_topology::util::FxHashMap;
use unet_topology::{Graph, Node};

/// Sentinel for "no child".
pub const NO_NODE: u32 = u32::MAX;

/// Geometry of one block torus `T_j`: a `side × side` grid of global guest
/// nodes, with torus wrap-around inside the block (as induced by the
/// multitorus of Definition 3.9).
#[derive(Debug, Clone)]
pub struct BlockTorus {
    side: usize,
    /// `cells[x · side + y]` = global node at local `(x, y)`.
    cells: Vec<Node>,
}

impl BlockTorus {
    /// Build from explicit local-grid-to-global mapping.
    ///
    /// # Panics
    /// Panics unless `cells.len() == side²`.
    pub fn new(side: usize, cells: Vec<Node>) -> Self {
        assert_eq!(cells.len(), side * side);
        BlockTorus { side, cells }
    }

    /// Reconstruct the block geometry from a sorted vertex list as produced
    /// by [`unet_topology::generators::blocks`] on an `N × N` grid.
    pub fn from_sorted_block(grid_side: usize, block: &[Node]) -> Self {
        let side = unet_topology::util::isqrt(block.len());
        assert_eq!(side * side, block.len(), "block is not square");
        let first = block[0] as usize;
        let (bx, by) = (first / grid_side, first % grid_side);
        let mut cells = Vec::with_capacity(block.len());
        for x in 0..side {
            for y in 0..side {
                let g = ((bx + x) * grid_side + (by + y)) as Node;
                cells.push(g);
            }
        }
        let mut sorted = cells.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, block, "block vertices are not an aligned square tile");
        BlockTorus { side, cells }
    }

    /// Block side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Global node at local `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> Node {
        self.cells[x * self.side + y]
    }

    /// All global nodes of the block.
    pub fn nodes(&self) -> &[Node] {
        &self.cells
    }

    /// Local coordinates of a global node, if it belongs to this block.
    pub fn local_of(&self, v: Node) -> Option<(usize, usize)> {
        self.cells.iter().position(|&c| c == v).map(|p| (p / self.side, p % self.side))
    }
}

/// One node of a dependency tree: a vertex of `Γ_{G₀}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeNode {
    /// Global guest node.
    pub vertex: Node,
    /// Absolute guest time.
    pub time: u32,
    /// Parent index ([`NO_NODE`] for the root).
    pub parent: u32,
    /// Child indices (binary: at most two, [`NO_NODE`]-padded).
    pub children: [u32; 2],
}

/// A binary dependency tree in `Γ_{G₀}` rooted at `(root, t_end − depth)`
/// with leaves exactly `block × {t_end}` (Lemma 3.10's `T_{i,t}`).
#[derive(Debug, Clone)]
pub struct DepTree {
    /// Tree nodes; index 0 is the root.
    pub nodes: Vec<TreeNode>,
    /// Depth (= time span): root time is `t_end − depth`.
    pub depth: u32,
    /// Leaf time `t` (the guest step whose pebbles the tree covers).
    pub t_end: u32,
}

impl DepTree {
    /// Root tree node.
    pub fn root(&self) -> &TreeNode {
        &self.nodes[0]
    }

    /// Number of nodes (the paper bounds this by `48a²` for `2a`-side
    /// blocks, i.e. `12·side²`).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Indices of the leaves (nodes without children).
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().enumerate().filter(|(_, nd)| nd.children == [NO_NODE; 2]).map(|(i, _)| i)
    }

    /// The `(vertex, time)` pairs the tree touches, with multiplicity — used
    /// for the weight `w_{i,t} = Σ_{(P,t') ∈ T_{i,t}} q_{P,t'}`
    /// (Definition 3.11).
    pub fn gamma_nodes(&self) -> impl Iterator<Item = (Node, u32)> + '_ {
        self.nodes.iter().map(|nd| (nd.vertex, nd.time))
    }

    /// ASCII rendering in the style of the paper's Figure 1: one line per
    /// tree node, indented by depth, annotated with `(vertex, time)`.
    /// `max_lines` truncates the output for large trees.
    pub fn render_ascii(&self, max_lines: usize) -> String {
        let mut out = String::new();
        let mut stack = vec![(0u32, 0usize)];
        let mut lines = 0;
        while let Some((idx, ind)) = stack.pop() {
            if lines >= max_lines {
                out.push_str("…\n");
                break;
            }
            let nd = &self.nodes[idx as usize];
            for _ in 0..ind {
                out.push_str("  ");
            }
            let kind = if nd.children == [NO_NODE; 2] { "leaf" } else { "" };
            out.push_str(&format!("(P{}, t={}) {}\n", nd.vertex, nd.time, kind));
            lines += 1;
            for &c in nd.children.iter().rev() {
                if c != NO_NODE {
                    stack.push((c, ind + 1));
                }
            }
        }
        out
    }
}

/// Exact time requirement of the bisection construction on a `w × h`
/// rectangle (root at a corner): `0` for a cell, else
/// `max(1 + need(A), walk + need(B))` for the two halves.
pub fn tree_depth_rect(w: usize, h: usize) -> u32 {
    fn go(w: usize, h: usize, memo: &mut FxHashMap<(usize, usize), u32>) -> u32 {
        if w == 1 && h == 1 {
            return 0;
        }
        if let Some(&v) = memo.get(&(w, h)) {
            return v;
        }
        let v = if w >= h {
            let w1 = w / 2;
            (1 + go(w1, h, memo)).max(w1 as u32 + go(w - w1, h, memo))
        } else {
            let h1 = h / 2;
            (1 + go(w, h1, memo)).max(h1 as u32 + go(w, h - h1, memo))
        };
        memo.insert((w, h), v);
        v
    }
    go(w, h, &mut FxHashMap::default())
}

/// Depth of the dependency tree for a `side × side` block (`≈ 2·side`).
pub fn tree_depth(side: usize) -> u32 {
    tree_depth_rect(side, side)
}

struct Builder<'a> {
    block: &'a BlockTorus,
    /// Root offset: local recursion coordinates are translated by this so
    /// the tree root sits at recursion origin `(0, 0)`.
    rx: usize,
    ry: usize,
    nodes: Vec<TreeNode>,
}

impl Builder<'_> {
    fn cell(&self, x: usize, y: usize) -> Node {
        let s = self.block.side();
        self.block.at((self.rx + x) % s, (self.ry + y) % s)
    }

    fn add_child(&mut self, parent: u32, vertex: Node, time: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(TreeNode { vertex, time, parent, children: [NO_NODE; 2] });
        if parent != NO_NODE {
            let slots = &mut self.nodes[parent as usize].children;
            let slot = slots
                .iter_mut()
                .find(|s| **s == NO_NODE)
                .expect("binary tree node already has two children");
            *slot = idx;
        }
        idx
    }

    /// Cover rectangle `(x0, y0, w, h)` (recursion-local coordinates) from
    /// the tree node `at` (which sits at `(x0, y0)`), so that every cell
    /// appears as a leaf at exactly `t_end`.
    fn cover(&mut self, x0: usize, y0: usize, w: usize, h: usize, at: u32, t_end: u32) {
        let mut cur = at;
        let tau = self.nodes[at as usize].time;
        let need = tree_depth_rect(w, h);
        debug_assert!(tau + need <= t_end, "insufficient time budget");
        // Absorb slack in a lazy chain at the rectangle root.
        let slack = t_end - tau - need;
        let v = self.nodes[at as usize].vertex;
        for step in 0..slack {
            cur = self.add_child(cur, v, tau + step + 1);
        }
        let tau = tau + slack;
        if w == 1 && h == 1 {
            return; // `cur` is the leaf, at exactly t_end.
        }
        // Bisect along the longer dimension.
        if w >= h {
            let w1 = w / 2;
            // Half A keeps the root: lazy child at τ+1.
            let a_root = self.add_child(cur, self.nodes[cur as usize].vertex, tau + 1);
            self.cover(x0, y0, w1, h, a_root, t_end);
            // Half B: walk x0 → x0+w1 along row y0.
            let mut walker = cur;
            for step in 1..=w1 {
                let vx = self.cell(x0 + step, y0);
                let t = self.nodes[walker as usize].time + 1;
                walker = self.add_child(walker, vx, t);
            }
            self.cover(x0 + w1, y0, w - w1, h, walker, t_end);
        } else {
            let h1 = h / 2;
            let a_root = self.add_child(cur, self.nodes[cur as usize].vertex, tau + 1);
            self.cover(x0, y0, w, h1, a_root, t_end);
            let mut walker = cur;
            for step in 1..=h1 {
                let vy = self.cell(x0, y0 + step);
                let t = self.nodes[walker as usize].time + 1;
                walker = self.add_child(walker, vy, t);
            }
            self.cover(x0, y0 + h1, w, h - h1, walker, t_end);
        }
    }
}

/// Build the dependency tree `T_{root, t_end}` for `block`, rooted at the
/// global guest node `root` at time `t_end − tree_depth(side)`, with leaves
/// `block × {t_end}`.
///
/// # Panics
/// Panics if `root` is not in the block or `t_end < tree_depth(side)`.
pub fn dependency_tree(block: &BlockTorus, root: Node, t_end: u32) -> DepTree {
    let (rx, ry) = block.local_of(root).expect("root vertex must belong to the block");
    let depth = tree_depth(block.side());
    assert!(t_end >= depth, "t_end = {t_end} below tree depth {depth}");
    let mut b = Builder { block, rx, ry, nodes: Vec::new() };
    let root_idx = b.add_child(NO_NODE, root, t_end - depth);
    b.cover(0, 0, block.side(), block.side(), root_idx, t_end);
    DepTree { nodes: b.nodes, depth, t_end }
}

/// Machine-check every claim of Lemma 3.10 for a constructed tree against
/// the actual `G₀` graph:
/// 1. the root is `(root, t_end − depth)`;
/// 2. every edge advances time by one and is lazy or a `G₀` edge
///    (i.e. the tree lives inside `Γ_{G₀}`);
/// 3. outdegree ≤ 2 (binary);
/// 4. the leaves are **exactly** `block × {t_end}`, each cell once;
/// 5. size ≤ `12 · side²` (the paper's `48a²` with `side = 2a`).
pub fn verify_tree(tree: &DepTree, g0: &Graph, block: &BlockTorus) -> Result<(), String> {
    let root = tree.root();
    if root.time != tree.t_end - tree.depth {
        return Err(format!("root time {} ≠ t_end − depth", root.time));
    }
    for (idx, nd) in tree.nodes.iter().enumerate() {
        if nd.parent != NO_NODE {
            let p = &tree.nodes[nd.parent as usize];
            if nd.time != p.time + 1 {
                return Err(format!("node {idx}: time {} not parent time + 1", nd.time));
            }
            if nd.vertex != p.vertex && !g0.has_edge(nd.vertex, p.vertex) {
                return Err(format!(
                    "node {idx}: edge ({}, {}) not in G0 and not lazy",
                    p.vertex, nd.vertex
                ));
            }
        }
    }
    let mut seen = vec![false; block.nodes().len()];
    let mut leaf_count = 0usize;
    for li in tree.leaves() {
        let nd = &tree.nodes[li];
        if nd.time != tree.t_end {
            return Err(format!("leaf {li} at time {} ≠ t_end {}", nd.time, tree.t_end));
        }
        let (x, y) = block
            .local_of(nd.vertex)
            .ok_or_else(|| format!("leaf vertex {} outside block", nd.vertex))?;
        let pos = x * block.side() + y;
        if seen[pos] {
            return Err(format!("cell ({x}, {y}) covered by two leaves"));
        }
        seen[pos] = true;
        leaf_count += 1;
    }
    if leaf_count != block.nodes().len() {
        return Err(format!("covered {leaf_count} of {} cells", block.nodes().len()));
    }
    let bound = 12 * block.side() * block.side();
    if tree.size() > bound {
        return Err(format!("size {} exceeds 12·side² = {bound}", tree.size()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{blocks, multitorus, torus_side};

    fn block_setup(a: usize, n: usize) -> (Graph, Vec<BlockTorus>) {
        let g0 = multitorus(a, n);
        let grid = torus_side(n);
        let bts = blocks(a, n).iter().map(|b| BlockTorus::from_sorted_block(grid, b)).collect();
        (g0, bts)
    }

    #[test]
    fn depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 2); // split: max(1+need(1,2), 1+need(1,2)); need(1,2)=1
                                      // Depth grows ≈ 2·side.
        for side in 2..20 {
            let d = tree_depth(side);
            assert!(d as usize >= side && d as usize <= 3 * side, "side {side}: depth {d}");
        }
    }

    #[test]
    fn tree_on_4x4_block_verifies() {
        let (g0, bts) = block_setup(4, 64);
        for bt in &bts {
            for &root in bt.nodes() {
                let depth = tree_depth(4);
                let tree = dependency_tree(bt, root, depth + 3);
                verify_tree(&tree, &g0, bt).expect("Lemma 3.10 invariants");
                assert_eq!(tree.leaves().count(), 16);
            }
        }
    }

    #[test]
    fn tree_sizes_meet_paper_bound() {
        // The paper's bound is 48a² for side 2a, i.e. 12·side². Check a
        // range of block sides on a matching multitorus.
        for (a, n) in [(2usize, 16usize), (4, 64), (8, 256), (16, 1024)] {
            let (g0, bts) = block_setup(a, n);
            let bt = &bts[0];
            let root = bt.at(a / 2, a / 2);
            let tree = dependency_tree(bt, root, tree_depth(a));
            verify_tree(&tree, &g0, bt).unwrap();
            assert!(tree.size() <= 12 * a * a, "side {a}: size {} > {}", tree.size(), 12 * a * a);
        }
    }

    #[test]
    fn padding_respected_with_large_t_end() {
        let (g0, bts) = block_setup(4, 64);
        let bt = &bts[1];
        let tree = dependency_tree(bt, bt.at(0, 0), 40);
        verify_tree(&tree, &g0, bt).unwrap();
        assert_eq!(tree.root().time, 40 - tree.depth);
    }

    #[test]
    #[should_panic(expected = "below tree depth")]
    fn insufficient_time_rejected() {
        let (_, bts) = block_setup(4, 64);
        dependency_tree(&bts[0], bts[0].at(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "must belong")]
    fn foreign_root_rejected() {
        let (_, bts) = block_setup(4, 64);
        // Block 0 occupies rows 0..4, cols 0..4 of the 8×8 grid; node 63 is
        // in the last block.
        dependency_tree(&bts[0], 63, 20);
    }

    #[test]
    fn single_cell_block() {
        let bt = BlockTorus::new(1, vec![7]);
        let g0 = unet_topology::GraphBuilder::new(8).build();
        // Depth of a single cell is 0: the tree is the leaf itself.
        let tree = dependency_tree(&bt, 7, 5);
        verify_tree(&tree, &g0, &bt).unwrap();
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.root().time, 5);
        assert_eq!(tree.leaves().count(), 1);
    }

    #[test]
    fn ascii_render_mentions_root_and_leaf() {
        let (_, bts) = block_setup(2, 16);
        let tree = dependency_tree(&bts[0], bts[0].at(0, 0), tree_depth(2));
        let txt = tree.render_ascii(100);
        assert!(txt.contains("t=0"));
        assert!(txt.contains("leaf"));
        // 2×2 block ⇒ 4 leaves.
        assert_eq!(txt.matches("leaf").count(), 4);
    }

    #[test]
    fn verify_tree_rejects_corruption() {
        let (g0, bts) = block_setup(4, 64);
        let bt = &bts[0];
        let good = dependency_tree(bt, bt.at(1, 1), tree_depth(4) + 1);
        verify_tree(&good, &g0, bt).unwrap();

        // 1. Corrupt a leaf's time.
        let mut t1 = good.clone();
        let leaf = t1.leaves().next().unwrap();
        t1.nodes[leaf].time += 1;
        assert!(verify_tree(&t1, &g0, bt).unwrap_err().contains("time"));

        // 2. Teleport a node to a non-adjacent vertex.
        let mut t2 = good.clone();
        let mid = t2.nodes.len() / 2;
        // Node 63 is in the far block — never adjacent in G0's block 0 tree.
        t2.nodes[mid].vertex = 63;
        assert!(verify_tree(&t2, &g0, bt).is_err());

        // 3. Duplicate-coverage: point one leaf at another leaf's cell.
        let mut t3 = good.clone();
        let leaves: Vec<usize> = t3.leaves().collect();
        t3.nodes[leaves[0]].vertex = t3.nodes[leaves[1]].vertex;
        let err = verify_tree(&t3, &g0, bt).unwrap_err();
        assert!(err.contains("two leaves") || err.contains("not in G0"), "{err}");
    }

    #[test]
    fn block_geometry_roundtrip() {
        let grid = 8;
        let bl = blocks(4, 64);
        let bt = BlockTorus::from_sorted_block(grid, &bl[3]);
        assert_eq!(bt.side(), 4);
        for x in 0..4 {
            for y in 0..4 {
                let g = bt.at(x, y);
                assert_eq!(bt.local_of(g), Some((x, y)));
            }
        }
        assert_eq!(bt.local_of(0), None);
    }
}
