//! Integration tests for the `unet` CLI binary.

use std::process::Command;

fn unet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_unet")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn topo_reports_graph_facts() {
    let (ok, stdout, _) = unet(&["topo", "torus:4x4"]);
    assert!(ok);
    assert!(stdout.contains("nodes:      16"));
    assert!(stdout.contains("regular:    Some(4)"));
    assert!(stdout.contains("diameter:   4"));
}

#[test]
fn simulate_save_check_roundtrip() {
    let dir = std::env::temp_dir().join("unet-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let proto = dir.join("p.unetproto");
    let proto_s = proto.to_str().unwrap();
    let (ok, stdout, stderr) = unet(&["simulate", "ring:32", "torus:2x2", "2", "--save", proto_s]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("protocol certified"));
    assert!(proto.exists());
    // Re-check the saved artifact.
    let (ok2, stdout2, stderr2) = unet(&["check", "ring:32", "torus:2x2", proto_s]);
    assert!(ok2, "stderr: {stderr2}");
    assert!(stdout2.contains("OK: valid protocol"));
    // Checking against the wrong guest must fail.
    let (ok3, _, stderr3) = unet(&["check", "ring:16", "torus:2x2", proto_s]);
    assert!(!ok3);
    let _ = stderr3;
}

#[test]
fn simulate_threads_and_no_cache_flags() {
    let (ok, stdout, stderr) =
        unet(&["sim", "ring:32", "torus:2x2", "3", "--threads", "2", "--no-cache"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("route-plan cache: 0 hits / 0 misses   (2 threads)"), "{stdout}");
    assert!(stdout.contains("protocol certified"));
}

#[test]
fn simulate_reports_cache_hits() {
    let (ok, stdout, stderr) = unet(&["simulate", "ring:32", "torus:2x2", "3", "--threads", "1"]);
    assert!(ok, "stderr: {stderr}");
    // 3 guest steps with comm phases at gt = 2, 3: one miss then one replay.
    assert!(stdout.contains("route-plan cache: 1 hits / 1 misses   (1 threads)"), "{stdout}");
}

#[test]
fn simulate_zero_steps_is_a_graceful_error() {
    let (ok, _, stderr) = unet(&["simulate", "ring:32", "torus:2x2", "0"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("at least one guest step"), "{stderr}");
    // A graceful SimError, not a panic.
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn tradeoff_prints_table() {
    let (ok, stdout, _) = unet(&["tradeoff", "1024"]);
    assert!(ok);
    assert!(stdout.contains("k_ideal"));
    // Rows for m = 8 .. 1024.
    assert!(stdout.lines().count() >= 8);
}

#[test]
fn route_reports_stats() {
    let (ok, stdout, _) = unet(&["route", "torus:4x4", "2", "--trials", "2"]);
    assert!(ok);
    assert!(stdout.contains("route_M(2)"));
}

#[test]
fn bench_diff_passes_honest_baseline_and_fails_bent_curve() {
    use universal_networks::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join("unet-cli-bench-diff");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("BENCH.json");
    let baseline_s = baseline.to_str().unwrap();

    // Produce a quick-grid baseline for E1 only.
    let (ok, stdout, stderr) =
        unet(&["bench", "run", "--quick", "--filter", "e1", "--out", baseline_s]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("E1"), "{stdout}");
    assert!(baseline.exists());

    // The honest baseline must pass the gate.
    let (ok2, stdout2, stderr2) = unet(&["bench", "diff", baseline_s, "--filter", "e1"]);
    assert!(ok2, "stdout: {stdout2}\nstderr: {stderr2}");
    assert!(stdout2.contains("all claim shapes hold"), "{stdout2}");

    // Bend E1's inefficiency curve below the Theorem 3.1 floor and the
    // gate must exit nonzero, naming the broken shape.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let mut doc = parse(&text).expect("baseline parses");
    {
        let exps = match &mut doc {
            Value::Obj(fields) => fields
                .iter_mut()
                .find(|(k, _)| k == "experiments")
                .map(|(_, v)| v)
                .expect("has experiments"),
            _ => panic!("baseline is not an object"),
        };
        let rows = match exps {
            Value::Arr(items) => match &mut items[0] {
                Value::Obj(fields) => {
                    fields.iter_mut().find(|(k, _)| k == "rows").map(|(_, v)| v).expect("has rows")
                }
                _ => panic!("experiment is not an object"),
            },
            _ => panic!("experiments is not an array"),
        };
        if let Value::Arr(items) = rows {
            for row in items {
                if let Value::Obj(fields) = row {
                    for (k, v) in fields.iter_mut() {
                        if k == "inefficiency" {
                            *v = Value::Float(0.01);
                        }
                    }
                }
            }
        }
    }
    let bent = dir.join("BENCH-bent.json");
    let bent_s = bent.to_str().unwrap();
    std::fs::write(&bent, doc.to_json()).unwrap();

    let (ok3, stdout3, _) = unet(&["bench", "diff", bent_s, "--filter", "e1"]);
    assert!(!ok3, "bent baseline must fail the gate: {stdout3}");
    assert!(stdout3.contains("FAIL"), "{stdout3}");
    assert!(stdout3.contains("inefficiency"), "{stdout3}");
}

#[test]
fn trace_quick_analyze_metrics_pipeline() {
    let dir = std::env::temp_dir().join("unet-cli-analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("quick.jsonl");
    let trace_s = trace.to_str().unwrap();

    let (ok, _, stderr) = unet(&["trace", "--quick", "--out", trace_s]);
    assert!(ok, "stderr: {stderr}");
    assert!(trace.exists());

    // The streaming analyzer surfaces congestion, queue percentiles, and
    // the critical path, deterministically for the fixed default seed.
    let (ok2, stdout2, stderr2) = unet(&["analyze", trace_s]);
    assert!(ok2, "stderr: {stderr2}");
    for section in ["Summary", "Congestion", "Queue depth", "Critical path"] {
        assert!(stdout2.contains(section), "missing {section:?} in:\n{stdout2}");
    }
    assert!(stdout2.contains("sim.edge_util"), "{stdout2}");
    let (ok2b, again, _) = unet(&["analyze", trace_s]);
    assert!(ok2b);
    assert_eq!(stdout2, again, "analysis must be deterministic");

    // Markdown mode swaps the section headers.
    let (ok3, stdout3, _) = unet(&["analyze", trace_s, "--markdown"]);
    assert!(ok3);
    assert!(stdout3.contains("## Congestion"), "{stdout3}");

    // The metrics exposition is Prometheus-shaped.
    let (ok4, stdout4, stderr4) = unet(&["metrics", trace_s]);
    assert!(ok4, "stderr: {stderr4}");
    assert!(stdout4.contains("# TYPE unet_"), "{stdout4}");
    assert!(stdout4.contains("unet_sim_cache_hits"), "{stdout4}");
}

#[test]
fn analyze_and_report_fail_on_malformed_lines_with_line_numbers() {
    let dir = std::env::temp_dir().join("unet-cli-analyze-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("quick.jsonl");
    let trace_s = trace.to_str().unwrap();
    let (ok, _, _) = unet(&["trace", "--quick", "--out", trace_s]);
    assert!(ok);

    // Truncate the last line mid-record, as a crashed writer would.
    let text = std::fs::read_to_string(&trace).unwrap();
    let truncated: String = text.trim_end().to_string();
    let cut = truncated.len() - 10;
    let bad = dir.join("truncated.jsonl");
    let bad_s = bad.to_str().unwrap();
    std::fs::write(&bad, &truncated[..cut]).unwrap();
    let bad_lineno = format!("line {}", truncated.lines().count());

    for cmd in ["analyze", "report"] {
        let (ok, _, stderr) = unet(&[cmd, bad_s]);
        assert!(!ok, "{cmd} must exit nonzero on a truncated trace");
        assert!(stderr.contains(&bad_lineno), "{cmd} must name the bad line: {stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
    let (ok_m, _, stderr_m) = unet(&["metrics", bad_s]);
    assert!(!ok_m, "metrics must exit nonzero on a truncated trace");
    assert!(stderr_m.contains(&bad_lineno), "{stderr_m}");
}

#[test]
fn metrics_live_run_exposes_phase_timings() {
    let (ok, stdout, stderr) = unet(&["metrics", "ring:24", "torus:3x3", "3"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("unet_phase_seconds_total"), "{stdout}");
    assert!(stdout.contains("unet_sim_guest_steps 3"), "{stdout}");
}

#[test]
fn bench_diff_rejects_missing_baseline_file() {
    let (ok, _, stderr) = unet(&["bench", "diff", "/nonexistent/BENCH.json"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn unparsable_unet_threads_warns_on_stderr_naming_the_value() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_unet"))
            .args(["bench", "list"])
            .env("UNET_THREADS", threads)
            .output()
            .expect("binary runs");
        (out.status.success(), String::from_utf8_lossy(&out.stderr).into_owned())
    };
    // A typo'd override warns once, naming the bad value, and still runs.
    let (ok, stderr) = run("lots");
    assert!(ok, "fallback keeps the command working: {stderr}");
    assert!(stderr.contains("UNET_THREADS=\"lots\""), "must name the bad value: {stderr}");
    assert_eq!(stderr.matches("UNET_THREADS").count(), 1, "warn once per process: {stderr}");
    // A valid override and the documented zero-means-unset stay silent.
    for quiet in ["3", "0"] {
        let (ok, stderr) = run(quiet);
        assert!(ok);
        assert!(!stderr.contains("UNET_THREADS"), "{quiet:?} must not warn: {stderr}");
    }
}

#[test]
fn serve_request_round_trip_and_graceful_drain() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::Stdio;

    let mut server = Command::new(env!("CARGO_BIN_EXE_unet"))
        .args(["serve", "--workers", "2", "--queue", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner");
    assert!(banner.starts_with("unet-serve/3 listening on "), "{banner}");
    let addr = banner.trim().rsplit(' ').next().unwrap().to_string();

    let (ok, stdout1, stderr1) =
        unet(&["request", &addr, "simulate", "ring:24", "torus:3x3", "3", "--seed", "5"]);
    assert!(ok, "stderr: {stderr1}");
    assert!(stdout1.contains("\"verified\":true"), "{stdout1}");
    // A batch ride: two items, one round trip, per-item payloads.
    let (okb, stdoutb, stderrb) =
        unet(&["request", &addr, "batch", "ring:24,torus:3x3,3,5", "ring:12,torus:2x2,2"]);
    assert!(okb, "stderr: {stderrb}");
    assert_eq!(stdoutb.matches("\"ok\":true").count(), 2, "{stdoutb}");
    let (ok2, stdout2, _) = unet(&["request", &addr, "metrics"]);
    assert!(ok2);
    assert!(stdout2.contains("# TYPE unet_serve_conns_admitted counter"), "{stdout2}");

    // Closing stdin triggers the graceful drain: exit 0, final exposition
    // on stdout, stats line on stderr.
    drop(server.stdin.take());
    let out = server.wait_with_output().expect("server exits");
    assert!(out.status.success(), "drain must exit 0");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("unet_serve_requests_completed 3"), "{rest}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drained: 3 conns admitted"), "{stderr}");
}

#[test]
fn request_raw_surfaces_typed_overloaded_with_exit_zero() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    // --queue 0 rejects every connection with the typed response.
    let mut server = Command::new(env!("CARGO_BIN_EXE_unet"))
        .args(["serve", "--workers", "1", "--queue", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner");
    let addr = banner.trim().rsplit(' ').next().unwrap().to_string();

    // --raw passes the wire response through verbatim and exits 0 so
    // scripts can grep the kind themselves.
    let (ok, stdout_raw, _) = unet(&["request", &addr, "metrics", "--raw"]);
    assert!(ok, "--raw never maps responses to exit codes");
    assert!(stdout_raw.contains("\"kind\":\"overloaded\""), "{stdout_raw}");
    // Without --raw, overload is a hard error naming the queue bound.
    let (ok2, _, stderr2) = unet(&["request", &addr, "metrics"]);
    assert!(!ok2);
    assert!(stderr2.contains("overloaded"), "{stderr2}");
    assert!(stderr2.contains("queue cap 0"), "{stderr2}");

    drop(server.stdin.take());
    assert!(server.wait().expect("server exits").success());
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = unet(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (ok2, _, stderr2) = unet(&["topo", "nosuch:3"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown graph family"));
}
