//! E5 — Proposition 3.17: the generating-pebble wavefront.
//!
//! The synchronous Theorem 2.1 engine produces step-function wavefronts
//! (whole levels complete at once), so this experiment uses the
//! **asynchronous** simulator (the generality the paper's model explicitly
//! allows): depth-first scheduling pushes single guests as deep as their
//! influence cones permit, and `e_t(τ)` becomes a gradual curve whose
//! per-level thresholds `τ_j` are separated by the expansion-driven gaps of
//! Lemma 3.15. Both schedules are printed side by side.

use criterion::{criterion_group, criterion_main, Criterion};
use unet_bench::lowerbound_fixture;
use unet_core::async_sim::{AsyncSimulator, SchedulePolicy};
use unet_core::prelude::*;
use unet_lowerbound::wavefront::{audit, e_curve, existence_times, tau_threshold};
use unet_topology::generators::{complete, random_supergraph};
use unet_topology::util::seeded_rng;

fn async_trace(policy: SchedulePolicy) -> (unet_topology::Graph, unet_pebble::Trace, f64, f64) {
    let mut r = seeded_rng(55);
    let g0 = unet_lowerbound::build_g0(144, 1, &mut r);
    let guest = random_supergraph(&g0.graph, 12, &mut r);
    let comp = GuestComputation::random(guest.clone(), 56);
    let host = complete(8);
    let sim = AsyncSimulator { embedding: Embedding::block(144, 8), policy };
    let run = sim.simulate(&comp, &host, 8, &mut r);
    let trace = unet_pebble::check(&guest, &host, &run.protocol).expect("certifies");
    (guest, trace, g0.alpha, g0.beta)
}

fn regenerate_table() {
    println!("\n=== E5: wavefront e_t(τ) — asynchronous simulation (n = 144, T = 8) ===");
    for (name, policy) in
        [("random", SchedulePolicy::Random), ("deepest-first", SchedulePolicy::DeepestFirst)]
    {
        let (guest, trace, alpha, beta) = async_trace(policy);
        let ex = existence_times(&trace);
        let n = trace.guest_n;
        let threshold = (alpha * n as f64).ceil() as usize;
        print!("{name:>14}: τ_j @ α·n = {threshold}:");
        let mut prev = 0;
        for t in 1..=trace.guest_t {
            let tau = tau_threshold(&ex, t, threshold).expect("reached");
            print!(" {tau}(+{})", tau - prev);
            prev = tau;
        }
        println!();
        // Sampled curve for level 3.
        let tp = trace.host_steps as u32;
        let curve = e_curve(&ex, 3, tp);
        let samples: Vec<usize> = (0..=12).map(|i| curve[i * (tp as usize) / 12]).collect();
        println!("{:>14}  e_3(τ) sampled: {samples:?}", "");
        let w = audit(&guest, &trace, alpha, beta);
        println!(
            "{:>14}  monotone: {}, expansion holds: {}, min τ-gap: {:?}",
            "", w.monotone, w.expansion_ok, w.min_gap
        );
    }
    println!("gradual curves + ordered thresholds = the Prop 3.17 mechanics on live protocols.");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let f = lowerbound_fixture();
    let mut group = c.benchmark_group("e5_wavefront");
    group.sample_size(20);
    group.bench_function("existence_times", |b| b.iter(|| existence_times(&f.trace)));
    group.bench_function("full_audit", |b| {
        b.iter(|| audit(&f.guest, &f.trace, f.g0.alpha, f.g0.beta))
    });
    group.bench_function("async_simulate_n144", |b| {
        b.iter(|| async_trace(SchedulePolicy::Random).1.host_steps)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
