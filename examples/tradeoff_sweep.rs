//! Experiments E1 + E2: the size/slowdown trade-off, measured and predicted.
//!
//! For a fixed guest size `n`, sweep the host size `m ≤ n` over butterfly
//! hosts and print, per `m`: the load bound `n/m`, the measured slowdown of
//! the Theorem 2.1 simulation (Valiant-routed), the upper-bound shape
//! `(n/m)·log m`, the lower-bound shape from the Theorem 3.1 counting chain,
//! and the trade-off product `m·s`.
//!
//! Expected shape (the paper's result): measured/(n/m) ≈ Θ(log m), so the
//! product `m·s` stays ≈ `n·log m` — neither bound is beaten.
//!
//! Run with: `cargo run --release --example tradeoff_sweep`

use universal_networks::core::prelude::*;
use universal_networks::lowerbound::{k_min, CountingParams};
use universal_networks::topology::generators::{butterfly, random_regular};
use universal_networks::topology::par::{default_threads, par_map};
use universal_networks::topology::util::seeded_rng;

fn main() {
    let n = 4096;
    let steps = 4;
    let mut rng = seeded_rng(7);
    let guest = random_regular(n, 4, &mut rng);
    let comp = GuestComputation::random(guest.clone(), 11);
    let shape = CountingParams::shape(0.125);

    println!("guest: random 4-regular, n = {n}, T = {steps}");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "m", "load", "measured", "k=s*m/n", "upper", "lower-k", "m*s"
    );
    // One simulation per host size, run in parallel (crossbeam scoped
    // threads; each worker gets its own deterministic RNG).
    let dims: Vec<usize> = (2..=7).collect();
    let rows = par_map(&dims, default_threads(), |&dim| {
        let host = butterfly(dim);
        let m = host.n();
        let router = presets::butterfly_valiant(dim);
        let sim = EmbeddingSimulator {
            embedding: Embedding::block(n, m),
            router: &router,
        };
        let mut local_rng = seeded_rng(7000 + dim as u64);
        let run = sim.simulate(&comp, &host, steps, &mut local_rng);
        let verified = verify_run(&comp, &host, &run, steps).expect("certifies");
        (m, verified.metrics.slowdown)
    });
    for (m, s) in rows {
        let load = bounds::load_bound(n, m);
        println!(
            "{m:>6} {load:>8.1} {s:>10.1} {:>10.2} {:>10.1} {:>10.2} {:>12.0}",
            s * m as f64 / n as f64,
            bounds::upper_bound_butterfly(n, m),
            k_min(m as u64, &shape),
            m as f64 * s,
        );
    }
    println!("\ncolumns: k = s·m/n grows affinely in log m — the Θ(log m) inefficiency");
    println!("of Theorems 2.1 + 3.1; lower-k = the counting-chain floor (shape constants).");
}
