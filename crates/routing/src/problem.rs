//! `h–h` routing problems (Section 2).
//!
//! An `h–h` routing problem gives every node at most `h` packets to send and
//! makes every node the destination of at most `h` packets. `route_G(h)` —
//! the worst-case time to solve such problems on `G` — is the quantity
//! Theorem 2.1 turns into a universal-simulation slowdown.

use rand::seq::SliceRandom;
use rand::Rng;
use unet_topology::{Graph, Node};

/// A routing problem on `m` nodes: a list of `(src, dst)` packet pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingProblem {
    /// Number of network nodes.
    pub m: usize,
    /// The packets.
    pub pairs: Vec<(Node, Node)>,
}

impl RoutingProblem {
    /// Construct and validate node ranges.
    pub fn new(m: usize, pairs: Vec<(Node, Node)>) -> Self {
        assert!(
            pairs.iter().all(|&(s, d)| (s as usize) < m && (d as usize) < m),
            "packet endpoint out of range"
        );
        RoutingProblem { m, pairs }
    }

    /// The smallest `h` such that this is an `h–h` problem: the max over
    /// nodes of packets originating or terminating there.
    pub fn h(&self) -> usize {
        let mut out = vec![0usize; self.m];
        let mut inc = vec![0usize; self.m];
        for &(s, d) in &self.pairs {
            out[s as usize] += 1;
            inc[d as usize] += 1;
        }
        out.into_iter().chain(inc).max().unwrap_or(0)
    }

    /// Whether the problem is a (partial) permutation: `h() ≤ 1`.
    pub fn is_permutation(&self) -> bool {
        self.h() <= 1
    }
}

/// A full random permutation routing problem (`1–1`).
pub fn random_permutation<R: Rng>(m: usize, rng: &mut R) -> RoutingProblem {
    let mut dsts: Vec<Node> = (0..m as Node).collect();
    dsts.shuffle(rng);
    RoutingProblem::new(m, (0..m as Node).map(|s| (s, dsts[s as usize])).collect())
}

/// A random `h–h` problem built as the union of `h` independent random
/// permutations — every node sends exactly `h` and receives exactly `h`.
pub fn random_h_h<R: Rng>(m: usize, h: usize, rng: &mut R) -> RoutingProblem {
    let mut pairs = Vec::with_capacity(m * h);
    for _ in 0..h {
        pairs.extend(random_permutation(m, rng).pairs);
    }
    RoutingProblem::new(m, pairs)
}

/// The transpose permutation on a `√m × √m` grid id space: `(x, y) ↦ (y, x)`.
/// A classic adversarial pattern for meshes.
pub fn transpose(m: usize) -> RoutingProblem {
    let side = unet_topology::util::isqrt(m);
    assert_eq!(side * side, m, "transpose needs a square node count");
    let pairs = (0..m)
        .map(|v| {
            let (x, y) = (v / side, v % side);
            (v as Node, (y * side + x) as Node)
        })
        .collect();
    RoutingProblem::new(m, pairs)
}

/// Bit-reversal permutation on `m = 2^k` nodes — the classic adversarial
/// pattern for greedy butterfly routing.
pub fn bit_reversal(m: usize) -> RoutingProblem {
    assert!(m.is_power_of_two());
    let k = m.trailing_zeros();
    let pairs =
        (0..m as u32).map(|v| (v as Node, (v.reverse_bits() >> (32 - k)) as Node)).collect();
    RoutingProblem::new(m, pairs)
}

/// The `⌈n/m⌉–⌈n/m⌉` problem a guest step induces under an embedding
/// `f : [n] → [m]` (proof of Theorem 2.1): one packet `f(P) → f(P')` per
/// directed guest edge, dropping host-local pairs.
pub fn guest_induced(guest: &Graph, f: &[Node], m: usize) -> RoutingProblem {
    assert_eq!(f.len(), guest.n());
    let mut pairs = Vec::new();
    for u in 0..guest.n() as Node {
        for &v in guest.neighbors(u) {
            let (s, d) = (f[u as usize], f[v as usize]);
            if s != d {
                pairs.push((s, d));
            }
        }
    }
    RoutingProblem::new(m, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::ring;
    use unet_topology::util::seeded_rng;

    #[test]
    fn random_permutation_is_1_1() {
        let p = random_permutation(16, &mut seeded_rng(1));
        assert_eq!(p.h(), 1);
        assert!(p.is_permutation());
        assert_eq!(p.pairs.len(), 16);
    }

    #[test]
    fn random_h_h_has_exact_h() {
        let p = random_h_h(16, 4, &mut seeded_rng(2));
        assert_eq!(p.h(), 4);
        assert_eq!(p.pairs.len(), 64);
    }

    #[test]
    fn transpose_is_permutation() {
        let p = transpose(16);
        assert!(p.is_permutation());
        // (1,2) → (2,1): node 6 → node 9 on a 4×4 grid.
        assert!(p.pairs.contains(&(6, 9)));
        // Diagonal fixed points map to themselves.
        assert!(p.pairs.contains(&(5, 5)));
    }

    #[test]
    fn bit_reversal_is_involution() {
        let p = bit_reversal(16);
        assert!(p.is_permutation());
        for &(s, d) in &p.pairs {
            // reversing twice is the identity
            let back = p.pairs[d as usize].1;
            assert_eq!(back, s);
        }
        // 0001 → 1000.
        assert!(p.pairs.contains(&(1, 8)));
    }

    #[test]
    fn guest_induced_degree_bound() {
        // Guest ring(8) mapped 2-per-host onto 4 hosts: each host sends at
        // most 2·2 = 4 packets (each of its 2 guests has ≤ 2 remote edges).
        let guest = ring(8);
        let f: Vec<Node> = (0..8).map(|i| (i / 2) as Node).collect();
        let p = guest_induced(&guest, &f, 4);
        assert!(p.h() <= 4, "h = {}", p.h());
        // Host-local edges dropped: guests 0,1 share host 0.
        assert!(!p.pairs.contains(&(0, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        RoutingProblem::new(4, vec![(0, 9)]);
    }

    #[test]
    fn h_of_empty_problem() {
        assert_eq!(RoutingProblem::new(4, vec![]).h(), 0);
    }
}
