//! Fault-aware packet routing.
//!
//! Routes `(src, dst)` pairs against a [`FaultyView`]: each packet first
//! tries its canonical path (whatever [`PathSelector`] the healthy host
//! would use — greedy bit-fixing on a butterfly, X-Y on a mesh); if any hop
//! of that path is dead, the packet **retries** with a BFS path over the
//! surviving edges; if no live path exists (or an endpoint is dead) the
//! packet is **dropped**. Surviving packets then run through the standard
//! store-and-forward engine, so the port discipline and all downstream
//! pebble-protocol conversion are identical to the healthy case.
//!
//! Delivered / dropped / retried totals surface both in the returned
//! [`FaultyOutcome`] and as `faults.route.*` counters on the [`Recorder`].

use crate::view::FaultyView;
use rand::Rng;
use unet_obs::{NoopRecorder, Recorder};
use unet_routing::packet::{
    generous_step_limit, route_recorded, Discipline, Outcome, Packet, PathSelector, ShortestPath,
};
use unet_topology::Node;

/// Result of a fault-aware routing run.
#[derive(Debug, Clone)]
pub struct FaultyOutcome {
    /// Engine outcome over the routed (non-dropped) packets, or `None` when
    /// every pair was dropped.
    pub outcome: Option<Outcome>,
    /// For each routed packet (by packet id), the index of its original
    /// pair.
    pub routed: Vec<usize>,
    /// Original indices of the dropped pairs.
    pub dropped_pairs: Vec<usize>,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (dead endpoint or no live path).
    pub dropped: u64,
    /// Packets rerouted after their canonical path died.
    pub retried: u64,
}

/// [`route_faulty_recorded`] with BFS-only planning, default discipline, and
/// no instrumentation — the deterministic entry point (no RNG involved).
pub fn route_faulty(view: &FaultyView, pairs: &[(Node, Node)]) -> FaultyOutcome {
    let mut rng = unet_topology::util::seeded_rng(0);
    route_faulty_recorded::<ShortestPath, _, _>(
        view,
        pairs,
        None,
        Discipline::FarthestFirst,
        &mut rng,
        &mut NoopRecorder,
    )
}

/// Route `pairs` against the live view.
///
/// With `selector = Some(s)`, each packet first asks `s` for its canonical
/// path on the **base** graph; a path that only uses live nodes and edges is
/// kept, anything else falls back to BFS over the live view (counted in
/// `retried`). With `selector = None`, planning is BFS-only and `retried`
/// stays 0 (there is no canonical path to die).
///
/// Emits the `faults.route` span and `faults.route.delivered` /
/// `faults.route.dropped` / `faults.route.retried` counters.
pub fn route_faulty_recorded<S: PathSelector, R: Rng, REC: Recorder + ?Sized>(
    view: &FaultyView,
    pairs: &[(Node, Node)],
    selector: Option<&S>,
    discipline: Discipline,
    rng: &mut R,
    rec: &mut REC,
) -> FaultyOutcome {
    rec.span_start("faults.route");
    let mut packets: Vec<Packet> = Vec::new();
    let mut routed: Vec<usize> = Vec::new();
    let mut dropped_pairs: Vec<usize> = Vec::new();
    let mut retried = 0u64;

    for (i, &(src, dst)) in pairs.iter().enumerate() {
        if !view.is_node_up(src) || !view.is_node_up(dst) {
            dropped_pairs.push(i);
            continue;
        }
        let canonical: Option<Vec<Node>> = selector.and_then(|s| {
            s.path(view.base(), src, dst, rng).ok().filter(|p| path_is_live(view, p))
        });
        let path = match canonical {
            Some(p) => p,
            None => {
                if selector.is_some() {
                    retried += 1;
                }
                match view.bfs_path(src, dst) {
                    Some(p) => p,
                    None => {
                        if selector.is_some() {
                            retried -= 1; // never even started: dropped, not retried
                        }
                        dropped_pairs.push(i);
                        continue;
                    }
                }
            }
        };
        packets.push(Packet { id: packets.len() as u32, src, dst, path });
        routed.push(i);
    }

    let outcome = if packets.is_empty() {
        None
    } else {
        // Paths use only live edges (⊆ base edges), so the base graph
        // validates them and the engine needs no fault awareness.
        Some(
            route_recorded(view.base(), &packets, discipline, generous_step_limit(&packets), rec)
                .expect("generous limit"),
        )
    };

    let delivered = routed.len() as u64;
    let dropped = dropped_pairs.len() as u64;
    rec.span_end("faults.route");
    rec.counter("faults.route.delivered", delivered);
    rec.counter("faults.route.dropped", dropped);
    rec.counter("faults.route.retried", retried);
    FaultyOutcome { outcome, routed, dropped_pairs, delivered, dropped, retried }
}

/// Whether every node and hop of `path` is live in `view` (lazy repeats
/// `w[0] == w[1]` count as staying put, which is always allowed).
fn path_is_live(view: &FaultyView, path: &[Node]) -> bool {
    path.iter().all(|&v| view.is_node_up(v))
        && path.windows(2).all(|w| w[0] == w[1] || view.is_edge_up(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind, FaultPlan};
    use unet_routing::butterfly::GreedyButterfly;
    use unet_topology::generators::{butterfly::butterfly, ring, torus};
    use unet_topology::util::seeded_rng;

    #[test]
    fn healthy_view_routes_everything() {
        let g = torus(4, 4);
        let view = FaultyView::new(&g, &FaultPlan::none());
        let pairs: Vec<(Node, Node)> = (0..16).map(|i| (i, (i + 5) % 16)).collect();
        let out = route_faulty(&view, &pairs);
        assert_eq!(out.delivered, 16);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.retried, 0);
        let eng = out.outcome.unwrap();
        assert!(eng.delivered_at.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn dead_endpoints_drop_and_survivors_reroute() {
        let g = ring(8);
        let plan =
            FaultPlan::new(vec![FaultEvent { at: 1, kind: FaultKind::NodeCrash { node: 1 } }]);
        let mut view = FaultyView::new(&g, &plan);
        view.advance_to(1);
        // 0→2 must go the long way (through 7..3); 1 is dead so (1, 4) drops.
        let out = route_faulty(&view, &[(0, 2), (1, 4)]);
        assert_eq!(out.delivered, 1);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.dropped_pairs, vec![1]);
        assert_eq!(out.routed, vec![0]);
        let eng = out.outcome.unwrap();
        // Detour length: 0→7→6→5→4→3→2 = 6 hops.
        assert_eq!(eng.steps, 6);
    }

    #[test]
    fn canonical_butterfly_path_dies_and_bfs_rescues() {
        let dim = 3;
        let g = butterfly(dim);
        let sel = GreedyButterfly { dim };
        // Find a pair whose greedy path is long enough to cut in the middle.
        let src = 0u32;
        let dst = (g.n() - 1) as u32;
        let canonical = sel.walk(src, dst);
        assert!(canonical.len() >= 3);
        let (u, v) = (canonical[1], canonical[2]);
        let plan = FaultPlan::new(vec![FaultEvent { at: 1, kind: FaultKind::LinkCut { u, v } }]);
        let mut view = FaultyView::new(&g, &plan);
        view.advance_to(1);
        let mut rng = seeded_rng(3);
        let mut rec = unet_obs::InMemoryRecorder::new();
        let out = route_faulty_recorded(
            &view,
            &[(src, dst)],
            Some(&sel),
            Discipline::FarthestFirst,
            &mut rng,
            &mut rec,
        );
        assert_eq!(out.retried, 1, "canonical path died, BFS fallback must count as retry");
        assert_eq!(out.delivered, 1);
        assert_eq!(rec.counter_value("faults.route.retried"), 1);
        assert_eq!(rec.counter_value("faults.route.delivered"), 1);
        assert!(rec.open_spans().is_empty());
        // The engine path avoids the cut link.
        let eng = out.outcome.unwrap();
        assert!(eng.transfers.iter().all(|t| view.is_edge_up(t.from, t.to)));
    }

    #[test]
    fn partitioned_pairs_drop_instead_of_panicking() {
        let g = ring(4);
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 1, kind: FaultKind::LinkCut { u: 0, v: 1 } },
            FaultEvent { at: 1, kind: FaultKind::LinkCut { u: 2, v: 3 } },
        ]);
        let mut view = FaultyView::new(&g, &plan);
        view.advance_to(1);
        let out = route_faulty(&view, &[(0, 1), (0, 3), (1, 2)]);
        assert_eq!(out.dropped, 1);
        assert_eq!(out.dropped_pairs, vec![0]);
        assert_eq!(out.delivered, 2);
    }

    #[test]
    fn all_dropped_yields_no_engine_outcome() {
        let g = ring(4);
        let plan =
            FaultPlan::new(vec![FaultEvent { at: 0, kind: FaultKind::NodeCrash { node: 2 } }]);
        let mut view = FaultyView::new(&g, &plan);
        view.advance_to(0);
        let out = route_faulty(&view, &[(2, 0), (1, 2)]);
        assert!(out.outcome.is_none());
        assert_eq!(out.dropped, 2);
        assert_eq!(out.delivered, 0);
    }
}
