//! Process-wide sharing of step-invariant route plans.
//!
//! The per-run [`PlanCache`](unet_routing::plan::PlanCache) already makes
//! guest steps `3..=T` replay the plan computed at step 2 — but every *run*
//! still pays that first compilation, even when a long-lived process (the
//! `unet-serve` worker pool) simulates the same guest/host pair thousands of
//! times. A [`SharedPlanCache`] closes that gap: it memoizes the compiled
//! communication-phase skeleton across runs, keyed by everything the plan
//! can depend on and nothing it cannot.
//!
//! The key is a fingerprint of `(guest adjacency, host adjacency, embedding,
//! router name, route seed)`. Guest *states* and the step count are
//! deliberately excluded: the induced routing problem is a function of the
//! embedding and the guest's edges only (payloads are rebuilt every step),
//! which is exactly the invariant the per-run cache already relies on. The
//! route seed is part of the key because a randomized router's schedule is a
//! function of its per-phase seed — two runs share a plan only when they
//! would have compiled identical plans anyway, keeping the bit-for-bit
//! guarantee of `Simulation::builder` intact.
//!
//! # Single-flight compilation
//!
//! Concurrent runs of the *same* workload used to race: each saw a cold
//! cache, each compiled the identical plan, and the first writer won. The
//! cache now hands out **build leases**: the first run to miss becomes the
//! leader (`Acquire::Lead`) and must publish the compiled plan (or drop
//! the lease on failure); every other run blocks on the slot and wakes to a
//! plain hit the moment the plan lands. A leader that is cancelled or errors
//! before publishing releases the lease on drop and a blocked follower is
//! promoted to the new leader, so a dying request can never wedge the
//! workload. Followers poll their own [`CancelToken`] while waiting, so
//! per-request deadlines hold even when the wait is on someone else's build.
//!
//! Sharing is observable only through counters: engine runs that pre-seed
//! from (or publish to) a shared cache emit `sim.cache.shared.hits` /
//! `sim.cache.shared.misses`, and the cache itself keeps process totals —
//! including [`singleflight_followers`](SharedPlanCache::singleflight_followers),
//! the number of runs that reused an in-flight (or same-micro-batch) build
//! instead of compiling — for the server's `metrics` endpoint.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::cancel::CancelToken;
use crate::embedding::Embedding;
use crate::error::SimError;
use crate::simulate::CachedComm;
use rand::Rng;
use unet_topology::util::seeded_rng;
use unet_topology::Graph;

struct CacheState {
    entries: HashMap<u64, CachedComm>,
    /// Keys currently held by a build lease (a leader is compiling them).
    building: HashSet<u64>,
}

/// A thread-safe route-plan cache shared across simulation runs.
///
/// Construct one per process (or per server), then hand it to any number of
/// concurrent [`Simulation::builder`](crate::Simulation::builder) runs via
/// [`shared_cache`](crate::SimulationBuilder::shared_cache). Entries are
/// never evicted: the key space is the set of distinct workloads a process
/// serves, which is bounded in practice and tiny in memory (one
/// [`RoutePlan`](unet_routing::plan::RoutePlan) skeleton per workload).
pub struct SharedPlanCache {
    state: Mutex<CacheState>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    followers: AtomicU64,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache {
            state: Mutex::new(CacheState { entries: HashMap::new(), building: HashSet::new() }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            followers: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("singleflight_followers", &self.singleflight_followers())
            .finish()
    }
}

/// How often a blocked follower re-checks its cancel token while the leader
/// compiles. Plans compile in microseconds-to-milliseconds, so this bounds
/// cancellation latency without busy-waiting.
const FOLLOWER_POLL: Duration = Duration::from_millis(5);

/// What [`SharedPlanCache::acquire`] hands back: either the cached plan or
/// a build lease obligating the caller to compile and publish it.
pub(crate) enum Acquire<'a> {
    /// The plan was cached (possibly published by a leader the caller
    /// waited on); counted as a hit.
    Hit(CachedComm),
    /// The caller is the build leader for this key; counted as a miss.
    /// Publish through the guard, or drop it to pass leadership on.
    Lead(LeadGuard<'a>),
}

/// A build lease for one cache key (see `Acquire::Lead`). Dropping the
/// guard without [`publish`](LeadGuard::publish)ing releases the lease and
/// wakes the waiting followers so one of them can take over.
pub(crate) struct LeadGuard<'a> {
    cache: &'a SharedPlanCache,
    key: u64,
    published: bool,
}

impl LeadGuard<'_> {
    /// Publish the freshly compiled plan and wake every follower. First
    /// writer wins — concurrent compilations of the same workload produce
    /// identical plans (the key covers every input), so keeping the
    /// incumbent is safe.
    pub(crate) fn publish(&mut self, plan: CachedComm) {
        let mut st = self.cache.state.lock().expect("plan cache poisoned");
        st.entries.entry(self.key).or_insert(plan);
        st.building.remove(&self.key);
        self.published = true;
        drop(st);
        self.cache.ready.notify_all();
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            // Leader failed (error, cancellation, or a run that never
            // compiled a plan): release the lease so a follower can lead.
            let mut st = self.cache.state.lock().expect("plan cache poisoned");
            st.building.remove(&self.key);
            drop(st);
            self.cache.ready.notify_all();
        }
    }
}

impl SharedPlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct workload plans currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("plan cache poisoned").entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is a plan for this workload fingerprint already published?
    ///
    /// A pure peek: no counters move. Schedulers use this to decide whether
    /// a micro-batch is cold (its members will coalesce onto one build)
    /// before dispatching it.
    pub fn contains(&self, key: u64) -> bool {
        self.state.lock().expect("plan cache poisoned").entries.contains_key(&key)
    }

    /// Process-total lookups that found a plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Process-total lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Process-total runs that reused another request's plan build instead
    /// of compiling: followers that blocked on an in-flight build lease,
    /// plus coalesced micro-batch members accounted via
    /// [`note_singleflight_followers`](Self::note_singleflight_followers).
    pub fn singleflight_followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Credit `n` coalesced runs to the single-flight counter.
    ///
    /// For schedulers that dispatch same-fingerprint micro-batches
    /// leader-first: the followers then resolve as plain hits (the plan is
    /// already published when they run), so the slot never sees them wait —
    /// this keeps the counter meaning "runs that avoided a plan build by
    /// riding someone else's", however the coalescing happened.
    pub fn note_singleflight_followers(&self, n: u64) {
        self.followers.fetch_add(n, Ordering::Relaxed);
    }

    /// Fraction of lookups served from the cache (`None` before the first
    /// lookup).
    pub fn hit_ratio(&self) -> Option<f64> {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Look up `key`, entering the single-flight discipline on a miss: the
    /// first run in becomes the leader (gets a [`LeadGuard`] and a counted
    /// miss), later runs block until the plan is published and then count a
    /// hit plus a follower. Waiting runs poll `cancel` and bail with
    /// [`SimError::Cancelled`] when their own deadline trips first.
    pub(crate) fn acquire(
        &self,
        key: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<Acquire<'_>, SimError> {
        let mut st = self.state.lock().expect("plan cache poisoned");
        let mut waited = false;
        loop {
            if let Some(entry) = st.entries.get(&key) {
                let entry = entry.clone();
                drop(st);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    self.followers.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(Acquire::Hit(entry));
            }
            if !st.building.contains(&key) {
                st.building.insert(key);
                drop(st);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(Acquire::Lead(LeadGuard { cache: self, key, published: false }));
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(SimError::Cancelled);
            }
            waited = true;
            let (guard, _) =
                self.ready.wait_timeout(st, FOLLOWER_POLL).expect("plan cache poisoned");
            st = guard;
        }
    }

    /// Clone out the plan for `key`, counting a hit or miss. Bypasses the
    /// single-flight slot (no lease is taken) — kept for callers that only
    /// ever read.
    #[cfg(test)]
    pub(crate) fn get(&self, key: u64) -> Option<CachedComm> {
        let got = self.state.lock().expect("plan cache poisoned").entries.get(&key).cloned();
        match got {
            Some(c) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(c)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a plan without holding a lease (first writer wins).
    #[cfg(test)]
    pub(crate) fn insert_if_absent(&self, key: u64, plan: CachedComm) {
        let mut st = self.state.lock().expect("plan cache poisoned");
        st.entries.entry(key).or_insert(plan);
        drop(st);
        self.ready.notify_all();
    }
}

/// The workload fingerprint a [`Simulation::builder`](crate::Simulation)
/// run with [`seed`](crate::SimulationBuilder::seed)`(seed)` uses as its
/// [`SharedPlanCache`] key.
///
/// The builder derives one per-run *route seed* from the run seed and
/// fingerprints `(guest, host, embedding, router name, route seed)`; this
/// function performs the identical derivation, so schedulers can group
/// requests that will share a plan **before** running them (the `unet-serve`
/// batching layer keys its micro-batches on this).
pub fn workload_fingerprint(
    guest: &Graph,
    host: &Graph,
    embedding: &Embedding,
    router_name: &str,
    seed: u64,
) -> u64 {
    let route_seed: u64 = seeded_rng(seed).gen();
    plan_fingerprint(guest, host, embedding, router_name, route_seed)
}

/// FNV-1a over every input the compiled communication plan depends on.
pub(crate) fn plan_fingerprint(
    guest: &Graph,
    host: &Graph,
    embedding: &Embedding,
    router_name: &str,
    route_seed: u64,
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: u64, v: u64) -> u64 {
        let mut h = h;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    fn eat_graph(mut h: u64, g: &Graph) -> u64 {
        h = eat(h, g.n() as u64);
        for u in 0..g.n() {
            let nb = g.neighbors(u as unet_topology::Node);
            h = eat(h, nb.len() as u64);
            for &v in nb {
                h = eat(h, v as u64);
            }
        }
        h
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = eat_graph(h, guest);
    h = eat_graph(h, host);
    h = eat(h, embedding.m as u64);
    for &fu in &embedding.f {
        h = eat(h, fu as u64);
    }
    h = eat(h, router_name.len() as u64);
    for byte in router_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    }
    eat(h, route_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{ring, torus};

    #[test]
    fn fingerprint_separates_every_input() {
        let guest = ring(8);
        let host = torus(2, 2);
        let emb = Embedding::block(8, 4);
        let base = plan_fingerprint(&guest, &host, &emb, "bfs", 7);
        assert_eq!(base, plan_fingerprint(&guest, &host, &emb, "bfs", 7), "deterministic");
        assert_ne!(base, plan_fingerprint(&ring(10), &host, &Embedding::block(10, 4), "bfs", 7));
        assert_ne!(base, plan_fingerprint(&guest, &torus(2, 3), &Embedding::block(8, 6), "bfs", 7));
        assert_ne!(base, plan_fingerprint(&guest, &host, &emb, "valiant", 7));
        assert_ne!(base, plan_fingerprint(&guest, &host, &emb, "bfs", 8));
    }

    #[test]
    fn counters_track_lookups() {
        let cache = SharedPlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_ratio(), None);
        assert!(cache.get(1).is_none());
        cache.insert_if_absent(1, CachedComm::default());
        assert!(cache.get(1).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.hit_ratio(), Some(0.5));
    }

    #[test]
    fn workload_fingerprint_matches_builder_derivation() {
        use rand::Rng;
        let guest = ring(8);
        let host = torus(2, 2);
        let emb = Embedding::block(8, 4);
        let route_seed: u64 = seeded_rng(42).gen();
        assert_eq!(
            workload_fingerprint(&guest, &host, &emb, "bfs", 42),
            plan_fingerprint(&guest, &host, &emb, "bfs", route_seed),
        );
        assert_ne!(
            workload_fingerprint(&guest, &host, &emb, "bfs", 42),
            workload_fingerprint(&guest, &host, &emb, "bfs", 43),
        );
    }

    #[test]
    fn first_acquire_leads_then_followers_hit() {
        let cache = SharedPlanCache::new();
        let lead = match cache.acquire(9, None).expect("no cancel") {
            Acquire::Lead(g) => g,
            Acquire::Hit(_) => panic!("cold cache cannot hit"),
        };
        assert!(!cache.contains(9), "lease does not publish");
        let mut lead = lead;
        lead.publish(CachedComm::default());
        assert!(cache.contains(9));
        match cache.acquire(9, None).expect("no cancel") {
            Acquire::Hit(_) => {}
            Acquire::Lead(_) => panic!("published key cannot lead"),
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Never waited: not a single-flight follower.
        assert_eq!(cache.singleflight_followers(), 0);
    }

    #[test]
    fn dropped_lease_promotes_the_next_acquirer() {
        let cache = SharedPlanCache::new();
        let lead = match cache.acquire(5, None).expect("acquire") {
            Acquire::Lead(g) => g,
            Acquire::Hit(_) => panic!("cold cache cannot hit"),
        };
        drop(lead); // leader dies before publishing
        match cache.acquire(5, None).expect("acquire") {
            Acquire::Lead(_) => {}
            Acquire::Hit(_) => panic!("nothing was published"),
        }
        assert_eq!(cache.misses(), 2, "both acquisitions were misses");
    }

    #[test]
    fn follower_blocks_until_publish_and_is_counted() {
        use std::sync::Arc;
        let cache = Arc::new(SharedPlanCache::new());
        let mut lead = match cache.acquire(3, None).expect("acquire") {
            Acquire::Lead(g) => g,
            Acquire::Hit(_) => panic!("cold cache cannot hit"),
        };
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || matches!(cache.acquire(3, None), Ok(Acquire::Hit(_))))
        };
        // Give the follower time to block on the lease.
        std::thread::sleep(Duration::from_millis(20));
        lead.publish(CachedComm::default());
        assert!(follower.join().expect("follower thread"), "follower resolves to a hit");
        assert_eq!(cache.singleflight_followers(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn waiting_follower_honors_its_own_cancel_token() {
        use std::sync::Arc;
        use std::time::Duration;
        let cache = Arc::new(SharedPlanCache::new());
        let _lead = match cache.acquire(1, None).expect("acquire") {
            Acquire::Lead(g) => g,
            Acquire::Hit(_) => panic!("cold cache cannot hit"),
        };
        let token = CancelToken::with_deadline(Duration::from_millis(10));
        let cancelled = matches!(cache.acquire(1, Some(&token)), Err(SimError::Cancelled));
        assert!(cancelled, "deadline should fire while waiting");
    }
}
