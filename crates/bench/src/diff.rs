//! The shape-regression gate: `unet bench diff <baseline>`.
//!
//! Compares a committed baseline artifact against a fresh sweep **by shape
//! predicate**, never by absolute timing: both sides' rows are checked
//! against every registry shape ([`crate::shape`]), so the gate is robust
//! to machine noise (a slower runner moves every wall-time together and
//! bends no curve) while still catching real regressions — a measured
//! point dipping below the Theorem 3.1 curve, E17's cached row losing its
//! speedup ordering, a protocol hash splitting between configs.
//!
//! The baseline may have been measured on the full grids and the fresh
//! side on `--quick` grids; that is fine, because shapes are properties of
//! each row set independently, not a row-by-row comparison.

use crate::registry::registry;
use crate::schema::BenchDoc;
use crate::sweep::{check_shapes, run_sweep, SweepOptions};

/// The result of one gate run: human-readable report lines plus the
/// pass/fail verdict.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One line per (experiment, shape, side) plus per-experiment headers.
    pub lines: Vec<String>,
    /// Number of shape violations (and missing experiments) found.
    pub failures: usize,
}

impl DiffReport {
    /// Did the gate pass?
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

fn check_side(label: &str, doc: &BenchDoc, report: &mut DiffReport) {
    for o in check_shapes(doc) {
        match o.violation {
            None => report.lines.push(format!("  ok    {} [{label}] {}", o.exp, o.shape)),
            Some(v) => {
                report.failures += 1;
                report.lines.push(format!("  FAIL  {} [{label}] {v}", o.exp));
            }
        }
    }
}

/// Run the gate: parse `baseline_text` (must be a schema-v2 artifact), run
/// a fresh sweep with `opts`, and evaluate every registry shape on both
/// sides. An experiment selected by the filter but absent from the
/// baseline counts as a failure (the baseline is stale — regenerate it
/// with `unet bench run`).
pub fn diff(baseline_text: &str, opts: &SweepOptions) -> Result<DiffReport, String> {
    let baseline = BenchDoc::parse(baseline_text)?;
    let mut report = DiffReport {
        lines: vec![format!(
            "baseline: git {} seed {:#x} {}",
            baseline.git_rev,
            baseline.seed,
            if baseline.quick { "quick grid" } else { "full grid" }
        )],
        failures: 0,
    };
    for exp in registry() {
        if opts.selects(exp.id) && baseline.experiment(exp.id).is_none() {
            report.failures += 1;
            report.lines.push(format!(
                "  FAIL  {} missing from baseline — regenerate it with `unet bench run`",
                exp.id
            ));
        }
    }
    check_side("baseline", &baseline, &mut report);
    let fresh = run_sweep(opts);
    report.lines.push(format!(
        "fresh:    git {} {}",
        fresh.git_rev,
        if fresh.quick { "quick grid" } else { "full grid" }
    ));
    check_side("fresh", &fresh, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_obs::json::Value;

    fn opts() -> SweepOptions {
        SweepOptions { quick: true, filter: Some(vec!["E2".into()]), threads: 2 }
    }

    #[test]
    fn gate_passes_on_an_honest_baseline() {
        let baseline = run_sweep(&opts());
        let report = diff(&baseline.to_json(), &opts()).expect("parses");
        assert!(report.passed(), "{:?}", report.lines);
        assert!(report.lines.iter().any(|l| l.contains("[baseline]")));
        assert!(report.lines.iter().any(|l| l.contains("[fresh]")));
    }

    #[test]
    fn gate_fails_on_a_bent_curve() {
        let mut baseline = run_sweep(&opts());
        // Bend E2: force one inefficiency_ideal below the Ω(log m) floor.
        let rows = &mut baseline.experiments[0].rows;
        let last = rows.last_mut().unwrap();
        if let Value::Obj(fields) = last {
            for (k, v) in fields.iter_mut() {
                if k == "inefficiency_ideal" {
                    *v = Value::Float(0.01);
                }
            }
        }
        let report = diff(&baseline.to_json(), &opts()).expect("parses");
        assert!(!report.passed());
        assert!(report.lines.iter().any(|l| l.contains("FAIL") && l.contains("[baseline]")));
    }

    #[test]
    fn gate_fails_on_a_stale_baseline() {
        let mut baseline = run_sweep(&opts());
        baseline.experiments.clear();
        let report = diff(&baseline.to_json(), &opts()).expect("parses");
        assert!(!report.passed());
        assert!(report.lines.iter().any(|l| l.contains("missing from baseline")));
    }

    #[test]
    fn gate_rejects_v1_artifacts() {
        let err = diff(r#"{"experiment":"E1","rows":[]}"#, &opts()).unwrap_err();
        assert!(err.contains("not a v2 artifact"), "{err}");
    }
}
