//! E6 — Section 2's routing engine: `route_M(h)` across strategies.
//!
//! Regenerates the routing-time table (butterfly greedy vs Valiant vs torus
//! dimension-order vs offline Beneš/Waksman) and times the routers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use unet_bench::rng;
use unet_routing::benes::{benes_h_h_schedule, waksman_paths};
use unet_routing::butterfly::{GreedyButterfly, ValiantButterfly};
use unet_routing::greedy::DimensionOrder;
use unet_routing::metrics::measure_route_time;
use unet_routing::packet::{make_packets, route, Discipline};
use unet_routing::problem::random_h_h;
use unet_topology::generators::{butterfly, torus};

fn regenerate_table() {
    let mut r = rng();
    let dim = 5;
    let bf = butterfly(dim);
    let tor = torus(14, 14);
    println!(
        "\n=== E6: route_M(h) (butterfly m = {}, torus m = {}, benes rows = 32) ===",
        bf.n(),
        tor.n()
    );
    println!(
        "{:>3} {:>12} {:>12} {:>10} {:>16}",
        "h", "bf-greedy", "bf-valiant", "torus-xy", "benes-offline"
    );
    for h in [1usize, 2, 4, 8] {
        let g = measure_route_time(&bf, h, &GreedyButterfly { dim }, 2, &mut r);
        let v = measure_route_time(&bf, h, &ValiantButterfly { dim }, 2, &mut r);
        let t = measure_route_time(&tor, h, &DimensionOrder::torus(14, 14), 2, &mut r);
        let mut pairs = Vec::new();
        for _ in 0..h {
            let mut p: Vec<u32> = (0..32).collect();
            p.shuffle(&mut r);
            for (s, &d) in p.iter().enumerate() {
                pairs.push((s as u32, d));
            }
        }
        let (mk, _, _) = benes_h_h_schedule(5, &pairs);
        println!("{h:>3} {:>12} {:>12} {:>10} {:>16}", g.max_steps, v.max_steps, t.max_steps, mk);
    }
    println!("offline = 2(h−1) + 2(2d−1) exactly; torus pays Θ(√m); butterfly Θ(h·log m).");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e6_routing");
    group.sample_size(20);
    let dim = 5;
    let bf = butterfly(dim);
    for h in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("butterfly_valiant", h), &h, |b, &h| {
            let mut r = rng();
            b.iter(|| {
                let prob = random_h_h(bf.n(), h, &mut r);
                let pk = make_packets(&bf, &prob.pairs, &ValiantButterfly { dim }, &mut r).unwrap();
                let lim: u32 = pk.iter().map(|p| p.path.len() as u32 + 1).sum::<u32>() + 64;
                route(&bf, &pk, Discipline::FarthestFirst, lim).unwrap().steps
            });
        });
    }
    group.bench_function("waksman_d6", |b| {
        let mut r = rng();
        let mut perm: Vec<u32> = (0..64).collect();
        perm.shuffle(&mut r);
        b.iter(|| waksman_paths(&perm));
    });
    group.bench_function("benes_schedule_h4_d5", |b| {
        let mut r = rng();
        let mut pairs = Vec::new();
        for _ in 0..4 {
            let mut p: Vec<u32> = (0..32).collect();
            p.shuffle(&mut r);
            for (s, &d) in p.iter().enumerate() {
                pairs.push((s as u32, d));
            }
        }
        b.iter(|| benes_h_h_schedule(5, &pairs));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
