//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free implementation of exactly the surface
//! it calls: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this workspace
//! treats seeded randomness as an opaque reproducible source, so only
//! determinism (same seed ⇒ same stream) matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; kept for parity).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via a seed-spreading function.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution
/// (`Rng::gen`): full-range integers, `[0, 1)` floats, fair bools.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Multiply-shift range reduction (Lemire, without the rejection step —
/// the bias for the tiny spans used here is ≪ 2⁻³²).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// The user-facing RNG trait (mirrors `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution (full-range ints, `[0,1)` floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic RNG: xoshiro256++ seeded through SplitMix64.
    ///
    /// Not the upstream ChaCha12 stream; see the crate docs for why that is
    /// fine here. Statistically solid (passes BigCrush per its authors) and
    /// fast enough to never show up in profiles.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed spreading, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice extensions: uniform shuffling and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::reduce(RngCore::next_u64(rng), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::reduce(RngCore::next_u64(rng), self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va, (0..32).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u32..=5);
            assert!(y <= 5);
            let z = r.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_uniformish() {
        let mut r = StdRng::seed_from_u64(5);
        assert_eq!(Vec::<u8>::new().choose(&mut r), None);
        let v = [1u8, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[(*v.choose(&mut r).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(9);
        takes_rng(&mut r);
        let mr = &mut r;
        takes_rng(&mut &mut *mr);
    }
}
