//! Working with simulation protocols as artifacts: save, re-check, replay,
//! prune, and inspect the redundancy profile.
//!
//! Run with: `cargo run --release --example protocol_tools`

use universal_networks::core::prelude::*;
use universal_networks::pebble::analysis::weight_heatmap;
use universal_networks::pebble::optimize::prune;
use universal_networks::pebble::replay::render_timeline;
use universal_networks::pebble::{check, io};
use universal_networks::topology::generators::{random_regular, torus};
use universal_networks::topology::util::seeded_rng;

fn main() {
    // Produce a certified protocol.
    let n = 64;
    let guest = random_regular(n, 4, &mut seeded_rng(1));
    let comp = GuestComputation::random(guest.clone(), 2);
    let host = torus(3, 3);
    let router = presets::torus_xy(3, 3);
    let sim = EmbeddingSimulator { embedding: Embedding::block(n, 9), router: &router };
    let run = sim.simulate(&comp, &host, 3, &mut seeded_rng(3));
    let proto = run.protocol;
    check(&guest, &host, &proto).expect("certifies");

    // 1. Serialize, reload, re-check — protocols are durable artifacts.
    let text = io::to_text(&proto);
    let reloaded = io::from_text(&text).expect("parses");
    assert_eq!(reloaded, proto);
    println!(
        "serialized protocol: {} bytes, {} steps, {} busy ops — round-trips exactly\n",
        text.len(),
        proto.host_steps(),
        proto.busy_ops()
    );

    // 2. Replay: a per-step timeline of the simulation's anatomy.
    println!("timeline (first 12 steps):");
    print!("{}", render_timeline(&proto, 12));

    // 3. Prune: how much of the work was essential?
    let (pruned, stats) = prune(&guest, &proto);
    check(&guest, &host, &pruned).expect("pruned protocol still certifies");
    println!(
        "\npruning: {} → {} busy ops ({:.0}% essential), {} → {} steps",
        stats.busy_before,
        stats.busy_after,
        100.0 * stats.busy_after as f64 / stats.busy_before as f64,
        stats.steps_before,
        stats.steps_after
    );

    // 4. Redundancy profiles before and after.
    let trace = check(&guest, &host, &proto).unwrap();
    let trace_p = check(&guest, &host, &pruned).unwrap();
    println!("\nq_(i,t) heatmap, original (log2 scale; '.' = single copy):");
    print!("{}", weight_heatmap(&trace, 64));
    println!("q_(i,t) heatmap, pruned:");
    print!("{}", weight_heatmap(&trace_p, 64));
    println!(
        "\ntotal custody: {} → {} pebble copies",
        trace.total_weight(),
        trace_p.total_weight()
    );
}
