//! Guest computations: what the universal host actually simulates.
//!
//! The paper's model is agnostic about what a "configuration" is — a pebble
//! `(P_i, t)` is the configuration of guest processor `P_i` after `t` steps,
//! and one guest step updates every configuration from its own and its
//! neighbours' previous configurations. We instantiate configurations as
//! 64-bit states with a deterministic mixing transition, which makes
//! simulation correctness *checkable bit-for-bit*: a host simulation is
//! correct iff it reproduces the reference run's final states.

use unet_topology::{Graph, Node};

/// A concrete guest computation: a topology plus initial per-node states.
#[derive(Debug, Clone)]
pub struct GuestComputation {
    /// The guest network `G ∈ U`.
    pub graph: Graph,
    /// Initial configuration of every node (guest time 0).
    pub init: Vec<u64>,
}

/// The deterministic transition: the next configuration of a node from its
/// own state and its neighbours' states **in adjacency order** (fixed order
/// makes the computation well-defined and non-oblivious-looking enough to be
/// a fair test: every input bit influences the output).
pub fn transition(own: u64, neighbors: &[u64]) -> u64 {
    // SplitMix64-style mixing, folding each neighbour in sequence.
    let mut h = own ^ 0x9e37_79b9_7f4a_7c15;
    h = mix(h);
    for (idx, &nb) in neighbors.iter().enumerate() {
        h = mix(h ^ nb.rotate_left((idx as u32 % 63) + 1));
    }
    h
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl GuestComputation {
    /// A computation on `graph` with pseudo-random initial states drawn from
    /// `seed` (deterministic).
    pub fn random(graph: Graph, seed: u64) -> Self {
        let init =
            (0..graph.n() as u64).map(|i| mix(seed ^ mix(i.wrapping_add(0xabcd_ef01)))).collect();
        GuestComputation { graph, init }
    }

    /// Number of guest processors.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Reference (direct) execution: returns `states[t][i]` for
    /// `t ∈ [0, steps]`.
    pub fn run(&self, steps: u32) -> Vec<Vec<u64>> {
        let n = self.n();
        let mut all = Vec::with_capacity(steps as usize + 1);
        all.push(self.init.clone());
        let mut nb_buf = Vec::new();
        for _ in 0..steps {
            let prev = all.last().unwrap();
            let mut next = Vec::with_capacity(n);
            for i in 0..n as Node {
                nb_buf.clear();
                nb_buf.extend(self.graph.neighbors(i).iter().map(|&j| prev[j as usize]));
                next.push(transition(prev[i as usize], &nb_buf));
            }
            all.push(next);
        }
        all
    }

    /// Final states only (convenience).
    pub fn run_final(&self, steps: u32) -> Vec<u64> {
        self.run(steps).pop().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unet_topology::generators::{complete, ring};

    #[test]
    fn transition_sensitive_to_all_inputs() {
        let base = transition(1, &[2, 3, 4]);
        assert_ne!(base, transition(5, &[2, 3, 4]));
        assert_ne!(base, transition(1, &[9, 3, 4]));
        assert_ne!(base, transition(1, &[2, 3, 9]));
        // Order matters (adjacency order is part of the semantics).
        assert_ne!(transition(1, &[2, 3]), transition(1, &[3, 2]));
    }

    #[test]
    fn run_shapes_and_determinism() {
        let comp = GuestComputation::random(ring(5), 42);
        let a = comp.run(4);
        assert_eq!(a.len(), 5);
        assert_eq!(a[0], comp.init);
        let b = comp.run(4);
        assert_eq!(a, b);
        assert_eq!(comp.run_final(4), a[4]);
    }

    #[test]
    fn different_seeds_different_runs() {
        let g = ring(5);
        let a = GuestComputation::random(g.clone(), 1).run_final(3);
        let b = GuestComputation::random(g, 2).run_final(3);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_steps_is_initial() {
        let comp = GuestComputation::random(complete(4), 7);
        assert_eq!(comp.run_final(0), comp.init);
    }

    #[test]
    fn avalanche_effect_of_transition() {
        // Flipping one input bit should flip ~half the output bits — the
        // property that makes bit-for-bit verification a strong check.
        let base = transition(0x1234_5678_9abc_def0, &[1, 2, 3]);
        let flipped = transition(0x1234_5678_9abc_def1, &[1, 2, 3]);
        let diff = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&diff), "avalanche too weak: {diff} bits");
    }

    #[test]
    fn isolated_node_still_evolves() {
        // A degree-0 node's state must still change each step (the self
        // term), so host simulations cannot skip idle guests.
        let g = unet_topology::GraphBuilder::new(1).build();
        let comp = GuestComputation { graph: g, init: vec![7] };
        let s = comp.run(3);
        assert_ne!(s[1][0], s[0][0]);
        assert_ne!(s[2][0], s[1][0]);
    }

    #[test]
    fn states_evolve_via_neighbors() {
        // On K2, each node's next state depends on the other's.
        let g = complete(2);
        let comp = GuestComputation { graph: g, init: vec![10, 20] };
        let s = comp.run(1);
        assert_eq!(s[1][0], transition(10, &[20]));
        assert_eq!(s[1][1], transition(20, &[10]));
    }
}
